//! Differential harness for the modernized CDCL core at the e2e mapping tier:
//! run every sketch/spec pair of the quick DSP tier through synthesis under the
//! old-style solver configuration (activity-only clause deletion + Luby
//! restarts) and the new-style one (LBD-tiered clause database + EMA restarts),
//! and require identical verdicts (Timeout exempt: budget-dependent), models
//! that verify against the spec by simulation, and sane solver telemetry. This
//! is the end-to-end safety net for the clause-database and restart rework in
//! `lr_sat` — the random-CNF half lives in `crates/sat/tests/prop_differential.rs`.

use std::time::Duration;

use lakeroad_suite::prelude::*;

use lakeroad::pipeline_depth;
use lakeroad::suite::suite_for;
use lr_sketch::generate_sketch;
use lr_synth::{
    synthesize, SolverConfig, SynthesisConfig, SynthesisOutcome, SynthesisStats, SynthesisTask,
    Synthesized,
};

fn config(solver: SolverConfig) -> SynthesisConfig {
    SynthesisConfig {
        solver: SolverConfig { conflict_budget: Some(20_000), ..solver },
        timeout: Some(Duration::from_secs(10)),
        ..SynthesisConfig::default()
    }
}

fn verdict_name(outcome: &SynthesisOutcome) -> &'static str {
    match outcome {
        SynthesisOutcome::Success(_) => "success",
        SynthesisOutcome::Unsat { .. } => "unsat",
        SynthesisOutcome::Timeout { .. } => "timeout",
    }
}

/// xorshift64 seeded per (round, input); `| 1` keeps the seed non-zero.
fn stimulus(round: u64, input_index: u64) -> u64 {
    let mut s = (round << 32 | input_index).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..3 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
    }
    s
}

fn assert_model_verifies(name: &str, spec: &Prog, result: &Synthesized, at_cycle: u32) {
    assert!(!result.implementation.has_holes(), "{name}: implementation still has holes");
    let inputs = spec.free_vars();
    for round in 0..8u64 {
        let mut env = StreamInputs::new();
        for (i, (input, width)) in inputs.iter().enumerate() {
            let value = stimulus(round, i as u64);
            env.set_constant(input.clone(), BitVec::from_u64(value, *width));
        }
        for t in at_cycle..at_cycle + 3 {
            assert_eq!(
                spec.interp(&env, t).unwrap(),
                result.implementation.interp(&env, t).unwrap(),
                "{name}: model does not verify at cycle {t} (round {round})"
            );
        }
    }
}

/// The telemetry invariants any synthesis run must satisfy.
fn assert_stats_sane(name: &str, stats: &SynthesisStats) {
    let learnt_total: u64 = stats.glue_histogram.iter().sum();
    assert!(
        learnt_total <= stats.conflicts,
        "{name}: each conflict learns at most one stored clause"
    );
    assert!(
        stats.learnt_literals >= 2 * learnt_total,
        "{name}: every stored learnt clause has at least two literals"
    );
    if stats.verification_used_sat || stats.conflicts > 0 {
        assert!(stats.propagations > 0, "{name}: conflicts without propagation");
    }
}

/// Runs one task under both solver generations and cross-checks the results.
fn differential(name: &str, spec: &Prog, sketch: &Prog, at_cycle: u32, window: u32) {
    let task = SynthesisTask::over_window(spec, sketch, at_cycle, window);
    let modern =
        synthesize(&task, &config(SolverConfig::default())).expect("modern run must not error");
    let legacy =
        synthesize(&task, &config(SolverConfig::legacy())).expect("legacy run must not error");

    // Timeout is budget-dependent; any definite verdict pair must agree exactly.
    if !modern.is_timeout() && !legacy.is_timeout() {
        assert_eq!(
            verdict_name(&modern),
            verdict_name(&legacy),
            "{name}: solver generations disagree on the verdict"
        );
    }
    assert_eq!(modern.stats().restart_mode, "ema", "{name}: default must be EMA restarts");
    assert_eq!(legacy.stats().restart_mode, "luby", "{name}: legacy must be Luby restarts");
    assert_stats_sane(&format!("{name} (modern)"), modern.stats());
    assert_stats_sane(&format!("{name} (legacy)"), legacy.stats());

    if let SynthesisOutcome::Success(result) = modern {
        assert_model_verifies(&format!("{name} (modern)"), spec, &result, at_cycle);
    }
    if let SynthesisOutcome::Success(result) = legacy {
        assert_model_verifies(&format!("{name} (legacy)"), spec, &result, at_cycle);
    }
}

/// The e2e DSP tier: the same stratified quick sample of the §5.1 microbenchmark
/// suites the `exp_sat` driver measures, for every DSP-bearing architecture.
#[test]
fn dsp_tier_verdicts_agree_between_solver_generations() {
    let mut ran = 0usize;
    for arch in Architecture::with_dsps() {
        for bench in suite_for(arch.name(), [8u32].into_iter()).into_iter().step_by(7) {
            let spec = bench.build();
            let Ok(sketch) = generate_sketch(Template::Dsp, &arch, &spec) else {
                continue;
            };
            let t = pipeline_depth(&spec);
            differential(&bench.name, &spec, &sketch, t, 2);
            ran += 1;
        }
    }
    assert!(ran >= 10, "expected a meaningful tier, ran only {ran}");
}

/// Every portfolio member must agree with the default on a small end-to-end
/// mapping task — the portfolio now spans restart strategies and clause-db
/// policies, and none of that may change verdicts.
#[test]
fn portfolio_members_agree_end_to_end() {
    let arch = Architecture::intel_cyclone10lp();
    let bench = &suite_for(arch.name(), [8u32].into_iter())[0];
    let spec = bench.build();
    let sketch = generate_sketch(Template::Dsp, &arch, &spec).expect("sketch");
    let t = pipeline_depth(&spec);
    let task = SynthesisTask::over_window(&spec, &sketch, t, 2);
    let reference = synthesize(&task, &config(SolverConfig::default())).unwrap();
    for member in SolverConfig::portfolio() {
        let name = member.name.clone();
        let outcome = synthesize(&task, &config(member)).unwrap();
        if !reference.is_timeout() && !outcome.is_timeout() {
            assert_eq!(
                verdict_name(&reference),
                verdict_name(&outcome),
                "portfolio member {name} disagrees with the default"
            );
        }
        if let SynthesisOutcome::Success(result) = outcome {
            assert_model_verifies(&format!("portfolio:{name}"), &spec, &result, t);
        }
    }
}
