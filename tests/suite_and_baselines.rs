//! Integration tests over the microbenchmark suite and the baseline mappers: the
//! relative completeness ordering of Figure 6 (Lakeroad ≥ SOTA ≥ Yosys) must emerge
//! on a sampled subset, and UNSAT verdicts must only appear where the baselines also
//! fail to find a single-DSP mapping (the paper's observation that all three tools
//! agree on the truly unmappable designs).

use std::time::Duration;

use lakeroad::report::{RunClass, Tally};
use lakeroad::suite::{full_suite, suite_for};
use lakeroad_suite::prelude::*;
use lr_baselines::{estimate, BaselineTool};

#[test]
fn full_suite_counts_match_the_paper() {
    assert_eq!(full_suite(ArchName::XilinxUltraScalePlus).len(), 1320);
    assert_eq!(full_suite(ArchName::LatticeEcp5).len(), 396);
    assert_eq!(full_suite(ArchName::IntelCyclone10Lp).len(), 66);
}

#[test]
fn completeness_ordering_holds_on_a_sample() {
    let arch = Architecture::lattice_ecp5();
    let sample: Vec<_> =
        suite_for(ArchName::LatticeEcp5, [8u32].into_iter()).into_iter().step_by(5).collect();
    assert!(!sample.is_empty());
    let config = MapConfig::default().with_timeout(Duration::from_secs(30));

    let mut lakeroad_tally = Tally::default();
    let mut sota_tally = Tally::default();
    let mut yosys_tally = Tally::default();
    for bench in &sample {
        let spec = bench.build();
        let class = match map_design(&spec, Template::Dsp, &arch, &config).unwrap() {
            MapOutcome::Success(m) if m.resources.is_single_dsp() => RunClass::Success,
            MapOutcome::Success(_) => RunClass::Fail,
            MapOutcome::Unsat { .. } => RunClass::Unsat,
            MapOutcome::Timeout { .. } => RunClass::Timeout,
        };
        lakeroad_tally.record(class);
        let sota = estimate(BaselineTool::SotaLike, arch.name(), &spec);
        sota_tally.record(if sota.is_single_dsp() { RunClass::Success } else { RunClass::Fail });
        let yosys = estimate(BaselineTool::YosysLike, arch.name(), &spec);
        yosys_tally.record(if yosys.is_single_dsp() { RunClass::Success } else { RunClass::Fail });
    }

    assert!(
        lakeroad_tally.success >= sota_tally.success,
        "Lakeroad ({}) should map at least as many designs as the SOTA model ({})",
        lakeroad_tally.success,
        sota_tally.success
    );
    assert!(
        sota_tally.success >= yosys_tally.success,
        "the SOTA model ({}) should map at least as many designs as the Yosys model ({})",
        sota_tally.success,
        yosys_tally.success
    );
    assert!(lakeroad_tally.success > 0, "Lakeroad should map something in the sample");
}

#[test]
fn intel_suite_lakeroad_vs_yosys() {
    // Paper §5.1: on Intel, Lakeroad maps all designs while Yosys maps none.
    let arch = Architecture::intel_cyclone10lp();
    let sample: Vec<_> =
        suite_for(ArchName::IntelCyclone10Lp, [8u32].into_iter()).into_iter().collect();
    let config = MapConfig::default().with_timeout(Duration::from_secs(30));
    let mut mapped = 0usize;
    for bench in &sample {
        let spec = bench.build();
        if let MapOutcome::Success(m) = map_design(&spec, Template::Dsp, &arch, &config).unwrap() {
            if m.resources.is_single_dsp() {
                mapped += 1;
            }
        }
        let yosys = estimate(BaselineTool::YosysLike, arch.name(), &spec);
        assert!(!yosys.is_single_dsp(), "modelled Yosys must not map Intel designs");
    }
    assert_eq!(mapped, sample.len(), "Lakeroad should map every width-8 Intel design");
}

#[test]
fn baseline_resource_estimates_are_never_better_than_single_dsp() {
    let suite = suite_for(ArchName::XilinxUltraScalePlus, [8u32, 16].into_iter());
    for bench in suite.iter().step_by(9) {
        let spec = bench.build();
        for tool in [BaselineTool::SotaLike, BaselineTool::YosysLike] {
            let r = estimate(tool, ArchName::XilinxUltraScalePlus, &spec);
            let total = r.dsps + r.logic_elements + r.registers;
            assert!(total >= 1, "every design costs something: {bench:?}");
        }
    }
}
