//! Differential harness for the incremental CEGIS loop: run every sketch/spec pair
//! of the e2e benchmark tier through *both* solving modes — incremental (persistent
//! solver state, assumption-guarded candidate checks) and from-scratch (fresh
//! solvers every iteration) — and require identical verdicts (Success/Unsat, with
//! Timeout exempt because it is budget-dependent) plus models that actually verify
//! against the spec by simulation. This is the safety net for the incremental
//! solver-state machinery in `lr_synth::cegis`.

use std::time::Duration;

use lakeroad_suite::prelude::*;

use lakeroad::pipeline_depth;
use lakeroad::suite::suite_for;
use lr_sketch::generate_sketch;
use lr_synth::{
    synthesize, SolverConfig, SynthesisConfig, SynthesisOutcome, SynthesisTask, Synthesized,
};

fn config(incremental: bool) -> SynthesisConfig {
    // The conflict budget bounds every individual SAT check (wall-clock timeouts
    // are only polled between checks), keeping the harness's worst case small; a
    // blown budget surfaces as the Timeout verdict, which is budget-exempt below.
    SynthesisConfig {
        solver: SolverConfig { conflict_budget: Some(20_000), ..SolverConfig::default() },
        timeout: Some(Duration::from_secs(10)),
        incremental,
        ..SynthesisConfig::default()
    }
}

fn verdict_name(outcome: &SynthesisOutcome) -> &'static str {
    match outcome {
        SynthesisOutcome::Success(_) => "success",
        SynthesisOutcome::Unsat { .. } => "unsat",
        SynthesisOutcome::Timeout { .. } => "timeout",
    }
}

/// xorshift64 seeded per (round, input); `| 1` keeps the seed non-zero.
fn stimulus(round: u64, input_index: u64) -> u64 {
    let mut s = (round << 32 | input_index).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..3 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
    }
    s
}

/// The returned model must verify: the completed implementation simulates
/// identically to the spec on random stimulus at (and a little past) the checked
/// cycles, and the hole assignment it claims must reproduce that implementation.
fn assert_model_verifies(name: &str, spec: &Prog, result: &Synthesized, at_cycle: u32) {
    assert!(!result.implementation.has_holes(), "{name}: implementation still has holes");
    let inputs = spec.free_vars();
    for round in 0..8u64 {
        let mut env = StreamInputs::new();
        for (i, (input, width)) in inputs.iter().enumerate() {
            let value = stimulus(round, i as u64);
            env.set_constant(input.clone(), BitVec::from_u64(value, *width));
        }
        for t in at_cycle..at_cycle + 3 {
            assert_eq!(
                spec.interp(&env, t).unwrap(),
                result.implementation.interp(&env, t).unwrap(),
                "{name}: model does not verify at cycle {t} (round {round})"
            );
        }
    }
}

/// Runs one task through both modes and cross-checks the results. Returns the pair
/// of verdict names for reporting.
fn differential(
    name: &str,
    spec: &Prog,
    sketch: &Prog,
    at_cycle: u32,
    window: u32,
) -> (&'static str, &'static str) {
    let task = SynthesisTask::over_window(spec, sketch, at_cycle, window);
    let inc = synthesize(&task, &config(true)).expect("incremental run must not error");
    let scr = synthesize(&task, &config(false)).expect("from-scratch run must not error");

    // Timeout is budget-dependent; any definite verdict pair must agree exactly.
    if !inc.is_timeout() && !scr.is_timeout() {
        assert_eq!(
            verdict_name(&inc),
            verdict_name(&scr),
            "{name}: incremental and from-scratch disagree"
        );
    }
    assert_eq!(inc.stats().constraints_reencoded, 0, "{name}: incremental mode re-encoded");
    assert!(inc.stats().incremental);
    assert!(!scr.stats().incremental);

    let names = (verdict_name(&inc), verdict_name(&scr));
    if let SynthesisOutcome::Success(result) = inc {
        assert_model_verifies(&format!("{name} (incremental)"), spec, &result, at_cycle);
    }
    if let SynthesisOutcome::Success(result) = scr {
        assert_model_verifies(&format!("{name} (from-scratch)"), spec, &result, at_cycle);
    }
    names
}

/// The e2e DSP tier: the same stratified quick sample of the §5.1 microbenchmark
/// suites the experiment driver uses, for every DSP-bearing architecture.
#[test]
fn dsp_tier_verdicts_agree_between_modes() {
    let mut ran = 0usize;
    let mut agreements: Vec<String> = Vec::new();
    for arch in Architecture::with_dsps() {
        // The quick tier: every 7th benchmark of the one-bitwidth smoke suite.
        for bench in suite_for(arch.name(), [8u32].into_iter()).into_iter().step_by(7) {
            let spec = bench.build();
            let Ok(sketch) = generate_sketch(Template::Dsp, &arch, &spec) else {
                continue;
            };
            let t = pipeline_depth(&spec);
            let (inc, scr) = differential(&bench.name, &spec, &sketch, t, 2);
            agreements.push(format!("{}: {inc}/{scr}", bench.name));
            ran += 1;
        }
    }
    assert!(ran >= 10, "expected a meaningful tier, ran only {ran}: {agreements:?}");
}

/// The bitwise (LUT) template half of the e2e suite, on architectures with and
/// without DSPs.
#[test]
fn bitwise_tier_verdicts_agree_between_modes() {
    let shapes = [("xor", BvOp::Xor), ("and", BvOp::And), ("or", BvOp::Or)];
    for arch in [Architecture::sofa(), Architecture::lattice_ecp5()] {
        for (op_name, op) in shapes {
            let mut b = ProgBuilder::new(format!("{op_name}4"));
            let x = b.input("a", 4);
            let y = b.input("b", 4);
            let out = b.op2(op, x, y);
            let spec = b.finish(out);
            let Ok(sketch) = generate_sketch(Template::Bitwise, &arch, &spec) else {
                continue;
            };
            differential(&format!("{}/{op_name}4", arch.name()), &spec, &sketch, 0, 0);
        }
    }
}

/// Unsatisfiable tasks must be proven UNSAT by both modes (not just fail to find a
/// model): a two-multiply chain cannot fit the single-multiplier Intel DSP.
#[test]
fn unsat_tasks_agree_between_modes() {
    let mut b = ProgBuilder::new("mul_mul");
    let a = b.input("a", 8);
    let x = b.input("b", 8);
    let c = b.input("c", 8);
    let p1 = b.op2(BvOp::Mul, a, x);
    let p2 = b.op2(BvOp::Mul, p1, c);
    let spec = b.finish(p2);
    let arch = Architecture::intel_cyclone10lp();
    let sketch = generate_sketch(Template::Dsp, &arch, &spec).unwrap();
    let (inc, scr) = differential("mul_mul", &spec, &sketch, 0, 2);
    assert_eq!(inc, scr);
}

/// Multi-iteration synthesis (several counterexamples needed) must agree and both
/// models must verify — this is the path where incremental state actually carries
/// learnt clauses between iterations.
#[test]
fn multi_iteration_tasks_agree_between_modes() {
    // spec: out = (a ^ 0x5A) + 0x21 against a two-hole sketch.
    let mut b = ProgBuilder::new("spec");
    let a = b.input("a", 8);
    let m = b.constant_u64(0x5A, 8);
    let x = b.op2(BvOp::Xor, a, m);
    let k = b.constant_u64(0x21, 8);
    let out = b.op2(BvOp::Add, x, k);
    let spec = b.finish(out);

    let mut b = ProgBuilder::new("sketch");
    let a = b.input("a", 8);
    let j = b.hole("j", 8, lr_ir::HoleDomain::AnyConstant);
    let k = b.hole("k", 8, lr_ir::HoleDomain::AnyConstant);
    let x = b.op2(BvOp::Xor, a, j);
    let out = b.op2(BvOp::Add, x, k);
    let sketch = b.finish(out);

    let (inc, scr) = differential("xor_add_two_holes", &spec, &sketch, 0, 0);
    assert_eq!(inc, "success");
    assert_eq!(scr, "success");
}
