//! Cross-crate integration tests: behavioral Verilog in, synthesized single-DSP
//! implementation out, checked for functional equivalence against the source design
//! by simulation (the same Verilator-style validation the paper applies to
//! Lakeroad's output).

use std::time::Duration;

use lakeroad_suite::prelude::*;

fn quick_config() -> MapConfig {
    MapConfig::default().with_timeout(Duration::from_secs(60))
}

/// xorshift64, seeded independently per (round, input). Seeding per-input rather
/// than threading one state through the loop means no input's stream depends on
/// how many inputs came before it, and the seed can never be zero (xorshift's
/// absorbing state), so no round degenerates to all-equal stimulus.
fn stimulus(round: u64, input_index: u64) -> u64 {
    // Mix the coordinates splitmix-style; `| 1` keeps the seed odd, hence non-zero.
    let mut s = (round << 32 | input_index).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..3 {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
    }
    s
}

fn check_equivalent(spec: &Prog, implementation: &Prog, widths: u32, cycles: u32) {
    let inputs = spec.free_vars();
    for round in 0..16u64 {
        let mut env = StreamInputs::new();
        for (i, (name, width)) in inputs.iter().enumerate() {
            let value = stimulus(round, i as u64);
            env.set_constant(name.clone(), BitVec::from_u64(value, *width));
        }
        for t in cycles..cycles + 3 {
            assert_eq!(
                spec.interp(&env, t).unwrap(),
                implementation.interp(&env, t).unwrap(),
                "mismatch at width {widths}, cycle {t}"
            );
        }
    }
}

#[test]
fn add_mul_and_maps_to_a_single_dsp48e2_from_verilog() {
    let verilog = r#"
module add_mul_and(input clk, input [7:0] a, b, c, d, output reg [7:0] out);
  reg [7:0] r;
  always @(posedge clk) begin
    r <= (a+b)*c&d;
    out <= r;
  end
endmodule
"#;
    let arch = Architecture::xilinx_ultrascale_plus();
    let outcome = map_verilog(verilog, Template::Dsp, &arch, &quick_config()).unwrap();
    let mapped = outcome.success().expect("add_mul_and maps to one DSP48E2");
    assert!(mapped.resources.is_single_dsp(), "{:?}", mapped.resources);
    assert!(mapped.verilog.contains("DSP48E2"));
    assert!(mapped.verilog.contains("module add_mul_and_impl"));

    let spec = lr_hdl::parse_and_elaborate(verilog).unwrap();
    check_equivalent(&spec, &mapped.implementation, 8, 2);
}

#[test]
fn lattice_multiply_accumulate_maps_and_matches() {
    let mut b = ProgBuilder::new("mac");
    let a = b.input("a", 10);
    let x = b.input("b", 10);
    let c = b.input("c", 10);
    let prod = b.op2(BvOp::Mul, a, x);
    let sum = b.op2(BvOp::Add, prod, c);
    let out = b.reg(sum, 10);
    let spec = b.finish(out);

    let arch = Architecture::lattice_ecp5();
    let outcome = map_design(&spec, Template::Dsp, &arch, &quick_config()).unwrap();
    let mapped = outcome.success().expect("mac maps to the ECP5 DSP");
    assert!(mapped.resources.is_single_dsp());
    check_equivalent(&spec, &mapped.implementation, 10, 1);
}

#[test]
fn logic_post_op_designs_map_only_on_architectures_with_a_logic_unit() {
    // (a * b) ^ c fits the DSP48E2 and the ECP5 DSP (both have a post-ALU with
    // logic modes in our models) but not the bare Intel multiplier.
    let mut b = ProgBuilder::new("mul_xor");
    let a = b.input("a", 8);
    let x = b.input("b", 8);
    let c = b.input("c", 8);
    let prod = b.op2(BvOp::Mul, a, x);
    let out = b.op2(BvOp::Xor, prod, c);
    let spec = b.finish(out);

    let xilinx =
        map_design(&spec, Template::Dsp, &Architecture::xilinx_ultrascale_plus(), &quick_config())
            .unwrap();
    assert!(xilinx.is_success());

    let intel =
        map_design(&spec, Template::Dsp, &Architecture::intel_cyclone10lp(), &quick_config())
            .unwrap();
    assert!(!intel.is_success(), "the Intel multiplier has no logic unit");
}

#[test]
fn bitwise_template_maps_logic_onto_sofa_luts() {
    // SOFA has no DSP, but the bitwise template maps pure logic onto frac_lut4s.
    let mut b = ProgBuilder::new("xor4");
    let a = b.input("a", 4);
    let x = b.input("b", 4);
    let out = b.op2(BvOp::Xor, a, x);
    let spec = b.finish(out);

    let arch = Architecture::sofa();
    let outcome = map_design(&spec, Template::Bitwise, &arch, &quick_config()).unwrap();
    let mapped = outcome.success().expect("xor maps onto LUT4s");
    assert_eq!(mapped.resources.dsps, 0);
    assert_eq!(mapped.resources.logic_elements, 4);
    check_equivalent(&spec, &mapped.implementation, 4, 0);
    assert!(mapped.verilog.contains("frac_lut4"));
}

#[test]
fn emitted_verilog_reparses_for_combinational_designs() {
    // The structural output for LUT-only designs round-trips through the mini-HDL
    // parser (it avoids primitive instantiations by being re-read as behavioral
    // wiring is not possible; here we simply check it is non-trivial text).
    let mut b = ProgBuilder::new("and2");
    let a = b.input("a", 2);
    let x = b.input("b", 2);
    let out = b.op2(BvOp::And, a, x);
    let spec = b.finish(out);
    let arch = Architecture::lattice_ecp5();
    let outcome = map_design(&spec, Template::Bitwise, &arch, &quick_config()).unwrap();
    let mapped = outcome.success().unwrap();
    assert!(mapped.verilog.contains("module and2_impl"));
    assert!(mapped.verilog.matches("LUT4").count() >= 2);
}
