//! Smoke test: every `examples/*.rs` file compiles against the facade prelude.
//!
//! Each example is included as a module of this test crate, so `cargo test`
//! fails to build if any example drifts out of sync with the public API — even
//! in configurations where example targets themselves are not compiled. The
//! examples' `main` functions are deliberately not run here (some sweep whole
//! microbenchmark suites); CI additionally runs `cargo build --examples`.

macro_rules! include_example {
    ($name:ident, $path:literal) => {
        #[allow(dead_code)]
        #[path = $path]
        mod $name;
    };
}

include_example!(add_mul_and, "../examples/add_mul_and.rs");
include_example!(baseline_comparison, "../examples/baseline_comparison.rs");
include_example!(multi_arch, "../examples/multi_arch.rs");
include_example!(partial_design_mapping, "../examples/partial_design_mapping.rs");
include_example!(quickstart, "../examples/quickstart.rs");

#[test]
fn all_examples_compile() {
    // The assertion is the successful compilation of the modules above.
}
