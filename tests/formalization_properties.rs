//! Property-based integration tests of the §3 formalization claims:
//!
//! * correctness — when synthesis succeeds, the completed sketch is a well-formed
//!   completion of the sketch and equivalent to the design at the required cycles
//!   (checked by simulation on random inputs);
//! * hole filling produces programs in ℒstruct whenever the sketch was in ℒsketch;
//! * the structural Verilog emitter never alters semantics-bearing structure
//!   (checked indirectly: emitted text names every primitive of the implementation).

use proptest::prelude::*;

use lakeroad_suite::prelude::*;
use std::time::Duration;

fn random_design(shape: u8, width: u32, stages: u32) -> Prog {
    let mut b = ProgBuilder::new("prop_design");
    let a = b.input("a", width);
    let x = b.input("b", width);
    let c = b.input("c", width);
    let prod = b.op2(BvOp::Mul, a, x);
    let mut out = match shape % 4 {
        0 => prod,
        1 => b.op2(BvOp::Add, prod, c),
        2 => b.op2(BvOp::Sub, prod, c),
        _ => b.op2(BvOp::Xor, prod, c),
    };
    if shape % 4 == 0 {
        // keep `c` used so spec and sketch agree on inputs
        let masked = b.op2(BvOp::Or, out, c);
        out = masked;
    }
    for _ in 0..stages {
        out = b.reg(out, width);
    }
    b.finish(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn successful_mappings_are_equivalent_to_their_specs(
        shape in 0u8..4,
        width in 4u32..=8,
        stages in 0u32..=1,
        probes in proptest::collection::vec(0u64..=u64::MAX, 8),
    ) {
        let spec = random_design(shape, width, stages);
        let arch = Architecture::xilinx_ultrascale_plus();
        let config = MapConfig::default().with_timeout(Duration::from_secs(30));
        let outcome = map_design(&spec, Template::Dsp, &arch, &config).unwrap();
        if let MapOutcome::Success(mapped) = outcome {
            prop_assert!(mapped.implementation.well_formed().is_ok());
            prop_assert!(!mapped.implementation.has_holes());
            for chunk in probes.chunks(3) {
                let mut env = StreamInputs::new();
                for (value, (name, w)) in chunk.iter().zip(spec.free_vars()) {
                    env.set_constant(name, BitVec::from_u64(*value, w));
                }
                if spec.free_vars().len() > chunk.len() {
                    continue;
                }
                for t in stages..stages + 2 {
                    prop_assert_eq!(
                        spec.interp(&env, t).unwrap(),
                        mapped.implementation.interp(&env, t).unwrap()
                    );
                }
            }
            // The emitter mentions the DSP once (single-DSP mapping) or not at all.
            let dsp_mentions = mapped.verilog.matches("DSP48E2").count();
            prop_assert_eq!(dsp_mentions, mapped.resources.dsps);
        }
    }
}
