//! # lakeroad-suite
//!
//! Workspace-root convenience crate: re-exports the public API of every crate in the
//! Lakeroad reproduction so the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`) have a single import point.
//!
//! The interesting code lives in the member crates:
//!
//! * [`lakeroad`] — the technology mapper itself (`map_design`, `map_verilog`,
//!   microbenchmark suites, reporting).
//! * [`lr_serve`] — the batch mapping engine: content-addressed synthesis
//!   cache and work-stealing scheduler.
//! * [`lr_sketch`] — architecture-independent sketch templates.
//! * [`lr_arch`] — architecture descriptions and primitive semantics.
//! * [`lr_synth`] — the CEGIS synthesis engine and solver portfolio.
//! * [`lr_ir`] — the ℒlr intermediate language.
//! * [`lr_hdl`] — the behavioral mini-Verilog frontend and structural emitter.
//! * [`lr_smt`] / [`lr_sat`] / [`lr_bv`] — the QF_BV and SAT substrates.

pub use lakeroad;
pub use lr_arch;
pub use lr_baselines;
pub use lr_bv;
pub use lr_hdl;
pub use lr_ir;
pub use lr_serve;
pub use lr_sketch;
pub use lr_smt;
pub use lr_synth;

/// A prelude with the items most examples need.
pub mod prelude {
    pub use lakeroad::{map_design, map_verilog, MapConfig, MapOutcome, Resources, Template};
    pub use lr_arch::{ArchName, Architecture};
    pub use lr_bv::BitVec;
    pub use lr_ir::{BvOp, Prog, ProgBuilder, StreamInputs};
    pub use lr_serve::{run_batch, BatchJob, BatchOptions, SynthCache, TemplateChoice};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_reexports_compile() {
        use crate::prelude::*;
        let arch = Architecture::sofa();
        assert_eq!(arch.name(), ArchName::Sofa);
        let _ = BitVec::from_u64(1, 1);
    }
}
