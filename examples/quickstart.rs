//! Quickstart: map a behavioral multiply onto the Intel Cyclone 10 LP embedded
//! multiplier and print the synthesized structural Verilog.
//!
//! Run with `cargo run --example quickstart`.

use lakeroad_suite::prelude::*;

fn main() {
    // 1. Describe the behavioral design (this is what you would normally write in
    //    Verilog; see examples/add_mul_and.rs for the Verilog-driven flow).
    let mut b = ProgBuilder::new("mul8");
    let a = b.input("a", 8);
    let x = b.input("b", 8);
    let out = b.op2(BvOp::Mul, a, x);
    let spec = b.finish(out);

    // 2. Pick an architecture (input 2 of Figure 1) and the DSP sketch template.
    let arch = Architecture::intel_cyclone10lp();

    // 3. Map. The primitive semantics (input 3 of Figure 1) are already imported.
    let outcome = map_design(&spec, Template::Dsp, &arch, &MapConfig::default())
        .expect("the mapping task is well-formed");

    match outcome {
        MapOutcome::Success(mapped) => {
            println!("mapped `mul8` onto {} in {:.2?}", arch.name(), mapped.elapsed);
            println!(
                "resources: {} DSP, {} logic elements, {} registers",
                mapped.resources.dsps, mapped.resources.logic_elements, mapped.resources.registers
            );
            if let Some(winner) = &mapped.winning_solver {
                println!("winning portfolio member: {winner}");
            }
            println!("\n--- structural Verilog ---\n{}", mapped.verilog);
        }
        MapOutcome::Unsat { .. } => println!("no single-DSP implementation exists"),
        MapOutcome::Timeout { .. } => println!("synthesis timed out"),
    }
}
