//! Maps the same behavioral design onto all three DSP-bearing architectures,
//! demonstrating that the sketch templates are architecture-independent: nothing
//! about the design or the template changes between targets, only the architecture
//! description.
//!
//! Run with `cargo run --example multi_arch`.

use lakeroad_suite::prelude::*;

fn multiply_accumulate(width: u32) -> Prog {
    // out <= (a * b) + c, registered once.
    let mut b = ProgBuilder::new("mac");
    let a = b.input("a", width);
    let x = b.input("b", width);
    let c = b.input("c", width);
    let prod = b.op2(BvOp::Mul, a, x);
    let sum = b.op2(BvOp::Add, prod, c);
    let out = b.reg(sum, width);
    b.finish(out)
}

fn main() {
    let spec = multiply_accumulate(8);
    for arch in Architecture::with_dsps() {
        let outcome = map_design(&spec, Template::Dsp, &arch, &MapConfig::default())
            .expect("task is well-formed");
        match outcome {
            MapOutcome::Success(mapped) => println!(
                "{:22} -> single {}: {} (in {:.2?})",
                arch.name().to_string(),
                mapped
                    .implementation
                    .nodes()
                    .find_map(|(_, n)| match n {
                        lr_ir::Node::Prim(p) => Some(p.module.clone()),
                        _ => None,
                    })
                    .unwrap_or_default(),
                if mapped.resources.is_single_dsp() { "single DSP" } else { "DSP + soft logic" },
                mapped.elapsed
            ),
            MapOutcome::Unsat { elapsed, .. } => println!(
                "{:22} -> UNSAT: a multiply-accumulate does not fit this DSP ({elapsed:.2?})",
                arch.name().to_string()
            ),
            MapOutcome::Timeout { elapsed, .. } => {
                println!("{:22} -> timeout after {elapsed:.2?}", arch.name().to_string())
            }
        }
    }
}
