//! The paper's running example (§2): the `add_mul_and` module, which the
//! state-of-the-art flow maps to one DSP **plus 32 registers and 16 LUTs**, but which
//! Lakeroad maps to a single DSP48E2.
//!
//! This example drives the full partial-design-mapping workflow: behavioral Verilog
//! in, structural Verilog out, with the baseline comparison alongside.
//!
//! Run with `cargo run --example add_mul_and` (add `--release` for the 16-bit
//! version; the default runs at 8 bits so the example finishes in seconds).

use lakeroad_suite::prelude::*;
use lr_baselines::{estimate, BaselineTool};

const ADD_MUL_AND_8: &str = r#"
// add_mul_and.v: computes (a+b)*c&d in two clock cycles.
module add_mul_and(input clk, input [7:0] a, b, c, d,
                   output reg [7:0] out);
  reg [7:0] r;
  always @(posedge clk) begin
    r <= (a+b)*c&d;
    out <= r;
  end
endmodule
"#;

fn main() {
    let arch = Architecture::xilinx_ultrascale_plus();
    println!("$ lakeroad --template dsp --arch-desc xilinx-ultrascale-plus.yml add_mul_and.v\n");

    // What the baselines do with this module (the §2.1 story).
    let spec = lr_hdl::parse_and_elaborate(ADD_MUL_AND_8).expect("example Verilog parses");
    for tool in [BaselineTool::SotaLike, BaselineTool::YosysLike] {
        let r = estimate(tool, arch.name(), &spec);
        println!("{tool}: {} DSP, {} LUTs, {} registers", r.dsps, r.logic_elements, r.registers);
    }

    // What Lakeroad does.
    let outcome = map_verilog(ADD_MUL_AND_8, Template::Dsp, &arch, &MapConfig::default())
        .expect("mapping task is well-formed");
    match outcome {
        MapOutcome::Success(mapped) => {
            println!(
                "Lakeroad: {} DSP, {} LUTs, {} registers  (in {:.2?})",
                mapped.resources.dsps,
                mapped.resources.logic_elements,
                mapped.resources.registers,
                mapped.elapsed
            );
            assert!(mapped.resources.is_single_dsp());
            println!("\n--- add_mul_and_impl.v ---\n{}", mapped.verilog);
        }
        other => println!("unexpected outcome: {other:?}"),
    }
}
