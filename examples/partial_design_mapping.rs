//! Partial design mapping (§2.1): a larger design contains four instances of the
//! same DSP-shaped computation; the designer separates the module out and maps it
//! with Lakeroad, then reuses the result four times.
//!
//! Run with `cargo run --example partial_design_mapping`.

use lakeroad_suite::prelude::*;

fn main() {
    // The module the designer pulled out of the larger design:
    //   for (i = 0; i < 4; i++) r[i] <= (d[i] + a[i]) * b[i] & c[i];
    let verilog = r#"
module lane(input clk, input [7:0] a, b, c, d, output reg [7:0] out);
  always @(posedge clk) out <= (d + a) * b & c;
endmodule
"#;
    let arch = Architecture::xilinx_ultrascale_plus();
    let outcome = map_verilog(verilog, Template::Dsp, &arch, &MapConfig::default())
        .expect("mapping task is well-formed");
    let mapped = outcome.success().expect("the lane maps to a single DSP48E2");
    assert!(mapped.resources.is_single_dsp());

    println!("one lane maps to a single DSP48E2 ({:.2?})", mapped.elapsed);
    println!("the full four-lane design therefore uses 4 DSPs and no soft logic,");
    println!("versus 4 DSPs + 128 registers + 64 LUTs reported for the SOTA flow in §2.1.\n");
    println!("--- lane_impl.v ---\n{}", mapped.verilog);
}
