//! Runs a slice of the Xilinx microbenchmark suite through Lakeroad and the two
//! modelled baselines, printing a miniature version of Figure 6 (top).
//!
//! Run with `cargo run --release --example baseline_comparison`.

use lakeroad::report::{proportion_bar, RunClass, Tally};
use lakeroad::suite::suite_for;
use lakeroad_suite::prelude::*;
use lr_baselines::{estimate, BaselineTool};

fn main() {
    let arch = Architecture::xilinx_ultrascale_plus();
    // Width-8 suite, every 11th benchmark, to keep the example quick.
    let benchmarks: Vec<_> = suite_for(ArchName::XilinxUltraScalePlus, [8u32].into_iter())
        .into_iter()
        .step_by(11)
        .collect();
    println!("running {} Xilinx UltraScale+ microbenchmarks (width 8)\n", benchmarks.len());

    let mut lakeroad_tally = Tally::default();
    let mut sota_tally = Tally::default();
    let mut yosys_tally = Tally::default();
    let config = MapConfig::default().with_timeout(std::time::Duration::from_secs(20));

    for bench in &benchmarks {
        let spec = bench.build();
        let class = match map_design(&spec, Template::Dsp, &arch, &config) {
            Ok(MapOutcome::Success(m)) if m.resources.is_single_dsp() => RunClass::Success,
            Ok(MapOutcome::Success(_)) => RunClass::Fail,
            Ok(MapOutcome::Unsat { .. }) => RunClass::Unsat,
            _ => RunClass::Timeout,
        };
        lakeroad_tally.record(class);
        for (tool, tally) in
            [(BaselineTool::SotaLike, &mut sota_tally), (BaselineTool::YosysLike, &mut yosys_tally)]
        {
            let r = estimate(tool, arch.name(), &spec);
            tally.record(if r.is_single_dsp() { RunClass::Success } else { RunClass::Fail });
        }
    }

    for (label, tally) in [
        ("Lakeroad", &lakeroad_tally),
        ("SOTA (modelled)", &sota_tally),
        ("Yosys (modelled)", &yosys_tally),
    ] {
        println!(
            "{label:18} {} {:5.1}% mapped to a single DSP",
            proportion_bar(tally.success_rate(), 30),
            100.0 * tally.success_rate()
        );
    }
}
