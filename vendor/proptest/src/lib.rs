//! A minimal, dependency-free, API-compatible subset of the `proptest` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the real
//! `proptest` cannot be downloaded. This shim implements exactly the surface the
//! workspace's property tests use — `proptest!`, `prop_compose!`, `prop_oneof!`,
//! `prop_assert!`/`prop_assert_eq!`, integer-range strategies, tuples, `Just`,
//! `prop_map`/`prop_flat_map`/`prop_recursive`, `collection::vec`, `bool::ANY`,
//! and `ProptestConfig::with_cases` — with the same semantics a QuickCheck-style
//! runner provides: generate N random cases per test and fail loudly with the
//! offending input.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case is reported as-is (its `Debug` form is
//!   printed) instead of being minimized.
//! * **Deterministic seeding.** Case seeds are derived from the test name and the
//!   case index, so failures reproduce across runs and machines. Set
//!   `PROPTEST_SEED=<u64>` to perturb the sequence.
//! * **Uniform generation.** Integer ranges sample uniformly; there is no bias
//!   toward boundary values.

use std::fmt::Debug;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// SplitMix64: tiny, fast, passes BigCrush for this purpose; each test case gets
/// an independent stream keyed off (test name, case index).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant at the sample counts involved here.
        self.next_u64() % n
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of random values. Unlike the real proptest `Strategy`, this one
/// produces plain values (no value trees, no shrinking).
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, O>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O + 'static,
        Self::Value: 'static,
    {
        Map { inner: self, f: Rc::new(f) }
    }

    fn prop_flat_map<R, F>(self, f: F) -> FlatMap<Self, R::Value>
    where
        Self: Sized,
        R: Strategy + 'static,
        F: Fn(Self::Value) -> R + 'static,
        Self::Value: 'static,
    {
        FlatMap { inner: self, f: Rc::new(move |v| f(v).boxed()) }
    }

    /// Builds strategies for recursive data: `recurse` receives the strategy for
    /// the previous depth level and returns one producing a deeper level. Each
    /// level mixes in the base strategy so generated trees vary in size.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut cur = base.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = Union::new(vec![base.clone(), deeper.clone(), deeper]).boxed();
        }
        cur
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the given value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S: Strategy, O> {
    inner: S,
    f: Rc<dyn Fn(S::Value) -> O>,
}

impl<S: Strategy, O: Debug> Strategy for Map<S, O> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S: Strategy, T> {
    inner: S,
    f: Rc<dyn Fn(S::Value) -> BoxedStrategy<T>>,
}

impl<S: Strategy, T: Debug> Strategy for FlatMap<S, T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Picks one of several strategies uniformly per generated value (`prop_oneof!`).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].generate(rng)
    }
}

// Integer ranges. Arithmetic goes through i128 so `0u64..=u64::MAX` and signed
// ranges both work without overflow.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let hi = self.end as i128; // exclusive
                let span = (hi - lo) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128;
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                // span can only exceed u64::MAX for 128-bit-wide ranges of u64/i64,
                // where taking the full 64 random bits is exactly uniform.
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    (rng.next_u64() as u128) % span
                };
                (lo + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod bool {
    //! `proptest::bool` — strategies for `bool`.
    use super::{Strategy, TestRng};

    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! `proptest::collection` — strategies for collections.
    use super::{Strategy, TestRng};

    /// Accepted by [`vec`] as a length spec: a fixed `usize`, `lo..hi`, or `lo..=hi`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Runner configuration; only `cases` is meaningful in this shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass: a real failure, or a rejected (discarded) input.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives one `proptest!`-declared test: generates `config.cases` inputs and runs
/// the body on each. Called by the `proptest!` macro expansion, not by hand.
pub fn run_cases<S, F>(config: ProptestConfig, name: &str, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> TestCaseResult,
{
    let perturb =
        std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
    let base = fnv1a(name) ^ perturb;
    for case in 0..config.cases {
        let mut rng =
            TestRng::new(base.wrapping_add((case as u64).wrapping_mul(0xA076_1D64_78BD_642F)));
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        match test(value) {
            Ok(()) | Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest: test `{name}` failed at case {case}/{}\n  {msg}\n  input: {shown}",
                config.cases
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { body }` becomes
/// a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(
                $config,
                stringify!($name),
                ($($strat,)+),
                |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

/// Composes strategies into a named strategy-returning function. Supports the
/// one- and two-binding-group forms of the real macro.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:tt)*)
        ($($pat1:pat in $strat1:expr),+ $(,)?)
        ($($pat2:pat in $strat2:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])* $vis fn $name($($arg)*) -> impl $crate::Strategy<Value = $ret> {
            #[allow(unused_imports)]
            use $crate::Strategy as _;
            ($($strat1,)+).prop_flat_map(move |($($pat1,)+)| {
                ($($strat2,)+).prop_map(move |($($pat2,)+)| $body)
            })
        }
    };
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:tt)*)
        ($($pat1:pat in $strat1:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])* $vis fn $name($($arg)*) -> impl $crate::Strategy<Value = $ret> {
            #[allow(unused_imports)]
            use $crate::Strategy as _;
            ($($strat1,)+).prop_map(move |($($pat1,)+)| $body)
        }
    };
}

/// Picks among several strategies with equal probability.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        #[allow(unused_imports)]
        use $crate::Strategy as _;
        $crate::Union::new(vec![$($strat.boxed()),+])
    }};
}

/// Like `assert!`, but fails the current proptest case instead of panicking
/// directly (so the runner can attach the generated input).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n  {}",
                    l, r, format!($($fmt)+)
                );
            }
        }
    };
}

/// The subset of `proptest::prelude` the workspace uses.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod shim_tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u32..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (1u32..=64).generate(&mut rng);
            assert!((1..=64).contains(&w));
            let s = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&s));
            let _full: u64 = (0u64..=u64::MAX).generate(&mut rng);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = crate::TestRng::new(11);
        let strat = crate::collection::vec(0u64..=u64::MAX, 1..=3);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
        }
        let fixed = crate::collection::vec(0u8..=255, 8);
        assert_eq!(fixed.generate(&mut rng).len(), 8);
    }

    #[test]
    fn oneof_hits_every_variant() {
        let mut rng = crate::TestRng::new(13);
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_plumbing_works(a in 0u32..100, b in 0u32..100) {
            prop_assert!(a < 100);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
