//! A minimal, dependency-free, API-compatible subset of the `criterion` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the real
//! `criterion` cannot be downloaded. This shim implements the surface the
//! workspace's benches use — `criterion_group!` / `criterion_main!`, `Criterion`,
//! `benchmark_group` with `sample_size` / `bench_function` / `finish`,
//! `Bencher::iter`, and `black_box` — and reports mean/min/max wall-clock time per
//! benchmark to stdout. There are no statistical analyses, plots, or baselines.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to each benchmark function by `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, sample_size }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    // Warm-up sample, then `sample_size` timed samples.
    let mut bencher = Bencher { elapsed: Duration::ZERO };
    f(&mut bencher);
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        samples.push(bencher.elapsed);
    }
    let total: Duration = samples.iter().sum();
    let mean = total / sample_size as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!("  {id}: mean {mean:?}  min {min:?}  max {max:?}  ({sample_size} samples)");
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
    }
}

/// Declares a group function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
