//! The `lakeroad` command-line tool.
//!
//! Single-design mode — the interface shown in the paper's §2.2:
//!
//! ```text
//! $ lakeroad --template dsp --arch-desc xilinx-ultrascale-plus add_mul_and.v
//! ```
//!
//! reads a behavioral mini-Verilog module, maps it onto the requested
//! architecture with the requested sketch template, and writes the synthesized
//! structural Verilog to stdout (or `--output <file>`).
//!
//! Netlist mode — the cone-partitioned structural frontend:
//!
//! ```text
//! $ lakeroad map-netlist c880.bench --arch-desc intel-cyclone10lp --jobs 4
//! ```
//!
//! parses an AIGER/`.bench` netlist, cuts it into LUT-sized cones, maps every
//! cone as a batch job over the shared synthesis cache, stitches the results
//! into one structural design, and verifies the stitch against the original
//! netlist on random stimulus (see `lr_serve::netlist`).
//!
//! Batch mode — the `lr_serve` engine:
//!
//! ```text
//! $ lakeroad batch jobs.manifest --jobs 4 --cache warm.lrc
//! ```
//!
//! runs every job of a manifest (designs × architectures × templates, see
//! `lr_serve::parse_manifest` for the format) over the work-stealing scheduler,
//! sharing one content-addressed synthesis cache across all jobs; `--cache`
//! persists that cache across invocations, so a repeated batch is served warm.
//!
//! Serve mode — the resident daemon:
//!
//! ```text
//! $ lakeroad serve --addr 127.0.0.1:9077 --jobs 4 --cache warm.lrc
//! ```
//!
//! keeps one always-warm, size-bounded synthesis cache alive across many
//! clients, speaking the length-prefixed JSON protocol of `lr_serve::protocol`
//! over TCP. The process runs until a client sends `{"kind": "shutdown"}`,
//! then drains gracefully: every admitted job is finished and answered.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use lakeroad::{map_design, map_design_auto, MapConfig, MapOutcome, Template};
use lr_arch::{ArchName, Architecture};
use lr_serve::{
    parse_arch_name, parse_manifest, run_batch_streaming, BatchOptions, BatchReport, Daemon,
    DaemonConfig, JobResult, SynthCache,
};

/// Which sketch template(s) to try: a named template, or `auto` — the ranking the
/// rule-driven sketch guidance derives from the design's saturated e-graph.
enum TemplateChoice {
    Named(Template),
    Auto,
}

struct Options {
    template: TemplateChoice,
    arch_name: ArchName,
    arch: Architecture,
    input: String,
    output: Option<String>,
    timeout: Duration,
    incremental: bool,
    egraph: bool,
    stats: bool,
    trace: Option<String>,
}

fn usage() -> String {
    "usage: lakeroad --template <auto|dsp|bitwise|bitwise-with-carry|comparison|multiplication>\n\
     \x20               --arch-desc <xilinx-ultrascale-plus|lattice-ecp5|intel-cyclone10lp|sofa>\n\
     \x20               [--timeout <seconds>] [--no-incremental] [--no-egraph] [--stats]\n\
     \x20               [--trace <out.json>] [--output <file>] <design.v | bench:<name>>\n\
     \x20      lakeroad map-netlist <design.aag|.aig|.bench> [--arch-desc <name>]\n\
     \x20               [--jobs <N>] [--cache <file>] [--no-cache] [--timeout <seconds>]\n\
     \x20               [--max-cone-ands <N>] [--verify-envs <N>] [--seed <u64>]\n\
     \x20               [--output <file>] [--trace <out.json>]\n\
     \x20      lakeroad batch <manifest> [--jobs <N>] [--cache <file>] [--no-cache]\n\
     \x20               [--timeout <seconds>] [--no-incremental] [--no-egraph]\n\
     \x20               [--trace <out.json>]\n\
     \x20      lakeroad serve [--addr <host:port>] [--jobs <N>] [--cache <file>]\n\
     \x20               [--cache-capacity <entries>] [--persist-interval <seconds>]\n\
     \x20               [--max-pending <N>] [--timeout <seconds>] [--no-incremental]\n\
     \x20               [--no-egraph] [--trace] [--slow-ms <ms>]\n\
     \x20               [--forensics-dir <dir>] [--forensics-keep <N>]\n\
     \x20      lakeroad top [--addr <host:port>] [--interval <seconds>] [--once]"
        .to_string()
}

/// Renders the winning run's solver statistics (requested with `--stats`): the
/// CEGIS loop shape, the SAT effort, and the CDCL clause-quality telemetry —
/// glue histogram, minimization ratio, learnt-database tier sizes.
fn render_stats(stats: &lakeroad::SynthesisStats) -> String {
    let mut out = String::from("-- synthesis statistics --\n");
    out.push_str(&format!(
        "  solver            : {} ({} restarts mode{})\n",
        stats.solver_name,
        stats.restart_mode,
        if stats.from_cache { ", served from cache" } else { "" },
    ));
    out.push_str(&format!(
        "  cegis             : {} iterations, {} examples, incremental={}\n",
        stats.iterations, stats.examples, stats.incremental
    ));
    out.push_str(&format!(
        "  sat effort        : {} conflicts, {} propagations, {} restarts\n",
        stats.conflicts, stats.propagations, stats.restarts
    ));
    let learnt_total: u64 = stats.glue_histogram.iter().sum();
    let minimized_pct = if stats.learnt_literals + stats.minimized_literals > 0 {
        100.0 * stats.minimized_literals as f64
            / (stats.learnt_literals + stats.minimized_literals) as f64
    } else {
        0.0
    };
    out.push_str(&format!(
        "  learnt clauses    : {} stored, {} literals, {} minimized away ({:.1}%)\n",
        learnt_total, stats.learnt_literals, stats.minimized_literals, minimized_pct
    ));
    let glue: Vec<String> = stats
        .glue_histogram
        .iter()
        .enumerate()
        .map(|(i, n)| {
            if i + 1 < stats.glue_histogram.len() {
                format!("{}:{}", i + 1, n)
            } else {
                format!("{}+:{}", i + 1, n)
            }
        })
        .collect();
    out.push_str(&format!("  glue histogram    : {}\n", glue.join(" ")));
    out.push_str(&format!(
        "  tier sizes (last) : core {} / mid {} / local {}\n",
        stats.sat_tier_sizes[0], stats.sat_tier_sizes[1], stats.sat_tier_sizes[2]
    ));
    out.push_str(&format!(
        "  egraph prefold    : {} attempts, {} folds; verification used SAT: {}\n",
        stats.egraph_attempts, stats.egraph_folds, stats.verification_used_sat
    ));
    out
}

/// Drains the trace buffer: writes it to `path` as Chrome trace-event JSON
/// (open it in `chrome://tracing` or Perfetto) and prints the aggregated
/// per-stage summary to stderr. Shared by the single-design and batch modes.
fn finish_trace(path: &str) -> Vec<lr_trace::TraceEvent> {
    lr_trace::flush();
    let events = lr_trace::take_events();
    match std::fs::write(path, lr_serve::chrome_trace_json(&events)) {
        Ok(()) => eprintln!("wrote {} trace events to `{path}`", events.len()),
        Err(e) => eprintln!("cannot write trace `{path}`: {e}"),
    }
    if lr_trace::dropped_events() > 0 {
        eprintln!(
            "({} older events were dropped by the bounded buffer)",
            lr_trace::dropped_events()
        );
    }
    eprint!("{}", lr_trace::stage_summary(&events));
    events
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut template = None;
    let mut arch = None;
    let mut input = None;
    let mut output = None;
    let mut timeout = Duration::from_secs(120);
    let mut incremental = true;
    let mut egraph = true;
    let mut stats = false;
    let mut trace = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats" => stats = true,
            "--trace" => {
                i += 1;
                trace = Some(args.get(i).ok_or("--trace needs an output file")?.clone());
            }
            "--template" => {
                i += 1;
                let name = args.get(i).ok_or("--template needs a value")?;
                template = Some(if name == "auto" {
                    TemplateChoice::Auto
                } else {
                    TemplateChoice::Named(
                        Template::from_cli_name(name)
                            .ok_or(format!("unknown template `{name}`"))?,
                    )
                });
            }
            "--arch-desc" => {
                i += 1;
                let name = args.get(i).ok_or("--arch-desc needs a value")?;
                arch = Some(parse_arch_name(name).ok_or(format!("unknown architecture `{name}`"))?);
            }
            "--timeout" => {
                i += 1;
                let secs: u64 = args
                    .get(i)
                    .ok_or("--timeout needs a value")?
                    .parse()
                    .map_err(|_| "--timeout expects a number of seconds".to_string())?;
                timeout = Duration::from_secs(secs);
            }
            "--no-incremental" => incremental = false,
            "--no-egraph" => egraph = false,
            "--egraph" => egraph = true,
            "--output" | "-o" => {
                i += 1;
                output = Some(args.get(i).ok_or("--output needs a value")?.clone());
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => input = Some(other.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
        i += 1;
    }
    let arch_name = arch.ok_or(format!("missing --arch-desc\n{}", usage()))?;
    Ok(Options {
        template: template.ok_or(format!("missing --template\n{}", usage()))?,
        arch_name,
        arch: Architecture::load(arch_name),
        input: input.ok_or(format!("missing input design\n{}", usage()))?,
        output,
        timeout,
        incremental,
        egraph,
        stats,
        trace,
    })
}

struct BatchArgs {
    manifest: String,
    jobs: usize,
    cache_path: Option<String>,
    use_cache: bool,
    timeout: Duration,
    incremental: bool,
    egraph: bool,
    trace: Option<String>,
}

fn parse_batch_args(args: &[String]) -> Result<BatchArgs, String> {
    let mut manifest = None;
    let mut jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut cache_path = None;
    let mut use_cache = true;
    let mut timeout = Duration::from_secs(120);
    let mut incremental = true;
    let mut egraph = true;
    let mut trace = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => {
                i += 1;
                trace = Some(args.get(i).ok_or("--trace needs an output file")?.clone());
            }
            "--jobs" | "-j" => {
                i += 1;
                jobs = args
                    .get(i)
                    .ok_or("--jobs needs a value")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--jobs expects a worker count of at least 1".to_string())?;
            }
            "--cache" => {
                i += 1;
                cache_path = Some(args.get(i).ok_or("--cache needs a file path")?.clone());
            }
            "--no-cache" => use_cache = false,
            "--timeout" => {
                i += 1;
                let secs: u64 = args
                    .get(i)
                    .ok_or("--timeout needs a value")?
                    .parse()
                    .map_err(|_| "--timeout expects a number of seconds".to_string())?;
                timeout = Duration::from_secs(secs);
            }
            "--no-incremental" => incremental = false,
            "--no-egraph" => egraph = false,
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => manifest = Some(other.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
        i += 1;
    }
    Ok(BatchArgs {
        manifest: manifest.ok_or(format!("missing batch manifest\n{}", usage()))?,
        jobs,
        cache_path,
        use_cache,
        timeout,
        incremental,
        egraph,
        trace,
    })
}

fn batch_main(args: &[String]) -> ExitCode {
    let options = match parse_batch_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let manifest_path = std::path::Path::new(&options.manifest);
    let text = match std::fs::read_to_string(manifest_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("cannot read `{}`: {e}", options.manifest);
            return ExitCode::from(2);
        }
    };
    let base = manifest_path.parent().unwrap_or_else(|| std::path::Path::new("."));
    let jobs = match parse_manifest(&text, base) {
        Ok(jobs) => jobs,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    // `--cache <path>` loads/saves a persistent cache; the default is a cache
    // that lives for this batch only; `--no-cache` synthesizes every job.
    let cache = if options.use_cache {
        let cache = match &options.cache_path {
            Some(path) => match SynthCache::load(std::path::Path::new(path)) {
                Ok(cache) => {
                    if !cache.is_empty() {
                        eprintln!("loaded {} cached verdicts from `{path}`", cache.len());
                    }
                    cache
                }
                Err(e) => {
                    eprintln!("cannot load cache `{path}`: {e}");
                    return ExitCode::from(2);
                }
            },
            None => SynthCache::new(),
        };
        Some(Arc::new(cache))
    } else {
        None
    };

    let mut map = MapConfig {
        incremental: options.incremental,
        egraph: options.egraph,
        ..MapConfig::default().with_timeout(options.timeout)
    };
    if let Some(cache) = &cache {
        let shared: Arc<dyn lakeroad::MapCache> = Arc::<SynthCache>::clone(cache);
        map = map.with_cache(shared);
    }
    let opts = BatchOptions::new(options.jobs, map);
    if options.trace.is_some() {
        lr_trace::set_enabled(true);
    }

    let total = jobs.len();
    let before = cache.as_ref().map(|c| c.snapshot());
    let run = run_batch_streaming(&jobs, &opts, |record| {
        let verdict = match &record.result {
            JobResult::Finished(MapOutcome::Success(m)) => format!(
                "success ({} DSP, {} LEs, {} regs){}",
                m.resources.dsps,
                m.resources.logic_elements,
                m.resources.registers,
                if m.from_cache { " [cache]" } else { "" },
            ),
            JobResult::Finished(MapOutcome::Unsat { from_cache, .. }) => {
                format!("unsat{}", if *from_cache { " [cache]" } else { "" })
            }
            JobResult::Finished(MapOutcome::Timeout { .. }) => "timeout".to_string(),
            JobResult::Error(e) => format!("error: {e}"),
            JobResult::DeadlineExpired => "deadline expired".to_string(),
            JobResult::Cancelled => "cancelled".to_string(),
        };
        eprintln!(
            "[{}/{}] {:32} {:.3}s  {}",
            record.index + 1,
            total,
            record.name,
            record.elapsed.as_secs_f64(),
            verdict
        );
    });
    let delta = match (&before, &cache) {
        (Some(before), Some(cache)) => Some(before.delta(&cache.snapshot())),
        _ => None,
    };
    let mut report = BatchReport::from_run(&run, delta);
    if let Some(path) = &options.trace {
        let events = finish_trace(path);
        report.attach_trace(&run, &events);
    }
    print!("{}", report.render());

    if let (Some(cache), Some(path)) = (&cache, &options.cache_path) {
        if let Err(e) = cache.save(std::path::Path::new(path)) {
            eprintln!("cannot save cache `{path}`: {e}");
            return ExitCode::from(2);
        }
        eprintln!("saved {} cached verdicts to `{path}`", cache.len());
    }
    if report.errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

struct MapNetlistArgs {
    input: String,
    arch_name: ArchName,
    jobs: usize,
    cache_path: Option<String>,
    use_cache: bool,
    timeout: Duration,
    max_cone_ands: usize,
    verify_envs: usize,
    seed: u64,
    output: Option<String>,
    trace: Option<String>,
}

fn parse_map_netlist_args(args: &[String]) -> Result<MapNetlistArgs, String> {
    let mut input = None;
    let mut arch_name = ArchName::IntelCyclone10Lp;
    let mut jobs = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut cache_path = None;
    let mut use_cache = true;
    let mut timeout = Duration::from_secs(120);
    let mut max_cone_ands = 32;
    let mut verify_envs = 32;
    let mut seed = 0x1a4e_715d;
    let mut output = None;
    let mut trace = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--arch-desc" => {
                i += 1;
                let name = args.get(i).ok_or("--arch-desc needs a value")?;
                arch_name =
                    parse_arch_name(name).ok_or(format!("unknown architecture `{name}`"))?;
            }
            "--jobs" | "-j" => {
                i += 1;
                jobs = args
                    .get(i)
                    .ok_or("--jobs needs a value")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--jobs expects a worker count of at least 1".to_string())?;
            }
            "--cache" => {
                i += 1;
                cache_path = Some(args.get(i).ok_or("--cache needs a file path")?.clone());
            }
            "--no-cache" => use_cache = false,
            "--timeout" => {
                i += 1;
                let secs: u64 = args
                    .get(i)
                    .ok_or("--timeout needs a value")?
                    .parse()
                    .map_err(|_| "--timeout expects a number of seconds".to_string())?;
                timeout = Duration::from_secs(secs);
            }
            "--max-cone-ands" => {
                i += 1;
                max_cone_ands = args
                    .get(i)
                    .ok_or("--max-cone-ands needs a value")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--max-cone-ands expects a bound of at least 1".to_string())?;
            }
            "--verify-envs" => {
                i += 1;
                verify_envs = args
                    .get(i)
                    .ok_or("--verify-envs needs a value")?
                    .parse::<usize>()
                    .map_err(|_| "--verify-envs expects an environment count".to_string())?;
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .ok_or("--seed needs a value")?
                    .parse::<u64>()
                    .map_err(|_| "--seed expects an unsigned integer".to_string())?;
            }
            "--output" | "-o" => {
                i += 1;
                output = Some(args.get(i).ok_or("--output needs a value")?.clone());
            }
            "--trace" => {
                i += 1;
                trace = Some(args.get(i).ok_or("--trace needs an output file")?.clone());
            }
            "--help" | "-h" => return Err(usage()),
            other if !other.starts_with('-') => input = Some(other.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
        i += 1;
    }
    Ok(MapNetlistArgs {
        input: input.ok_or(format!("missing netlist file\n{}", usage()))?,
        arch_name,
        jobs,
        cache_path,
        use_cache,
        timeout,
        max_cone_ands,
        verify_envs,
        seed,
        output,
        trace,
    })
}

fn map_netlist_main(args: &[String]) -> ExitCode {
    let options = match parse_map_netlist_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if options.trace.is_some() {
        lr_trace::set_enabled(true);
    }
    let bytes = match std::fs::read(&options.input) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("cannot read `{}`: {e}", options.input);
            return ExitCode::from(2);
        }
    };
    let aig = match lr_aig::parse_netlist(&bytes, Some(&options.input)) {
        Ok(aig) => {
            let stem = std::path::Path::new(&options.input)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "netlist".to_string());
            aig.with_name(stem)
        }
        Err(e) => {
            eprintln!("`{}`: {e}", options.input);
            return ExitCode::from(2);
        }
    };

    let cache = if options.use_cache {
        let cache = match &options.cache_path {
            Some(path) => match SynthCache::load(std::path::Path::new(path)) {
                Ok(cache) => {
                    if !cache.is_empty() {
                        eprintln!("loaded {} cached verdicts from `{path}`", cache.len());
                    }
                    cache
                }
                Err(e) => {
                    eprintln!("cannot load cache `{path}`: {e}");
                    return ExitCode::from(2);
                }
            },
            None => SynthCache::new(),
        };
        Some(Arc::new(cache))
    } else {
        None
    };
    let mut map = MapConfig::default().with_timeout(options.timeout);
    if let Some(cache) = &cache {
        let shared: Arc<dyn lakeroad::MapCache> = Arc::<SynthCache>::clone(cache);
        map = map.with_cache(shared);
    }

    let mut netlist_options = lr_serve::NetlistOptions::new(options.arch_name);
    netlist_options.workers = options.jobs;
    netlist_options.map = map;
    netlist_options.max_cone_ands = options.max_cone_ands;
    netlist_options.verify_environments = options.verify_envs;
    netlist_options.verify_seed = options.seed;

    let result = lr_serve::map_netlist(&aig, &netlist_options, |record| {
        if let JobResult::Error(e) = &record.result {
            eprintln!("{}: {e}", record.name);
        }
    });
    if let Some(path) = &options.trace {
        finish_trace(path);
    }
    let report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprint!("{}", report.render());

    if let (Some(cache), Some(path)) = (&cache, &options.cache_path) {
        if let Err(e) = cache.save(std::path::Path::new(path)) {
            eprintln!("cannot save cache `{path}`: {e}");
            return ExitCode::from(2);
        }
        eprintln!("saved {} cached verdicts to `{path}`", cache.len());
    }
    match options.output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &report.verilog) {
                eprintln!("cannot write `{path}`: {e}");
                return ExitCode::from(2);
            }
        }
        None => println!("{}", report.verilog),
    }
    ExitCode::SUCCESS
}

fn parse_serve_args(args: &[String]) -> Result<(DaemonConfig, bool), String> {
    let mut config = DaemonConfig {
        addr: "127.0.0.1:9077".to_string(),
        workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        ..DaemonConfig::default()
    };
    let mut timeout = Duration::from_secs(120);
    let mut incremental = true;
    let mut egraph = true;
    let mut trace = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace" => trace = true,
            "--addr" => {
                i += 1;
                config.addr = args.get(i).ok_or("--addr needs a host:port value")?.clone();
            }
            "--jobs" | "-j" => {
                i += 1;
                config.workers = args
                    .get(i)
                    .ok_or("--jobs needs a value")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--jobs expects a worker count of at least 1".to_string())?;
            }
            "--cache" => {
                i += 1;
                let path = args.get(i).ok_or("--cache needs a file path")?;
                config.persist_path = Some(std::path::PathBuf::from(path));
            }
            "--cache-capacity" => {
                i += 1;
                let cap: usize = args
                    .get(i)
                    .ok_or("--cache-capacity needs a value")?
                    .parse()
                    .map_err(|_| "--cache-capacity expects an entry count".to_string())?;
                // 0 = unbounded, matching `SynthCache::set_capacity`.
                config.cache_capacity = (cap > 0).then_some(cap);
            }
            "--persist-interval" => {
                i += 1;
                let secs: u64 =
                    args.get(i).ok_or("--persist-interval needs a value")?.parse().map_err(
                        |_| "--persist-interval expects a number of seconds".to_string(),
                    )?;
                config.persist_interval = Duration::from_secs(secs.max(1));
            }
            "--max-pending" => {
                i += 1;
                config.max_pending_per_client = args
                    .get(i)
                    .ok_or("--max-pending needs a value")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--max-pending expects a bound of at least 1".to_string())?;
            }
            "--timeout" => {
                i += 1;
                let secs: u64 = args
                    .get(i)
                    .ok_or("--timeout needs a value")?
                    .parse()
                    .map_err(|_| "--timeout expects a number of seconds".to_string())?;
                timeout = Duration::from_secs(secs);
            }
            "--no-incremental" => incremental = false,
            "--no-egraph" => egraph = false,
            "--slow-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .ok_or("--slow-ms needs a value")?
                    .parse()
                    .map_err(|_| "--slow-ms expects a number of milliseconds".to_string())?;
                // 0 is meaningful: every request breaches the threshold, so
                // every request is dumped (what the integration tests use).
                config.forensics.slow = Some(Duration::from_millis(ms));
            }
            "--forensics-dir" => {
                i += 1;
                let dir = args.get(i).ok_or("--forensics-dir needs a directory path")?;
                config.forensics.dir = Some(std::path::PathBuf::from(dir));
            }
            "--forensics-keep" => {
                i += 1;
                config.forensics.keep = args
                    .get(i)
                    .ok_or("--forensics-keep needs a value")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--forensics-keep expects a bound of at least 1".to_string())?;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
        i += 1;
    }
    config.map = MapConfig { incremental, egraph, ..MapConfig::default().with_timeout(timeout) };
    Ok((config, trace))
}

fn serve_main(args: &[String]) -> ExitCode {
    let (config, trace) = match parse_serve_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if trace {
        // Record spans into the bounded in-process buffer; clients retrieve
        // them with a `{"kind": "trace"}` request.
        lr_trace::set_enabled(true);
    }
    let persist = config.persist_path.clone();
    let daemon = match Daemon::bind(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("cannot bind daemon: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!("lakeroad daemon listening on {}", daemon.local_addr());
    if let Some(path) = &persist {
        eprintln!("persisting the synthesis cache to `{}`", path.display());
    }
    let summary = daemon.wait();
    eprintln!(
        "drained: {} accepted / {} completed / {} rejected ({} lost), \
         {} served from cache, {} cache entries",
        summary.accepted,
        summary.completed,
        summary.rejected,
        summary.lost(),
        summary.cache_served,
        summary.cache_entries,
    );
    if summary.lost() > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn parse_top_args(args: &[String]) -> Result<(String, Duration, bool), String> {
    let mut addr = "127.0.0.1:9077".to_string();
    let mut interval = Duration::from_secs(2);
    let mut once = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).ok_or("--addr needs a host:port value")?.clone();
            }
            "--interval" => {
                i += 1;
                let secs: u64 = args
                    .get(i)
                    .ok_or("--interval needs a value")?
                    .parse()
                    .map_err(|_| "--interval expects a number of seconds".to_string())?;
                interval = Duration::from_secs(secs.max(1));
            }
            "--once" => once = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
        i += 1;
    }
    Ok((addr, interval, once))
}

fn top_main(args: &[String]) -> ExitCode {
    let (addr, interval, once) = match parse_top_args(args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match lr_serve::top::run(&addr, interval, once) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cannot reach daemon at {addr}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("map-netlist") {
        return map_netlist_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("batch") {
        return batch_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("serve") {
        return serve_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("top") {
        return top_main(&args[1..]);
    }
    let options = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if options.trace.is_some() {
        lr_trace::set_enabled(true);
    }
    // Resolve the design through the unified frontend: a Verilog file, a
    // structural netlist (`.aag`/`.aig`/`.bench`), or `bench:<name>` — one of
    // the §5.1 microbenchmarks of the chosen architecture. Each input kind
    // reports its own per-stage trace spans (`elaborate`, `netlist-parse`/
    // `netlist-elaborate`, or `suite-build`).
    let source = lakeroad::DesignSource::from_spec(&options.input, std::path::Path::new(""));
    let spec = match source.resolve(options.arch_name) {
        Ok(spec) => spec,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let config = MapConfig {
        incremental: options.incremental,
        egraph: options.egraph,
        ..MapConfig::default().with_timeout(options.timeout)
    };
    let result = match options.template {
        TemplateChoice::Named(template) => map_design(&spec, template, &options.arch, &config),
        TemplateChoice::Auto => map_design_auto(&spec, &options.arch, &config),
    };
    if let Some(path) = &options.trace {
        finish_trace(path);
    }
    match result {
        Ok(MapOutcome::Success(mapped)) => {
            eprintln!(
                "mapped onto {} in {:.2?}: {} DSP, {} LEs, {} registers",
                options.arch.name(),
                mapped.elapsed,
                mapped.resources.dsps,
                mapped.resources.logic_elements,
                mapped.resources.registers
            );
            if options.stats {
                eprint!("{}", render_stats(&mapped.stats));
            }
            match options.output {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, &mapped.verilog) {
                        eprintln!("cannot write `{path}`: {e}");
                        return ExitCode::from(2);
                    }
                }
                None => println!("{}", mapped.verilog),
            }
            ExitCode::SUCCESS
        }
        Ok(MapOutcome::Unsat { elapsed, .. }) => {
            let what = match options.template {
                TemplateChoice::Named(t) => format!("the {t} sketch"),
                TemplateChoice::Auto => "any ranked sketch".to_string(),
            };
            eprintln!(
                "UNSAT after {elapsed:.2?}: no configuration of {what} implements this design"
            );
            if options.stats {
                eprintln!("(per-run solver statistics are recorded for successful mappings only)");
            }
            ExitCode::FAILURE
        }
        Ok(MapOutcome::Timeout { elapsed, .. }) => {
            eprintln!("timeout after {elapsed:.2?}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
