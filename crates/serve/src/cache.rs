//! The sharded, optionally-persistent synthesis cache behind
//! [`lakeroad::MapCache`].
//!
//! Entries are keyed by [`lakeroad::CacheKey`] (canonical spec × architecture ×
//! template × timeout tier) and store replayable verdicts
//! ([`lakeroad::CachedOutcome`]): hole assignments for successes, a bare marker
//! for UNSATs. The map is split into fixed shards, each behind its own
//! `std::sync::Mutex`, so scheduler workers hitting different shards never
//! contend; hit/miss/store/invalidation/eviction counters are lock-free
//! atomics. An optional entry-count cap ([`SynthCache::set_capacity`]) evicts
//! oldest insertions per shard, so a long-lived daemon process cannot grow
//! without bound; the cap defaults to off for one-shot batch runs.
//!
//! [`SynthCache::save`] / [`SynthCache::load`] persist the table as a sorted
//! line-oriented text file, written atomically (temp file + rename), so a warm
//! cache survives across CLI invocations (`lakeroad batch --cache <path>`).
//! The format is versioned and forward-fails: an unrecognized header is an
//! error, a torn line is an error, and a key that does not parse is an error —
//! a corrupt cache file must never silently load as a smaller cache. Bump the
//! format header's version whenever sketch generation or synthesis semantics
//! change what is mappable: success entries self-check on replay,
//! but UNSAT entries are trusted from the address alone, so a semantic change
//! must orphan old files rather than let them answer for the new engine.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use lakeroad::{CacheKey, CachedOutcome, MapCache};
use lr_bv::BitVec;

/// Number of independently-locked shards. A power of two comfortably above any
/// realistic worker count, so two workers rarely serialize on one mutex.
const SHARDS: usize = 16;

/// Point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written (including overwrites).
    pub stores: u64,
    /// Entries dropped because a replay failed verification.
    pub invalidations: u64,
    /// Entries dropped to keep the cache under its entry-count cap.
    pub evictions: u64,
}

impl CacheSnapshot {
    /// Hits as a fraction of all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas between two snapshots (`later - self`).
    pub fn delta(&self, later: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: later.hits - self.hits,
            misses: later.misses - self.misses,
            stores: later.stores - self.stores,
            invalidations: later.invalidations - self.invalidations,
            evictions: later.evictions - self.evictions,
        }
    }
}

/// One independently-locked shard: the entry map plus the insertion order used
/// for eviction. The order queue may lag behind the map — invalidated keys stay
/// queued until eviction pops (and skips) them lazily. Each queued occurrence
/// carries the insertion generation of the entry it was pushed for, so a stale
/// occurrence (its entry invalidated, then the key re-stored under a newer
/// generation) can never evict the live entry.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<CacheKey, (u64, CachedOutcome)>,
    order: VecDeque<(CacheKey, u64)>,
    next_gen: u64,
}

impl Shard {
    /// Inserts or overwrites one entry. A fresh key gets a new generation and
    /// a queue slot; an overwrite keeps the existing generation (and therefore
    /// its original insertion-order position).
    fn insert(&mut self, key: CacheKey, outcome: CachedOutcome) {
        match self.map.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().1 = outcome,
            std::collections::hash_map::Entry::Vacant(e) => {
                let gen = self.next_gen;
                self.next_gen += 1;
                e.insert((gen, outcome));
                self.order.push_back((key, gen));
            }
        }
    }
}

/// A sharded in-memory synthesis cache with optional on-disk persistence and an
/// optional entry-count cap (see [`SynthCache::set_capacity`]).
#[derive(Debug)]
pub struct SynthCache {
    shards: Vec<Mutex<Shard>>,
    /// Entry-count cap across all shards; 0 means unbounded (the default, right
    /// for one-shot batch runs — the daemon turns the cap on).
    capacity: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl Default for SynthCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SynthCache {
    /// An empty, unbounded cache.
    pub fn new() -> SynthCache {
        SynthCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            capacity: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[key.shard(self.shards.len())]
    }

    /// Sets (or clears, with `None`/`Some(0)` meaning unbounded) the entry-count
    /// cap and immediately evicts down to it, oldest insertions first. The cap
    /// is enforced per shard at `ceil(cap / SHARDS)`, so a skewed key
    /// distribution can evict before the global total reaches `cap`; totals
    /// never exceed `SHARDS * ceil(cap / SHARDS)`.
    pub fn set_capacity(&self, cap: Option<usize>) {
        self.capacity.store(cap.unwrap_or(0), Ordering::Relaxed);
        if let Some(per_shard) = self.per_shard_cap() {
            for shard in &self.shards {
                let mut guard = shard.lock().unwrap();
                self.evict_to(&mut guard, per_shard);
            }
        }
    }

    /// The configured entry-count cap (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        match self.capacity.load(Ordering::Relaxed) {
            0 => None,
            cap => Some(cap),
        }
    }

    fn per_shard_cap(&self) -> Option<usize> {
        match self.capacity.load(Ordering::Relaxed) {
            0 => None,
            cap => Some(cap.div_ceil(SHARDS)),
        }
    }

    /// Pops insertion-order entries until `shard` is at or under `cap` entries.
    /// Stale queue occurrences — the entry was invalidated, whether or not the
    /// key was later re-stored under a newer generation — are skipped without
    /// counting as evictions; only a generation match evicts.
    fn evict_to(&self, shard: &mut Shard, cap: usize) {
        let mut evicted = 0u64;
        while shard.map.len() > cap {
            let Some((old, gen)) = shard.order.pop_front() else { break };
            if shard.map.get(&old).is_some_and(|(live_gen, _)| *live_gen == gen) {
                shard.map.remove(&old);
                evicted += 1;
            }
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counter values.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// All entries, sorted by key (the persistence order; also handy for tests).
    pub fn entries(&self) -> Vec<(CacheKey, CachedOutcome)> {
        let mut out: Vec<(CacheKey, CachedOutcome)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().unwrap();
            out.extend(guard.map.iter().map(|(k, (_, v))| (*k, v.clone())));
        }
        out.sort_by_key(|&(k, _)| k);
        out
    }

    /// Writes the cache to `path` in the versioned text format. The write is
    /// atomic (a temp file in the same directory, renamed over the target): a
    /// crash or full disk mid-save must not replace a good warm cache with a
    /// torn file that the strict loader would then reject forever.
    ///
    /// The temp name is unique per process *and* per save — two concurrent
    /// writers (the daemon's background persister racing a `lakeroad batch
    /// --cache` exit save, or two batch processes sharing one warm file) each
    /// write their own complete temp file and the renames land whole-file
    /// last-writer-wins, instead of interleaving through one shared temp path
    /// and renaming a half-written file over a good cache. The data is fsynced
    /// before the rename so a crash cannot leave the target pointing at
    /// not-yet-durable content.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        static SAVE_TICKET: AtomicU64 = AtomicU64::new(0);
        let mut out = Vec::new();
        writeln!(out, "{FORMAT_HEADER}")?;
        for (key, outcome) in self.entries() {
            match outcome {
                CachedOutcome::Unsat => writeln!(out, "{key} unsat")?,
                CachedOutcome::Success { holes } => {
                    write!(out, "{key} success")?;
                    for (name, value) in &holes {
                        write!(out, " {name}={value}")?;
                    }
                    writeln!(out)?;
                }
            }
        }
        let base = path
            .file_name()
            .map_or_else(|| "cache".to_string(), |name| name.to_string_lossy().into_owned());
        let tmp = path.with_file_name(format!(
            "{base}.{}.{}.tmp",
            std::process::id(),
            SAVE_TICKET.fetch_add(1, Ordering::Relaxed),
        ));
        let result = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&out)?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            // Best effort: do not leave a stray temp file behind a failed save.
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Reads a cache from `path`. A missing file yields an empty cache (cold
    /// start); an unreadable or malformed file is an error.
    ///
    /// # Errors
    /// Propagates I/O errors; malformed content maps to
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<SynthCache> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(SynthCache::new()),
            Err(e) => return Err(e),
        };
        let cache = SynthCache::new();
        let mut lines = text.lines();
        match lines.next() {
            Some(FORMAT_HEADER) => {}
            other => {
                return Err(invalid(format!("unrecognized cache header {other:?}")));
            }
        }
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let entry = parse_entry(line)
                .map_err(|e| invalid(format!("cache line {}: {e}", lineno + 2)))?;
            let (key, outcome) = entry;
            cache.shard(&key).lock().unwrap().insert(key, outcome);
        }
        Ok(cache)
    }
}

const FORMAT_HEADER: &str = "lakeroad-serve-cache v1";

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn parse_entry(line: &str) -> Result<(CacheKey, CachedOutcome), String> {
    let mut fields = line.split_whitespace();
    let key: CacheKey = fields.next().ok_or("missing key")?.parse()?;
    match fields.next() {
        Some("unsat") => match fields.next() {
            None => Ok((key, CachedOutcome::Unsat)),
            Some(extra) => Err(format!("trailing field `{extra}` after unsat")),
        },
        Some("success") => {
            let mut holes = std::collections::BTreeMap::new();
            for field in fields {
                let (name, literal) =
                    field.split_once('=').ok_or_else(|| format!("malformed hole `{field}`"))?;
                let value =
                    BitVec::parse_verilog(literal).map_err(|e| format!("hole `{name}`: {e}"))?;
                holes.insert(name.to_string(), value);
            }
            Ok((key, CachedOutcome::Success { holes }))
        }
        other => Err(format!("unknown verdict {other:?}")),
    }
}

impl MapCache for SynthCache {
    fn lookup(&self, key: &CacheKey) -> Option<CachedOutcome> {
        let found = self.shard(key).lock().unwrap().map.get(key).map(|(_, v)| v.clone());
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn store(&self, key: CacheKey, outcome: CachedOutcome) {
        let per_shard = self.per_shard_cap();
        let mut shard = self.shard(&key).lock().unwrap();
        shard.insert(key, outcome);
        if let Some(cap) = per_shard {
            self.evict_to(&mut shard, cap);
        }
        drop(shard);
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    fn invalidate(&self, key: &CacheKey) {
        if self.shard(key).lock().unwrap().map.remove(key).is_some() {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn key(n: u64) -> CacheKey {
        CacheKey([n, n.wrapping_mul(0x9E37_79B9_7F4A_7C15)])
    }

    fn success(bits: u64) -> CachedOutcome {
        let mut holes = BTreeMap::new();
        holes.insert("k".to_string(), BitVec::from_u64(bits, 8));
        holes.insert("mode".to_string(), BitVec::from_u64(bits % 4, 2));
        CachedOutcome::Success { holes }
    }

    #[test]
    fn lookup_store_invalidate_and_counters() {
        let cache = SynthCache::new();
        assert_eq!(cache.lookup(&key(1)), None);
        cache.store(key(1), success(7));
        cache.store(key(2), CachedOutcome::Unsat);
        assert_eq!(cache.lookup(&key(1)), Some(success(7)));
        assert_eq!(cache.lookup(&key(2)), Some(CachedOutcome::Unsat));
        cache.invalidate(&key(1));
        cache.invalidate(&key(1)); // second invalidation of a gone key is a no-op
        assert_eq!(cache.lookup(&key(1)), None);
        let snap = cache.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 2);
        assert_eq!(snap.stores, 2);
        assert_eq!(snap.invalidations, 1);
        assert!((snap.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entries_spread_over_shards() {
        let cache = SynthCache::new();
        for n in 0..64 {
            cache.store(key(n), CachedOutcome::Unsat);
        }
        assert_eq!(cache.len(), 64);
        let populated = cache.shards.iter().filter(|s| !s.lock().unwrap().map.is_empty()).count();
        assert!(populated > 1, "64 keys should not all land in one shard");
    }

    #[test]
    fn persistence_roundtrips() {
        let cache = SynthCache::new();
        cache.store(key(10), success(0xAB));
        cache.store(key(11), CachedOutcome::Unsat);
        let dir = std::env::temp_dir().join("lr_serve_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.lrc");
        cache.save(&path).unwrap();
        let loaded = SynthCache::load(&path).unwrap();
        assert_eq!(loaded.entries(), cache.entries());
        std::fs::remove_file(&path).unwrap();
        // A missing file is a cold start, not an error.
        assert!(SynthCache::load(&path).unwrap().is_empty());
    }

    #[test]
    fn malformed_files_are_rejected() {
        let dir = std::env::temp_dir().join("lr_serve_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, content) in [
            ("bad_header.lrc", "some-other-format v9\n"),
            ("bad_key.lrc", "lakeroad-serve-cache v1\nnothex unsat\n"),
            ("bad_verdict.lrc", &format!("lakeroad-serve-cache v1\n{} maybe\n", key(1))),
            ("bad_hole.lrc", &format!("lakeroad-serve-cache v1\n{} success k=zz'q0\n", key(1))),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, content).unwrap();
            let err = SynthCache::load(&path).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{name}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn unbounded_by_default_grows_without_eviction() {
        // Regression (unbounded-growth bug): before the cap existed this was
        // the *only* behaviour; now it must remain the default.
        let cache = SynthCache::new();
        assert_eq!(cache.capacity(), None);
        for n in 0..200 {
            cache.store(key(n), CachedOutcome::Unsat);
        }
        assert_eq!(cache.len(), 200);
        assert_eq!(cache.snapshot().evictions, 0);
    }

    #[test]
    fn capacity_cap_evicts_oldest_insertions() {
        let cache = SynthCache::new();
        cache.set_capacity(Some(32));
        // key(n) lands in shard n % SHARDS, so 0..200 spreads uniformly: each
        // shard keeps its per-shard cap (32/16 = 2) newest keys.
        for n in 0..200 {
            cache.store(key(n), CachedOutcome::Unsat);
        }
        assert_eq!(cache.len(), 32);
        let snap = cache.snapshot();
        assert_eq!(snap.stores, 200);
        assert_eq!(snap.evictions, 200 - 32);
        // The newest key per shard survived; the oldest ones are gone.
        assert!(cache.lookup(&key(199)).is_some());
        assert!(cache.lookup(&key(0)).is_none());
    }

    #[test]
    fn setting_a_capacity_trims_immediately() {
        let cache = SynthCache::new();
        for n in 0..100 {
            cache.store(key(n), CachedOutcome::Unsat);
        }
        assert_eq!(cache.len(), 100);
        cache.set_capacity(Some(16));
        assert_eq!(cache.len(), 16);
        assert_eq!(cache.snapshot().evictions, 100 - 16);
        // Clearing the cap stops eviction again.
        cache.set_capacity(None);
        for n in 100..200 {
            cache.store(key(n), CachedOutcome::Unsat);
        }
        assert_eq!(cache.len(), 16 + 100);
    }

    #[test]
    fn eviction_skips_invalidated_keys_without_counting_them() {
        let cache = SynthCache::new();
        cache.set_capacity(Some(SHARDS)); // per-shard cap of 1
        cache.store(key(16), CachedOutcome::Unsat); // shard 0
        cache.invalidate(&key(16)); // gone from the map, still queued
        cache.store(key(32), CachedOutcome::Unsat); // shard 0 again: no eviction needed
        assert_eq!(cache.lookup(&key(32)), Some(CachedOutcome::Unsat));
        assert_eq!(cache.snapshot().evictions, 0);
    }

    #[test]
    fn a_restored_key_is_not_evicted_through_its_stale_queue_slot() {
        // Regression: a key invalidated and then re-stored used to be queued
        // twice; eviction popping the stale first occurrence removed the live,
        // freshly-stored entry (and counted it), evicting it ahead of
        // genuinely older entries. Generations make the stale slot inert.
        let cache = SynthCache::new();
        cache.set_capacity(Some(2 * SHARDS)); // per-shard cap of 2
        let (a, b, c) = (key(16), key(32), key(48)); // all land in shard 0
        cache.store(a, CachedOutcome::Unsat);
        cache.store(b, CachedOutcome::Unsat);
        cache.invalidate(&a);
        cache.store(a, success(1)); // re-store: `a` is now the newest entry
        cache.store(c, CachedOutcome::Unsat); // over cap: must evict `b`, the oldest
        assert_eq!(cache.lookup(&a), Some(success(1)), "freshly re-stored entry evicted");
        assert_eq!(cache.lookup(&b), None);
        assert_eq!(cache.lookup(&c), Some(CachedOutcome::Unsat));
        assert_eq!(cache.snapshot().evictions, 1);
    }

    #[test]
    fn two_writer_saves_never_tear_the_file() {
        // Regression (save race): the fixed `path.with_extension("tmp")` temp
        // name let two concurrent writers interleave create/truncate/write on
        // one temp path and rename a half-written file over a good cache. With
        // unique per-save temp names every observable file state is one
        // writer's complete output, so a strict load after each save always
        // succeeds.
        let dir = std::env::temp_dir().join("lr_serve_cache_two_writer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.lrc");
        let big = SynthCache::new();
        for n in 0..400 {
            big.store(key(n), success(n % 251));
        }
        let small = SynthCache::new();
        small.store(key(9_999), CachedOutcome::Unsat);
        std::thread::scope(|scope| {
            for cache in [&big, &small] {
                let path = &path;
                scope.spawn(move || {
                    for _ in 0..40 {
                        cache.save(path).unwrap();
                        let loaded = SynthCache::load(path).unwrap();
                        let n = loaded.len();
                        assert!(n == 400 || n == 1, "torn cache file: {n} entries");
                    }
                });
            }
        });
        // No temp litter: every save either renamed or cleaned up after itself.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_torn_temp_file_never_replaces_a_good_cache() {
        // Crash-safety for the daemon's snapshot persister: a writer that dies
        // mid-write leaves only its private temp file. The good cache stays
        // loadable, and a later successful save neither trips over nor
        // resurrects the torn temp.
        let dir = std::env::temp_dir().join("lr_serve_cache_torn_tmp_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.lrc");
        let cache = SynthCache::new();
        cache.store(key(1), success(1));
        cache.save(&path).unwrap();

        // Simulate a crash mid-write: a half-written temp alongside the target.
        let torn = dir.join("warm.lrc.4242.0.tmp");
        std::fs::write(&torn, "lakeroad-serve-cache v1\n0123").unwrap();

        let loaded = SynthCache::load(&path).unwrap();
        assert_eq!(loaded.entries(), cache.entries());

        cache.store(key(2), CachedOutcome::Unsat);
        cache.save(&path).unwrap();
        assert_eq!(SynthCache::load(&path).unwrap().len(), 2);
        // The torn temp is still just litter, not part of the cache.
        assert!(torn.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = SynthCache::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..100 {
                        let k = key(t * 1000 + i);
                        cache.store(k, CachedOutcome::Unsat);
                        assert!(cache.lookup(&k).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 400);
        assert_eq!(cache.snapshot().hits, 400);
    }
}
