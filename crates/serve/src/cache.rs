//! The sharded, optionally-persistent synthesis cache behind
//! [`lakeroad::MapCache`].
//!
//! Entries are keyed by [`lakeroad::CacheKey`] (canonical spec × architecture ×
//! template × timeout tier) and store replayable verdicts
//! ([`lakeroad::CachedOutcome`]): hole assignments for successes, a bare marker
//! for UNSATs. The map is split into fixed shards, each behind its own
//! `std::sync::Mutex`, so scheduler workers hitting different shards never
//! contend; hit/miss/store/invalidation counters are lock-free atomics.
//!
//! [`SynthCache::save`] / [`SynthCache::load`] persist the table as a sorted
//! line-oriented text file, written atomically (temp file + rename), so a warm
//! cache survives across CLI invocations (`lakeroad batch --cache <path>`).
//! The format is versioned and forward-fails: an unrecognized header is an
//! error, a torn line is an error, and a key that does not parse is an error —
//! a corrupt cache file must never silently load as a smaller cache. Bump the
//! format header's version whenever sketch generation or synthesis semantics
//! change what is mappable: success entries self-check on replay,
//! but UNSAT entries are trusted from the address alone, so a semantic change
//! must orphan old files rather than let them answer for the new engine.

use std::collections::HashMap;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use lakeroad::{CacheKey, CachedOutcome, MapCache};
use lr_bv::BitVec;

/// Number of independently-locked shards. A power of two comfortably above any
/// realistic worker count, so two workers rarely serialize on one mutex.
const SHARDS: usize = 16;

/// Point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written (including overwrites).
    pub stores: u64,
    /// Entries dropped because a replay failed verification.
    pub invalidations: u64,
}

impl CacheSnapshot {
    /// Hits as a fraction of all lookups (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas between two snapshots (`later - self`).
    pub fn delta(&self, later: &CacheSnapshot) -> CacheSnapshot {
        CacheSnapshot {
            hits: later.hits - self.hits,
            misses: later.misses - self.misses,
            stores: later.stores - self.stores,
            invalidations: later.invalidations - self.invalidations,
        }
    }
}

/// A sharded in-memory synthesis cache with optional on-disk persistence.
#[derive(Debug)]
pub struct SynthCache {
    shards: Vec<Mutex<HashMap<CacheKey, CachedOutcome>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    invalidations: AtomicU64,
}

impl Default for SynthCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SynthCache {
    /// An empty cache.
    pub fn new() -> SynthCache {
        SynthCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, CachedOutcome>> {
        &self.shards[key.shard(self.shards.len())]
    }

    /// Number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counter values.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// All entries, sorted by key (the persistence order; also handy for tests).
    pub fn entries(&self) -> Vec<(CacheKey, CachedOutcome)> {
        let mut out: Vec<(CacheKey, CachedOutcome)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().unwrap();
            out.extend(guard.iter().map(|(k, v)| (*k, v.clone())));
        }
        out.sort_by_key(|&(k, _)| k);
        out
    }

    /// Writes the cache to `path` in the versioned text format. The write is
    /// atomic (a temp file in the same directory, renamed over the target): a
    /// crash or full disk mid-save must not replace a good warm cache with a
    /// torn file that the strict loader would then reject forever.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut out = Vec::new();
        writeln!(out, "{FORMAT_HEADER}")?;
        for (key, outcome) in self.entries() {
            match outcome {
                CachedOutcome::Unsat => writeln!(out, "{key} unsat")?,
                CachedOutcome::Success { holes } => {
                    write!(out, "{key} success")?;
                    for (name, value) in &holes {
                        write!(out, " {name}={value}")?;
                    }
                    writeln!(out)?;
                }
            }
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, path)
    }

    /// Reads a cache from `path`. A missing file yields an empty cache (cold
    /// start); an unreadable or malformed file is an error.
    ///
    /// # Errors
    /// Propagates I/O errors; malformed content maps to
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<SynthCache> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(SynthCache::new()),
            Err(e) => return Err(e),
        };
        let cache = SynthCache::new();
        let mut lines = text.lines();
        match lines.next() {
            Some(FORMAT_HEADER) => {}
            other => {
                return Err(invalid(format!("unrecognized cache header {other:?}")));
            }
        }
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let entry = parse_entry(line)
                .map_err(|e| invalid(format!("cache line {}: {e}", lineno + 2)))?;
            let (key, outcome) = entry;
            cache.shard(&key).lock().unwrap().insert(key, outcome);
        }
        Ok(cache)
    }
}

const FORMAT_HEADER: &str = "lakeroad-serve-cache v1";

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

fn parse_entry(line: &str) -> Result<(CacheKey, CachedOutcome), String> {
    let mut fields = line.split_whitespace();
    let key: CacheKey = fields.next().ok_or("missing key")?.parse()?;
    match fields.next() {
        Some("unsat") => match fields.next() {
            None => Ok((key, CachedOutcome::Unsat)),
            Some(extra) => Err(format!("trailing field `{extra}` after unsat")),
        },
        Some("success") => {
            let mut holes = std::collections::BTreeMap::new();
            for field in fields {
                let (name, literal) =
                    field.split_once('=').ok_or_else(|| format!("malformed hole `{field}`"))?;
                let value =
                    BitVec::parse_verilog(literal).map_err(|e| format!("hole `{name}`: {e}"))?;
                holes.insert(name.to_string(), value);
            }
            Ok((key, CachedOutcome::Success { holes }))
        }
        other => Err(format!("unknown verdict {other:?}")),
    }
}

impl MapCache for SynthCache {
    fn lookup(&self, key: &CacheKey) -> Option<CachedOutcome> {
        let found = self.shard(key).lock().unwrap().get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn store(&self, key: CacheKey, outcome: CachedOutcome) {
        self.shard(&key).lock().unwrap().insert(key, outcome);
        self.stores.fetch_add(1, Ordering::Relaxed);
    }

    fn invalidate(&self, key: &CacheKey) {
        if self.shard(key).lock().unwrap().remove(key).is_some() {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn key(n: u64) -> CacheKey {
        CacheKey([n, n.wrapping_mul(0x9E37_79B9_7F4A_7C15)])
    }

    fn success(bits: u64) -> CachedOutcome {
        let mut holes = BTreeMap::new();
        holes.insert("k".to_string(), BitVec::from_u64(bits, 8));
        holes.insert("mode".to_string(), BitVec::from_u64(bits % 4, 2));
        CachedOutcome::Success { holes }
    }

    #[test]
    fn lookup_store_invalidate_and_counters() {
        let cache = SynthCache::new();
        assert_eq!(cache.lookup(&key(1)), None);
        cache.store(key(1), success(7));
        cache.store(key(2), CachedOutcome::Unsat);
        assert_eq!(cache.lookup(&key(1)), Some(success(7)));
        assert_eq!(cache.lookup(&key(2)), Some(CachedOutcome::Unsat));
        cache.invalidate(&key(1));
        cache.invalidate(&key(1)); // second invalidation of a gone key is a no-op
        assert_eq!(cache.lookup(&key(1)), None);
        let snap = cache.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.misses, 2);
        assert_eq!(snap.stores, 2);
        assert_eq!(snap.invalidations, 1);
        assert!((snap.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn entries_spread_over_shards() {
        let cache = SynthCache::new();
        for n in 0..64 {
            cache.store(key(n), CachedOutcome::Unsat);
        }
        assert_eq!(cache.len(), 64);
        let populated = cache.shards.iter().filter(|s| !s.lock().unwrap().is_empty()).count();
        assert!(populated > 1, "64 keys should not all land in one shard");
    }

    #[test]
    fn persistence_roundtrips() {
        let cache = SynthCache::new();
        cache.store(key(10), success(0xAB));
        cache.store(key(11), CachedOutcome::Unsat);
        let dir = std::env::temp_dir().join("lr_serve_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.lrc");
        cache.save(&path).unwrap();
        let loaded = SynthCache::load(&path).unwrap();
        assert_eq!(loaded.entries(), cache.entries());
        std::fs::remove_file(&path).unwrap();
        // A missing file is a cold start, not an error.
        assert!(SynthCache::load(&path).unwrap().is_empty());
    }

    #[test]
    fn malformed_files_are_rejected() {
        let dir = std::env::temp_dir().join("lr_serve_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, content) in [
            ("bad_header.lrc", "some-other-format v9\n"),
            ("bad_key.lrc", "lakeroad-serve-cache v1\nnothex unsat\n"),
            ("bad_verdict.lrc", &format!("lakeroad-serve-cache v1\n{} maybe\n", key(1))),
            ("bad_hole.lrc", &format!("lakeroad-serve-cache v1\n{} success k=zz'q0\n", key(1))),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, content).unwrap();
            let err = SynthCache::load(&path).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{name}");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache = SynthCache::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..100 {
                        let k = key(t * 1000 + i);
                        cache.store(k, CachedOutcome::Unsat);
                        assert!(cache.lookup(&k).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.len(), 400);
        assert_eq!(cache.snapshot().hits, 400);
    }
}
