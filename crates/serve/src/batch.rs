//! The batch front end: manifest parsing and batch reporting for
//! `lakeroad batch <manifest>`.
//!
//! A manifest is a line-oriented text file; each non-comment line names one
//! mapping job:
//!
//! ```text
//! # design                     architecture          template  [options…]
//! designs/add_mul_and.v        xilinx-ultrascale-plus dsp      priority=2
//! designs/mac.v                lattice-ecp5           auto     timeout=40
//! bench:mul_w8_s1              intel-cyclone10lp      dsp      deadline=15
//! ```
//!
//! The design column is a Verilog file (resolved relative to the manifest), a
//! structural netlist (`.aag`/`.aig`/`.bench`, also manifest-relative), or
//! `bench:<name>`, one of the §5.1 microbenchmarks of the chosen architecture.
//! Options: `priority=<0-255>` (higher first), `timeout=<secs>` (per-job
//! budget), `deadline=<secs>` (wall-clock, relative to batch start),
//! `name=<label>` (report label; defaults to the design column).

use std::path::Path;
use std::time::Duration;

use lakeroad::report::summarize_timing;
use lakeroad::{DesignSource, MapOutcome, Template};
use lr_arch::{ArchName, Architecture};

use crate::cache::CacheSnapshot;
use crate::scheduler::{BatchJob, BatchRun, JobResult, TemplateChoice};

/// Parses an architecture column (the CLI spellings of `--arch-desc`).
pub fn parse_arch_name(name: &str) -> Option<ArchName> {
    let name = name.trim_end_matches(".yml").trim_end_matches(".yaml");
    Some(match name {
        "xilinx-ultrascale-plus" | "xilinx" => ArchName::XilinxUltraScalePlus,
        "lattice-ecp5" | "lattice" | "ecp5" => ArchName::LatticeEcp5,
        "intel-cyclone10lp" | "intel" | "cyclone10lp" => ArchName::IntelCyclone10Lp,
        "sofa" => ArchName::Sofa,
        _ => return None,
    })
}

/// Parses a template column: a named template or `auto`.
pub fn parse_template(name: &str) -> Option<TemplateChoice> {
    if name == "auto" {
        return Some(TemplateChoice::Auto);
    }
    Template::from_cli_name(name).map(TemplateChoice::Named)
}

/// Parses a manifest into batch jobs. `base` anchors relative Verilog paths
/// (pass the manifest's directory).
///
/// # Errors
/// Returns a message naming the offending line for unreadable designs, unknown
/// architectures/templates, and malformed options.
pub fn parse_manifest(text: &str, base: &Path) -> Result<Vec<BatchJob>, String> {
    let mut jobs = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let at = |msg: String| format!("manifest line {}: {msg}", lineno + 1);
        let mut fields = line.split_whitespace();
        let design = fields.next().expect("non-empty line has a first field");
        let arch_field = fields.next().ok_or_else(|| at("missing architecture column".into()))?;
        let template_field = fields.next().ok_or_else(|| at("missing template column".into()))?;
        let arch_name = parse_arch_name(arch_field)
            .ok_or_else(|| at(format!("unknown architecture `{arch_field}`")))?;
        let template = parse_template(template_field)
            .ok_or_else(|| at(format!("unknown template `{template_field}`")))?;

        // One resolver for every design spelling: `bench:<name>`, a Verilog
        // path, or a structural netlist path (`.aag`/`.aig`/`.bench`).
        let spec = DesignSource::from_spec(design, base).resolve(arch_name).map_err(&at)?;

        let mut job = BatchJob::new(design, spec, Architecture::load(arch_name), template);
        for option in fields {
            let (key, value) = option
                .split_once('=')
                .ok_or_else(|| at(format!("malformed option `{option}` (expected key=value)")))?;
            match key {
                "priority" => {
                    job.priority = value
                        .parse()
                        .map_err(|_| at(format!("priority `{value}` is not 0-255")))?;
                }
                "timeout" => {
                    let secs: u64 = value
                        .parse()
                        .map_err(|_| at(format!("timeout `{value}` is not a number of seconds")))?;
                    job.timeout = Some(Duration::from_secs(secs));
                }
                "deadline" => {
                    let secs: u64 = value.parse().map_err(|_| {
                        at(format!("deadline `{value}` is not a number of seconds"))
                    })?;
                    job.deadline = Some(Duration::from_secs(secs));
                }
                "name" => job.name = value.to_string(),
                other => return Err(at(format!("unknown option `{other}`"))),
            }
        }
        jobs.push(job);
    }
    Ok(jobs)
}

/// Aggregate statistics of one batch run: verdict tallies, throughput, and the
/// cached-vs-synthesized latency split the `from_cache` flags make possible.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Jobs in the batch.
    pub jobs: usize,
    /// Successful mappings.
    pub successes: usize,
    /// UNSAT verdicts.
    pub unsats: usize,
    /// Solver timeouts.
    pub timeouts: usize,
    /// Jobs that could not be posed.
    pub errors: usize,
    /// Jobs whose deadline expired before they ran.
    pub deadline_expired: usize,
    /// Jobs drained by cancellation.
    pub cancelled: usize,
    /// Verdicts served from the synthesis cache.
    pub cache_served: usize,
    /// Wall-clock time of the batch.
    pub wall: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs that migrated between workers.
    pub steals: u64,
    /// Per-job execution times of *synthesized* verdicts.
    pub synth_latencies: Vec<Duration>,
    /// Per-job execution times of *cache-served* verdicts.
    pub cached_latencies: Vec<Duration>,
    /// Cache counter deltas over the batch, when a cache was installed.
    pub cache: Option<CacheSnapshot>,
    /// Per-job stage breakdowns, populated by [`BatchReport::attach_trace`]
    /// when the batch ran with tracing enabled. Empty otherwise.
    pub stages: Vec<JobStages>,
}

/// Aggregated span durations of one job, grouped by stage name.
#[derive(Debug, Clone)]
pub struct JobStages {
    /// Submission index of the job.
    pub index: usize,
    /// Job name.
    pub name: String,
    /// `(stage, total time, span count)` per stage, longest total first.
    pub totals: Vec<(&'static str, Duration, u64)>,
}

impl BatchReport {
    /// Builds the report from a run, optionally with the cache counter delta
    /// accumulated during it.
    pub fn from_run(run: &BatchRun, cache: Option<CacheSnapshot>) -> BatchReport {
        let mut report = BatchReport {
            jobs: run.records.len(),
            successes: 0,
            unsats: 0,
            timeouts: 0,
            errors: 0,
            deadline_expired: 0,
            cancelled: 0,
            cache_served: 0,
            wall: run.wall,
            workers: run.workers,
            steals: run.steals,
            synth_latencies: Vec::new(),
            cached_latencies: Vec::new(),
            cache,
            stages: Vec::new(),
        };
        for record in &run.records {
            match &record.result {
                JobResult::Finished(outcome) => {
                    match outcome {
                        MapOutcome::Success(_) => report.successes += 1,
                        MapOutcome::Unsat { .. } => report.unsats += 1,
                        MapOutcome::Timeout { .. } => report.timeouts += 1,
                    }
                    if outcome.served_from_cache() {
                        report.cache_served += 1;
                        report.cached_latencies.push(record.elapsed);
                    } else {
                        report.synth_latencies.push(record.elapsed);
                    }
                }
                JobResult::Error(_) => report.errors += 1,
                JobResult::DeadlineExpired => report.deadline_expired += 1,
                JobResult::Cancelled => report.cancelled += 1,
            }
        }
        report
    }

    /// Jobs per second of batch wall time.
    pub fn throughput(&self) -> f64 {
        self.jobs as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Attributes a span buffer back to the run's jobs: the scheduler sets the
    /// trace context of everything under job *i* to `i + 1`, so grouping by
    /// `ctx` yields each job's stage-by-stage time. Events with `ctx` 0 (or
    /// beyond the batch) are ignored.
    pub fn attach_trace(&mut self, run: &BatchRun, events: &[lr_trace::TraceEvent]) {
        self.stages = run
            .records
            .iter()
            .map(|record| {
                let mut totals: Vec<(&'static str, Duration, u64)> = Vec::new();
                for e in events.iter().filter(|e| e.ctx == record.index as u64 + 1) {
                    match totals.iter_mut().find(|(stage, ..)| *stage == e.name) {
                        Some((_, total, count)) => {
                            *total += Duration::from_nanos(e.dur_ns);
                            *count += 1;
                        }
                        None => totals.push((e.name, Duration::from_nanos(e.dur_ns), 1)),
                    }
                }
                totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                JobStages { index: record.index, name: record.name.clone(), totals }
            })
            .collect();
    }

    /// Renders the human-readable report the CLI prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "batch: {} jobs on {} workers in {:.2?}  ({:.2} jobs/s, {} steals)\n",
            self.jobs,
            self.workers,
            self.wall,
            self.throughput(),
            self.steals,
        ));
        out.push_str(&format!(
            "verdicts: {} success / {} unsat / {} timeout / {} error / {} expired / {} cancelled\n",
            self.successes,
            self.unsats,
            self.timeouts,
            self.errors,
            self.deadline_expired,
            self.cancelled,
        ));
        if let Some(t) = summarize_timing(&self.synth_latencies) {
            out.push_str(&format!(
                "synthesized: {}  (median {:.3} s, min {:.3} s, max {:.3} s)\n",
                self.synth_latencies.len(),
                t.median_s,
                t.min_s,
                t.max_s
            ));
        }
        if let Some(t) = summarize_timing(&self.cached_latencies) {
            out.push_str(&format!(
                "cache-served: {}  (median {:.3} s, min {:.3} s, max {:.3} s)\n",
                self.cached_latencies.len(),
                t.median_s,
                t.min_s,
                t.max_s
            ));
        }
        if let Some(c) = &self.cache {
            out.push_str(&format!(
                "cache: {} hits / {} misses ({:.1}% hit rate), {} stores, {} invalidations, \
                 {} evictions\n",
                c.hits,
                c.misses,
                100.0 * c.hit_rate(),
                c.stores,
                c.invalidations,
                c.evictions,
            ));
        }
        if !self.stages.is_empty() {
            out.push_str("per-job stages (traced):\n");
            for job in &self.stages {
                out.push_str(&format!("  [{}] {}:", job.index, job.name));
                if job.totals.is_empty() {
                    out.push_str(" no spans recorded");
                }
                for (stage, total, count) in &job.totals {
                    out.push_str(&format!(" {stage} {:.1}ms x{count};", total.as_secs_f64() * 1e3));
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{run_batch, BatchOptions};
    use lakeroad::MapConfig;

    #[test]
    fn manifest_parses_paths_benches_and_options() {
        let dir = std::env::temp_dir().join("lr_serve_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("mul.v"),
            "module mul8(input clk, input [7:0] a, b, output [7:0] out);\n  assign out = a * b;\nendmodule\n",
        )
        .unwrap();
        let manifest = "\
# a comment line
mul.v intel-cyclone10lp dsp priority=3 timeout=9 name=from_file

bench:mul_w8_s0 intel-cyclone10lp auto deadline=30  # trailing comment
";
        let jobs = parse_manifest(manifest, &dir).unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name, "from_file");
        assert_eq!(jobs[0].priority, 3);
        assert_eq!(jobs[0].timeout, Some(Duration::from_secs(9)));
        assert!(matches!(jobs[0].template, TemplateChoice::Named(Template::Dsp)));
        assert_eq!(jobs[1].name, "bench:mul_w8_s0");
        assert_eq!(jobs[1].deadline, Some(Duration::from_secs(30)));
        assert!(matches!(jobs[1].template, TemplateChoice::Auto));
    }

    #[test]
    fn manifest_errors_name_the_line() {
        let base = Path::new(".");
        for (manifest, needle) in [
            ("x.v nope dsp", "unknown architecture"),
            ("x.v intel nope", "unknown template"),
            ("bench:missing intel dsp", "no microbenchmark"),
            ("x.v intel", "missing template"),
            ("bench:mul_w8_s0 intel dsp weird", "malformed option"),
            ("bench:mul_w8_s0 intel dsp pri=2", "unknown option"),
            ("bench:mul_w8_s0 intel dsp timeout=abc", "not a number"),
        ] {
            let err = parse_manifest(manifest, base).unwrap_err();
            assert!(err.contains(needle), "{manifest}: {err}");
            assert!(err.contains("line 1"), "{manifest}: {err}");
        }
    }

    #[test]
    fn attach_trace_groups_spans_by_job_context() {
        let jobs = crate::scenario::suite_jobs(ArchName::IntelCyclone10Lp, 2);
        let opts =
            BatchOptions::new(1, MapConfig::single_solver().with_timeout(Duration::from_secs(30)));
        let run = run_batch(&jobs, &opts);
        let mut report = BatchReport::from_run(&run, None);
        // Synthetic events: the scheduler stamps job i's spans with ctx i+1.
        let ev = |name, ctx, dur_ns| lr_trace::TraceEvent {
            name,
            tid: 1,
            ctx,
            depth: 0,
            start_ns: 0,
            dur_ns,
            attrs: Vec::new(),
        };
        let events = vec![
            ev("job", 1, 5_000_000),
            ev("cegis", 1, 3_000_000),
            ev("sat-check", 1, 1_000_000),
            ev("sat-check", 1, 2_000_000),
            ev("job", 2, 1_000_000),
            ev("stray", 0, 9_000_000), // unattributed: must be ignored
        ];
        report.attach_trace(&run, &events);
        assert_eq!(report.stages.len(), 2);
        let first = &report.stages[0];
        assert_eq!(first.index, 0);
        assert_eq!(first.totals[0], ("job", Duration::from_millis(5), 1));
        assert!(first.totals.contains(&("sat-check", Duration::from_millis(3), 2)));
        assert_eq!(report.stages[1].totals, vec![("job", Duration::from_millis(1), 1)]);
        let rendered = report.render();
        assert!(rendered.contains("per-job stages"));
        assert!(rendered.contains("sat-check 3.0ms x2;"));
        assert!(!rendered.contains("stray"));
    }

    #[test]
    fn report_tallies_a_run() {
        let mut jobs = crate::scenario::suite_jobs(ArchName::IntelCyclone10Lp, 2);
        jobs[1].deadline = Some(Duration::ZERO);
        let opts =
            BatchOptions::new(2, MapConfig::single_solver().with_timeout(Duration::from_secs(30)));
        let run = run_batch(&jobs, &opts);
        let report = BatchReport::from_run(&run, None);
        assert_eq!(report.jobs, 2);
        assert_eq!(report.successes, 1);
        assert_eq!(report.deadline_expired, 1);
        assert_eq!(report.cache_served, 0);
        let rendered = report.render();
        assert!(rendered.contains("2 jobs"));
        assert!(rendered.contains("1 success"));
        assert!(rendered.contains("1 expired"));
    }
}
