//! # lr-serve: the batch mapping engine
//!
//! The paper runs Lakeroad once per compilation; this crate turns the mapper
//! into a *serving* system that handles batches of mapping requests the way the
//! ROADMAP's production deployment would see them — many designs × architectures
//! × templates, arriving together, with priorities and deadlines.
//!
//! Two pieces do the scaling work:
//!
//! * **A content-addressed synthesis cache** ([`SynthCache`]): verdicts are
//!   stored under a stable hash of the e-graph-canonicalized spec plus
//!   architecture, template, and timeout tier (`lakeroad::CacheKey`), sharded
//!   behind `std::sync` mutexes, and optionally persisted to disk so warm
//!   caches survive across CLI invocations. Success hits replay the stored
//!   hole assignment through sketch generation and are **verified by `lr_ir`
//!   interpretation** before being served — a stale entry costs a wasted
//!   replay and falls back to synthesis. (UNSAT entries have nothing to
//!   replay and rest on the 128-bit content address plus the persisted
//!   format's version header.)
//! * **A work-stealing scheduler** ([`run_batch`]): per-worker deques of jobs
//!   with steal-on-empty, priority-ordered dealing, per-job deadlines, and
//!   cooperative cancellation, built on `std::thread::scope`. Results stream
//!   back in submission order, so batch output is stable regardless of worker
//!   count — a property the determinism tests pin down.
//!
//! On top of the batch engine sits the **resident daemon** ([`daemon`]): the
//! `lakeroad serve` subcommand keeps one always-warm, size-bounded cache alive
//! across many clients, speaking the length-prefixed JSON protocol of
//! [`protocol`] over plain TCP, with per-client admission bounds, periodic
//! atomic cache persistence, and a graceful zero-lost-jobs drain.
//!
//! The `lakeroad batch <manifest>` CLI subcommand and the `exp_serve`/`exp_all`
//! experiment binaries sit on top of [`batch`] and [`scenario`].
//!
//! ```no_run
//! use std::sync::Arc;
//! use lakeroad::MapConfig;
//! use lr_arch::ArchName;
//! use lr_serve::{run_batch, suite_jobs, BatchOptions, BatchReport, SynthCache};
//!
//! let cache = Arc::new(SynthCache::new());
//! let opts = BatchOptions::new(4, MapConfig::default().with_cache(cache.clone()));
//! let jobs = suite_jobs(ArchName::IntelCyclone10Lp, 16);
//! let before = cache.snapshot();
//! let run = run_batch(&jobs, &opts);
//! let report = BatchReport::from_run(&run, Some(before.delta(&cache.snapshot())));
//! println!("{}", report.render());
//! ```

pub mod batch;
pub mod cache;
pub mod daemon;
pub mod forensics;
pub mod json;
pub mod netlist;
pub mod protocol;
pub mod scenario;
pub mod scheduler;
pub mod top;
pub mod tracefmt;

pub use batch::{parse_arch_name, parse_manifest, parse_template, BatchReport, JobStages};
pub use cache::{CacheSnapshot, SynthCache};
pub use daemon::{Daemon, DaemonClient, DaemonConfig, DaemonSummary};
pub use forensics::{FlightRecorder, ForensicsConfig, RequestRecord};
pub use json::Json;
pub use netlist::{cone_jobs, map_netlist, NetlistOptions, NetlistReport};
pub use scenario::{
    fuzz_jobs, grinder_jobs, netlist_jobs, random_program, suite_jobs, synthetic_jobs, Rng,
};
pub use scheduler::{
    run_batch, run_batch_streaming, set_poison_job, BatchJob, BatchOptions, BatchRun, JobRecord,
    JobResult, TemplateChoice,
};
pub use tracefmt::{chrome_trace, chrome_trace_json};
