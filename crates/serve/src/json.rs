//! A minimal JSON value for the daemon protocol: parser and renderer, no
//! dependencies.
//!
//! The wire protocol (see [`crate::protocol`]) frames one JSON document per
//! request/response. The bench crate already carries a read-only mini parser
//! for `BENCH_*.json`; this one also *renders*, and its string handling covers
//! what protocol payloads need — full escape output for arbitrary Verilog
//! source (control characters as `\u00XX`) and `\uXXXX` escape input.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (protocol payloads stay well within `f64` precision).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is not preserved; renders sorted by key.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// An object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A numeric value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Looks up a path of object keys.
    pub fn get(&self, path: &[&str]) -> Option<&Json> {
        let mut cur = self;
        for key in path {
            match cur {
                Json::Obj(map) => cur = map.get(*key)?,
                _ => return None,
            }
        }
        Some(cur)
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the document as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Integral values render without a fractional part so counters
                // survive a parse/render round trip textually.
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    /// Returns a byte-offset description of the first syntax error. Nesting
    /// deeper than [`MAX_DEPTH`] is a syntax error, not a recursion: the parser
    /// sees untrusted multi-megabyte frames, and unbounded recursive descent
    /// would let `[[[[…` overflow the handler thread's stack and abort the
    /// whole process instead of earning an `error` response.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, MAX_DEPTH)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

/// Maximum container nesting [`Json::parse`] accepts. Protocol payloads are a
/// couple of levels deep; 64 is far above any legitimate document and far
/// below the recursion depth that would exhaust a thread stack.
pub const MAX_DEPTH: usize = 64;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    if depth == 0 && matches!(bytes.get(*pos), Some(b'{' | b'[')) {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos, depth - 1)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected `:` at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth - 1)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth - 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .map(Json::Num)
                .ok_or_else(|| format!("malformed number at byte {start}"))
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    // Accumulate raw bytes and validate as UTF-8 once, so multi-byte sequences
    // survive intact.
    let mut out: Vec<u8> = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out)
                    .map(Json::Str)
                    .map_err(|_| "invalid UTF-8 in string".to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("malformed \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not needed by the protocol; reject
                        // rather than decode them wrong.
                        let c = char::from_u32(hex)
                            .ok_or_else(|| format!("\\u{hex:04x} is not a scalar value"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => return Err(format!("unsupported escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                out.push(c);
                *pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trips() {
        let doc = Json::obj([
            ("kind", Json::str("map")),
            ("priority", Json::num(3)),
            ("warm", Json::Bool(true)),
            ("nothing", Json::Null),
            ("items", Json::Arr(vec![Json::num(1), Json::num(-2.5)])),
            ("verilog", Json::str("module m;\n\tassign x = \"q\\\\\";\nendmodule\r\u{1}")),
            ("unicode", Json::str("§5.1 → Xilinx")),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn integral_numbers_render_without_fraction() {
        assert_eq!(Json::num(42).render(), "42");
        assert_eq!(Json::num(2.5).render(), "2.5");
    }

    #[test]
    fn control_characters_escape_as_hex() {
        assert_eq!(Json::str("a\u{1}b").render(), "\"a\\u0001b\"");
        assert_eq!(Json::parse("\"a\\u0001b\"").unwrap(), Json::str("a\u{1}b"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in ["{\"a\": }", "[1, 2", "{\"a\": 1} x", "\"oops", "\"\\u12\"", "\"\\ud800\""] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn deep_nesting_is_a_parse_error_not_a_stack_overflow() {
        // Regression: recursive descent with no depth limit let a frame of
        // ~10-20k nested `[` overflow the handler thread's stack, aborting the
        // whole daemon. Such payloads must earn an error like any other
        // malformed document.
        for open in ["[", "{\"k\":"] {
            let deep = open.repeat(100_000);
            let err = Json::parse(&deep).unwrap_err();
            assert!(err.contains("nesting deeper than"), "{open}: {err}");
        }
        // Documents at the limit still parse.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        let too_deep = format!("{}1{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(Json::parse(&too_deep).is_err());
    }

    #[test]
    fn path_lookup_and_accessors() {
        let doc =
            Json::parse("{\"cache\": {\"hits\": 7, \"warm\": true, \"name\": \"c\"}}").unwrap();
        assert_eq!(doc.get(&["cache", "hits"]).and_then(Json::as_f64), Some(7.0));
        assert_eq!(doc.get(&["cache", "warm"]).and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get(&["cache", "name"]).and_then(Json::as_str), Some("c"));
        assert!(doc.get(&["cache", "absent"]).is_none());
    }
}
