//! The flight recorder: per-request forensics records and post-mortem
//! bundles.
//!
//! A resident daemon's pathological requests — a CEGIS blow-up, an e-graph
//! that saturates without folding, a worker panic — are precisely the ones
//! whose evidence evaporates with the response. The [`FlightRecorder`] keeps
//! a bounded ring of [`RequestRecord`]s (identity, design hash, verdict,
//! latency split, solver counters, and the request's own span tree) for the
//! last N `map` requests, and *dumps* a record as an on-disk post-mortem
//! bundle when something went wrong:
//!
//! * the worker **panicked** (the scheduler's `catch_unwind` contains it and
//!   reports `panicked: ...`);
//! * the verdict was **unsat** or **timeout**;
//! * end-to-end latency breached the **slow-query threshold** (`--slow-ms`;
//!   a threshold of 0 dumps every request, which is what the integration
//!   tests and `exp_obs` use).
//!
//! A bundle is one JSONL file under `--forensics-dir`: line 1 is the record
//! header, each further line one span event. Files are written with the same
//! atomic discipline as the cache snapshot (unique tmp + `sync_all` +
//! `rename`) and rotated oldest-first so at most `--forensics-keep` bundles
//! exist. Draining writes a final `drain` bundle of the whole ring, so the
//! evidence of a crashing run's last requests survives the restart.
//!
//! Everything here is observation-only: the recorder never touches the
//! mapping configuration or the cache, so enabling it must not change any
//! deterministic synthesis counter (`check_obs` gates exactly that).

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use lr_trace::TraceEvent;

use crate::json::Json;

/// Flight-recorder configuration, carried on `DaemonConfig`.
#[derive(Debug, Clone, Default)]
pub struct ForensicsConfig {
    /// Bundle directory; `None` keeps the in-memory ring only.
    pub dir: Option<PathBuf>,
    /// Slow-query threshold; a completed request at or above it is dumped.
    /// `None` disables the slow trigger (panics/unsat/timeout still dump).
    pub slow: Option<Duration>,
    /// Maximum bundle files kept in `dir` (oldest-first rotation).
    pub keep: usize,
    /// Records retained in the in-memory ring.
    pub ring: usize,
}

impl ForensicsConfig {
    /// Whether any forensics surface is requested at all.
    pub fn active(&self) -> bool {
        self.dir.is_some() || self.slow.is_some()
    }
}

/// Everything the daemon knows about one completed `map` request.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Admission ticket (the job's queue sequence number).
    pub seq: u64,
    /// The request's correlation `id`, verbatim, when the client sent one.
    pub id: Option<Json>,
    /// Job display name.
    pub name: String,
    /// Design hash: the spec fingerprint rendered as a 32-hex-digit
    /// `CacheKey` — stable across runs, so post-mortems of the same design
    /// correlate.
    pub design: String,
    /// Target architecture (CLI name).
    pub arch: String,
    /// Template selection (`auto` or a template CLI name).
    pub template: String,
    /// Scheduling priority.
    pub priority: u8,
    /// Verdict label, matching the `mapped` response (`success`, `unsat`,
    /// `timeout`, `error`, `deadline_expired`, `cancelled`).
    pub verdict: &'static str,
    /// The error message for `error` verdicts.
    pub error: Option<String>,
    /// Whether the error was a contained worker panic.
    pub panicked: bool,
    /// Whether the verdict was served from the warm cache.
    pub from_cache: bool,
    /// Queue wait, µs.
    pub queue_wait_us: u64,
    /// Execution latency (worker pickup → response), µs.
    pub latency_us: u64,
    /// Milliseconds since daemon start when the record was made.
    pub completed_at_ms: u64,
    /// CEGIS iterations of this run (0 when not finished).
    pub iterations: u64,
    /// Counterexamples accumulated.
    pub examples: u64,
    /// SAT conflicts.
    pub conflicts: u64,
    /// SAT unit propagations.
    pub propagations: u64,
    /// SAT restarts.
    pub restarts: u64,
    /// The request's own span tree (events whose trace ctx matched the job).
    pub spans: Vec<TraceEvent>,
    /// Why this record was dumped as a bundle (`panic`, `unsat`, `timeout`,
    /// `slow`), or `None` for an unremarkable request.
    pub trigger: Option<&'static str>,
}

impl RequestRecord {
    /// The header fields, without the span tree — one bundle line, one list
    /// entry.
    pub fn header_json(&self) -> Json {
        Json::obj([
            ("seq", Json::num(self.seq as f64)),
            ("id", self.id.clone().unwrap_or(Json::Null)),
            ("name", Json::str(&self.name)),
            ("design", Json::str(&self.design)),
            ("arch", Json::str(&self.arch)),
            ("template", Json::str(&self.template)),
            ("priority", Json::num(f64::from(self.priority))),
            ("verdict", Json::str(self.verdict)),
            ("error", self.error.as_deref().map_or(Json::Null, Json::str)),
            ("panicked", Json::Bool(self.panicked)),
            ("from_cache", Json::Bool(self.from_cache)),
            ("queue_wait_us", Json::num(self.queue_wait_us as f64)),
            ("latency_us", Json::num(self.latency_us as f64)),
            ("completed_at_ms", Json::num(self.completed_at_ms as f64)),
            (
                "counters",
                Json::obj([
                    ("iterations", Json::num(self.iterations as f64)),
                    ("examples", Json::num(self.examples as f64)),
                    ("conflicts", Json::num(self.conflicts as f64)),
                    ("propagations", Json::num(self.propagations as f64)),
                    ("restarts", Json::num(self.restarts as f64)),
                ]),
            ),
            ("span_events", Json::num(self.spans.len() as f64)),
            ("trigger", self.trigger.map_or(Json::Null, Json::str)),
        ])
    }

    /// The full record: header plus the span tree as a Chrome trace-event
    /// document (what `{"kind":"forensics","id":...}` returns).
    pub fn full_json(&self) -> Json {
        let mut doc = self.header_json();
        if let Json::Obj(map) = &mut doc {
            map.insert("spans".to_string(), crate::tracefmt::chrome_trace(&self.spans));
        }
        doc
    }

    /// One bundle: the header line followed by one line per span event.
    fn to_jsonl(&self) -> String {
        let mut out = self.header_json().render();
        out.push('\n');
        for ev in &self.spans {
            out.push_str(&crate::tracefmt::event_json(ev).render());
            out.push('\n');
        }
        out
    }
}

/// The bounded ring of recent [`RequestRecord`]s plus the bundle writer.
pub struct FlightRecorder {
    config: ForensicsConfig,
    ring: Mutex<VecDeque<RequestRecord>>,
    /// Bundle files currently on disk, oldest first (rotation accounting).
    bundles: Mutex<VecDeque<PathBuf>>,
    bundles_written: AtomicU64,
    bundle_errors: AtomicU64,
    ticket: AtomicU64,
}

impl FlightRecorder {
    /// Builds the recorder; creates the bundle directory and adopts any
    /// bundles already in it (so rotation counts survive a restart).
    pub fn new(mut config: ForensicsConfig) -> FlightRecorder {
        config.keep = config.keep.max(1);
        config.ring = config.ring.max(1);
        let mut existing = Vec::new();
        if let Some(dir) = &config.dir {
            let _ = std::fs::create_dir_all(dir);
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.extension().is_some_and(|e| e == "jsonl") {
                        existing.push(path);
                    }
                }
            }
            // Bundle names start with a zero-padded timestamp, so the lexical
            // order is the chronological one.
            existing.sort();
        }
        FlightRecorder {
            config,
            ring: Mutex::new(VecDeque::new()),
            bundles: Mutex::new(existing.into()),
            bundles_written: AtomicU64::new(0),
            bundle_errors: AtomicU64::new(0),
            ticket: AtomicU64::new(0),
        }
    }

    /// The slow-query threshold, if one is set.
    pub fn slow_threshold(&self) -> Option<Duration> {
        self.config.slow
    }

    /// Whether span trees should be captured for records (they are the
    /// payload of every bundle, so capture whenever the recorder is active).
    pub fn wants_spans(&self) -> bool {
        true
    }

    /// Decides the record's dump trigger from its outcome. Panic wins over
    /// verdict, verdict over mere slowness.
    pub fn classify(&self, record: &RequestRecord) -> Option<&'static str> {
        if record.panicked {
            return Some("panic");
        }
        match record.verdict {
            "unsat" => return Some("unsat"),
            "timeout" => return Some("timeout"),
            _ => {}
        }
        let slow = self.config.slow?;
        let threshold_us = u64::try_from(slow.as_micros()).unwrap_or(u64::MAX);
        (record.latency_us >= threshold_us).then_some("slow")
    }

    /// Admits one record: classifies it, appends it to the bounded ring, and
    /// dumps a bundle when it triggered and a directory is configured.
    pub fn record(&self, mut record: RequestRecord) {
        record.trigger = self.classify(&record);
        if record.trigger.is_some() {
            let stem = format!("seq{:06}-{}", record.seq, record.trigger.unwrap_or("none"));
            self.write_bundle(&stem, std::slice::from_ref(&record));
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.config.ring {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Writes the whole ring as one `drain` bundle — the final forensics
    /// sync that rides along with the shutdown cache snapshot.
    pub fn final_sync(&self) {
        let ring = self.ring.lock().unwrap();
        if ring.is_empty() {
            return;
        }
        let records: Vec<RequestRecord> = ring.iter().cloned().collect();
        drop(ring);
        self.write_bundle("drain", &records);
    }

    /// Bundles successfully written by this recorder.
    pub fn bundles_written(&self) -> u64 {
        self.bundles_written.load(Ordering::Relaxed)
    }

    /// Bundle writes that failed (I/O errors; the daemon keeps serving).
    pub fn bundle_errors(&self) -> u64 {
        self.bundle_errors.load(Ordering::Relaxed)
    }

    /// Records currently retained in the ring.
    pub fn retained(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// The listing for `{"kind":"forensics"}`: newest-first record headers
    /// plus the bundle files on disk.
    pub fn list_json(&self) -> Json {
        let ring = self.ring.lock().unwrap();
        let records: Vec<Json> = ring.iter().rev().map(RequestRecord::header_json).collect();
        drop(ring);
        let bundles: Vec<Json> = self
            .bundles
            .lock()
            .unwrap()
            .iter()
            .filter_map(|p| p.file_name())
            .map(|n| Json::str(n.to_string_lossy()))
            .collect();
        Json::obj([
            ("records", Json::Arr(records)),
            ("bundles", Json::Arr(bundles)),
            ("bundles_written", Json::num(self.bundles_written() as f64)),
            ("bundle_errors", Json::num(self.bundle_errors() as f64)),
            (
                "dir",
                self.config.dir.as_ref().map_or(Json::Null, |d| Json::str(d.to_string_lossy())),
            ),
        ])
    }

    /// Fetches the newest retained record whose correlation id equals `id`.
    pub fn fetch(&self, id: &Json) -> Option<Json> {
        let ring = self.ring.lock().unwrap();
        ring.iter().rev().find(|r| r.id.as_ref() == Some(id)).map(RequestRecord::full_json)
    }

    /// Writes one bundle file atomically (unique tmp, `sync_all`, rename —
    /// the cache-snapshot discipline) and rotates the oldest bundles out.
    fn write_bundle(&self, stem: &str, records: &[RequestRecord]) {
        let Some(dir) = &self.config.dir else { return };
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let ticket = self.ticket.fetch_add(1, Ordering::Relaxed);
        // The zero-padded timestamp keys chronological rotation; the ticket
        // keeps names unique within one millisecond.
        let name = format!("{unix_ms:013}-{ticket:04}-{stem}.jsonl");
        let path = dir.join(&name);
        match self.write_atomic(dir, &path, records) {
            Ok(()) => {
                self.bundles_written.fetch_add(1, Ordering::Relaxed);
                let mut bundles = self.bundles.lock().unwrap();
                bundles.push_back(path);
                while bundles.len() > self.config.keep {
                    if let Some(oldest) = bundles.pop_front() {
                        let _ = std::fs::remove_file(oldest);
                    }
                }
            }
            Err(_) => {
                self.bundle_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn write_atomic(
        &self,
        dir: &Path,
        path: &Path,
        records: &[RequestRecord],
    ) -> std::io::Result<()> {
        let tmp = dir.join(format!(
            "{}.{}.{}.tmp",
            path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default(),
            std::process::id(),
            self.ticket.fetch_add(1, Ordering::Relaxed),
        ));
        let result = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            for record in records {
                file.write_all(record.to_jsonl().as_bytes())?;
            }
            file.sync_all()?;
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64, verdict: &'static str, latency_us: u64) -> RequestRecord {
        RequestRecord {
            seq,
            id: Some(Json::num(seq as f64)),
            name: format!("job-{seq}"),
            design: "00112233445566778899aabbccddeeff".to_string(),
            arch: "intel".to_string(),
            template: "dsp".to_string(),
            priority: 0,
            verdict,
            error: None,
            panicked: false,
            from_cache: false,
            queue_wait_us: 10,
            latency_us,
            completed_at_ms: 5,
            iterations: 2,
            examples: 3,
            conflicts: 40,
            propagations: 500,
            restarts: 1,
            spans: vec![TraceEvent {
                name: "daemon-request",
                tid: 1,
                ctx: seq + 1,
                depth: 0,
                start_ns: 0,
                dur_ns: latency_us.saturating_mul(1_000),
                attrs: vec![("seq", seq)],
            }],
            trigger: None,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lr_forensics_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn classification_prefers_panic_then_verdict_then_slow() {
        let rec = FlightRecorder::new(ForensicsConfig {
            slow: Some(Duration::from_millis(100)),
            ..ForensicsConfig::default()
        });
        let mut panicked = sample(0, "error", 1);
        panicked.panicked = true;
        assert_eq!(rec.classify(&panicked), Some("panic"));
        assert_eq!(rec.classify(&sample(1, "unsat", 1)), Some("unsat"));
        assert_eq!(rec.classify(&sample(2, "timeout", 1)), Some("timeout"));
        assert_eq!(rec.classify(&sample(3, "success", 200_000)), Some("slow"));
        assert_eq!(rec.classify(&sample(4, "success", 10)), None);

        let no_slow = FlightRecorder::new(ForensicsConfig::default());
        assert_eq!(no_slow.classify(&sample(5, "success", u64::MAX)), None);
    }

    #[test]
    fn ring_is_bounded_and_fetch_finds_by_id() {
        let rec = FlightRecorder::new(ForensicsConfig { ring: 3, ..ForensicsConfig::default() });
        for seq in 0..5 {
            rec.record(sample(seq, "success", 10));
        }
        assert_eq!(rec.retained(), 3);
        assert!(rec.fetch(&Json::num(1.0)).is_none(), "evicted oldest-first");
        let found = rec.fetch(&Json::num(4.0)).expect("newest retained");
        assert_eq!(found.get(&["name"]).and_then(Json::as_str), Some("job-4"));
        assert!(found.get(&["spans", "traceEvents"]).and_then(Json::as_arr).is_some());
    }

    #[test]
    fn bundles_rotate_oldest_first_and_parse_as_jsonl() {
        let dir = temp_dir("rotate");
        let rec = FlightRecorder::new(ForensicsConfig {
            dir: Some(dir.clone()),
            slow: Some(Duration::ZERO),
            keep: 2,
            ring: 8,
        });
        for seq in 0..4 {
            rec.record(sample(seq, "success", 50));
        }
        assert_eq!(rec.bundles_written(), 4);
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        files.sort();
        assert_eq!(files.len(), 2, "rotation keeps only the newest: {files:?}");
        assert!(files[0].contains("seq000002") && files[1].contains("seq000003"), "{files:?}");
        for file in &files {
            let text = std::fs::read_to_string(dir.join(file)).unwrap();
            let lines: Vec<&str> = text.lines().collect();
            assert_eq!(lines.len(), 2, "header + one span line");
            let header = Json::parse(lines[0]).unwrap();
            assert_eq!(header.get(&["trigger"]).and_then(Json::as_str), Some("slow"));
            let span = Json::parse(lines[1]).unwrap();
            assert_eq!(span.get(&["name"]).and_then(Json::as_str), Some("daemon-request"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn final_sync_writes_the_whole_ring() {
        let dir = temp_dir("final");
        let rec = FlightRecorder::new(ForensicsConfig {
            dir: Some(dir.clone()),
            keep: 8,
            ring: 8,
            ..ForensicsConfig::default()
        });
        rec.record(sample(0, "success", 10));
        rec.record(sample(1, "success", 10));
        assert_eq!(rec.bundles_written(), 0, "no trigger, no per-request bundle");
        rec.final_sync();
        assert_eq!(rec.bundles_written(), 1);
        let file = std::fs::read_dir(&dir).unwrap().flatten().next().unwrap().path();
        assert!(file.to_string_lossy().contains("drain"));
        let text = std::fs::read_to_string(&file).unwrap();
        assert_eq!(text.lines().count(), 4, "two records × (header + span)");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn listing_reports_records_and_bundles() {
        let dir = temp_dir("list");
        let rec = FlightRecorder::new(ForensicsConfig {
            dir: Some(dir.clone()),
            slow: Some(Duration::ZERO),
            keep: 4,
            ring: 4,
        });
        rec.record(sample(0, "unsat", 10));
        let listing = rec.list_json();
        assert_eq!(listing.get(&["bundles_written"]).and_then(Json::as_f64), Some(1.0));
        let records = listing.get(&["records"]).and_then(Json::as_arr).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].get(&["verdict"]).and_then(Json::as_str), Some("unsat"));
        let bundles = listing.get(&["bundles"]).and_then(Json::as_arr).unwrap();
        assert_eq!(bundles.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
