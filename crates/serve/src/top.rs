//! `lakeroad top`: a live terminal dashboard for a running daemon.
//!
//! The daemon's `stats` response is a point-in-time JSON document; `top` turns
//! it into the operator's view — current throughput (the windowed rates, not
//! lifetime averages), warm-hit share, queue pressure, windowed latency
//! quantiles, the per-stage time split aggregated from the span buffer, and
//! the flight recorder's most recent notable requests — refreshed in place
//! until interrupted, or printed once with `--once`.
//!
//! Rendering is pure ([`render`] maps fetched JSON documents to a string), so
//! the dashboard is unit-testable without a socket; [`fetch`] does the
//! protocol round-trips and tolerates a daemon without forensics enabled.

use std::collections::BTreeMap;
use std::io;
use std::time::Duration;

use crate::daemon::DaemonClient;
use crate::json::Json;

/// One round of polled documents: `stats` (required), `trace` and `forensics`
/// (both optional — the daemon may have tracing disabled or forensics off).
pub struct TopSnapshot {
    /// The `stats` response document.
    pub stats: Json,
    /// The `trace` response document, when the daemon is recording spans.
    pub trace: Option<Json>,
    /// The `forensics` listing, when the flight recorder is active.
    pub forensics: Option<Json>,
}

/// Polls one snapshot over the daemon protocol.
///
/// # Errors
/// Socket/framing errors talking to `addr`; a daemon that answers `stats` but
/// rejects `forensics` (recorder off) still yields a snapshot.
pub fn fetch(addr: &str) -> io::Result<TopSnapshot> {
    let mut client = DaemonClient::connect(addr)?;
    let stats = client.request("{\"kind\":\"stats\"}")?;
    let trace = client
        .request("{\"kind\":\"trace\"}")
        .ok()
        .filter(|doc| doc.get(&["enabled"]).and_then(Json::as_bool) == Some(true));
    let forensics = client
        .request("{\"kind\":\"forensics\"}")
        .ok()
        .filter(|doc| doc.get(&["kind"]).and_then(Json::as_str) == Some("forensics"));
    Ok(TopSnapshot { stats, trace, forensics })
}

fn num(doc: &Json, path: &[&str]) -> f64 {
    doc.get(path).and_then(Json::as_f64).unwrap_or(0.0)
}

fn quantile(doc: &Json, path: &[&str]) -> String {
    match doc.get(path).and_then(Json::as_f64) {
        Some(us) => format_us(us),
        None => "-".to_string(),
    }
}

fn format_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.1}ms", us / 1e3)
    } else {
        format!("{us:.0}µs")
    }
}

/// Renders one snapshot as the dashboard text (no ANSI control codes — the
/// refresh loop adds the clear-screen prefix itself).
pub fn render(snap: &TopSnapshot) -> String {
    let s = &snap.stats;
    let mut out = String::new();

    let uptime_s = num(s, &["uptime_ms"]) / 1e3;
    out.push_str(&format!(
        "lakeroad top — uptime {:.0}s, {} workers, queue depth {}{}\n",
        uptime_s,
        num(s, &["workers"]),
        num(s, &["queue_depth"]),
        if s.get(&["draining"]).and_then(Json::as_bool) == Some(true) { ", DRAINING" } else { "" },
    ));

    out.push_str(&format!(
        "throughput   {:>7.2}/s (1s)  {:>7.2}/s (10s)  {:>7.2}/s (60s)   rejected {:.2}/s (10s)\n",
        num(s, &["rates", "completed", "per_sec_1s"]),
        num(s, &["rates", "completed", "per_sec_10s"]),
        num(s, &["rates", "completed", "per_sec_60s"]),
        num(s, &["rates", "rejected", "per_sec_10s"]),
    ));

    let completed = num(s, &["requests", "completed"]);
    let served = num(s, &["cache", "served"]);
    let warm = if completed > 0.0 { 100.0 * served / completed } else { 0.0 };
    out.push_str(&format!(
        "lifetime     accepted {}  completed {}  rejected {}  warm-hit {:.1}% ({} served)\n",
        num(s, &["requests", "accepted"]),
        completed,
        num(s, &["requests", "rejected"]),
        warm,
        served,
    ));

    out.push_str(&format!(
        "latency 10s  p50 {}  p99 {}    lifetime p50 {}  p99 {}  queue-wait p99 {}\n",
        quantile(s, &["rates", "latency_us_10s", "p50"]),
        quantile(s, &["rates", "latency_us_10s", "p99"]),
        quantile(s, &["latency", "request_us", "p50"]),
        quantile(s, &["latency", "request_us", "p99"]),
        quantile(s, &["latency", "queue_wait_us", "p99"]),
    ));

    out.push_str(&format!(
        "verdicts     success {}  unsat {}  timeout {}  error {}  expired {}   spans dropped {}\n",
        num(s, &["verdicts", "success"]),
        num(s, &["verdicts", "unsat"]),
        num(s, &["verdicts", "timeout"]),
        num(s, &["verdicts", "error"]),
        num(s, &["verdicts", "deadline_expired"]),
        num(s, &["trace", "spans_dropped"]),
    ));

    if let Some(trace) = &snap.trace {
        out.push_str(&stage_split(trace));
    }
    if let Some(forensics) = &snap.forensics {
        out.push_str(&recent_records(forensics));
    } else if s.get(&["forensics", "active"]).and_then(Json::as_bool) == Some(true) {
        out.push_str(&format!(
            "forensics    {} bundles written, {} records retained\n",
            num(s, &["forensics", "bundles_written"]),
            num(s, &["forensics", "retained"]),
        ));
    }
    out
}

/// The per-stage inclusive time split, aggregated from the daemon's span
/// buffer (same grouping as [`lr_trace::stage_summary`], but over the
/// protocol). Nested spans count toward their own stage, so shares are
/// inclusive and need not sum to 100%.
fn stage_split(trace: &Json) -> String {
    let Some(events) = trace.get(&["trace", "traceEvents"]).and_then(Json::as_arr) else {
        return String::new();
    };
    let mut agg: BTreeMap<&str, (u64, f64)> = BTreeMap::new();
    for ev in events {
        let Some(name) = ev.get(&["name"]).and_then(Json::as_str) else { continue };
        let dur = num(ev, &["dur"]);
        let e = agg.entry(name).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += dur;
    }
    if agg.is_empty() {
        return String::new();
    }
    let total: f64 =
        agg.iter().filter(|&(&name, _)| name == "daemon-request").map(|(_, &(_, dur))| dur).sum();
    let mut rows: Vec<(&str, (u64, f64))> = agg.into_iter().collect();
    rows.sort_by(|a, b| b.1 .1.partial_cmp(&a.1 .1).unwrap_or(std::cmp::Ordering::Equal));
    let mut out = String::from("stages (span buffer, inclusive)\n");
    for (name, (count, dur)) in rows.iter().take(8) {
        let share = if total > 0.0 { 100.0 * dur / total } else { 0.0 };
        out.push_str(&format!(
            "  {name:<18} {count:>6}x  {:>10}  {share:>5.1}%\n",
            format_us(*dur)
        ));
    }
    let truncated = num(trace, &["truncated"]);
    if truncated > 0.0 {
        out.push_str(&format!("  (+{truncated} buffered events truncated from this view)\n"));
    }
    out
}

/// The flight recorder's newest notable records: anything that triggered a
/// bundle first (slow/unsat/timeout/panic), padded with the newest ordinary
/// records up to six rows.
fn recent_records(forensics: &Json) -> String {
    let retained =
        forensics.get(&["records"]).and_then(Json::as_arr).map_or(0, |records| records.len());
    let mut out = format!(
        "forensics    {} bundles written ({} errors), {retained} records retained\n",
        num(forensics, &["bundles_written"]),
        num(forensics, &["bundle_errors"]),
    );
    let Some(records) = forensics.get(&["records"]).and_then(Json::as_arr) else { return out };
    let notable: Vec<&Json> = records
        .iter()
        .filter(|r| r.get(&["trigger"]).and_then(Json::as_str).is_some())
        .chain(records.iter().filter(|r| r.get(&["trigger"]).and_then(Json::as_str).is_none()))
        .take(6)
        .collect();
    for record in notable {
        out.push_str(&format!(
            "  #{:<6} {:<24} {:<8} {:>10}  {}\n",
            num(record, &["seq"]),
            record.get(&["name"]).and_then(Json::as_str).unwrap_or("?"),
            record.get(&["verdict"]).and_then(Json::as_str).unwrap_or("?"),
            format_us(num(record, &["latency_us"])),
            record.get(&["trigger"]).and_then(Json::as_str).unwrap_or("-"),
        ));
    }
    out
}

/// The refresh loop behind `lakeroad top`: fetch, clear, render, sleep — or a
/// single fetch-and-print with `once`.
///
/// # Errors
/// Propagates the *first* fetch failure; after one good snapshot a transient
/// failure is rendered as a status line and retried, so a daemon restart does
/// not kill the dashboard.
pub fn run(addr: &str, interval: Duration, once: bool) -> io::Result<()> {
    let mut had_snapshot = false;
    loop {
        match fetch(addr) {
            Ok(snap) => {
                had_snapshot = true;
                let body = render(&snap);
                if once {
                    print!("{body}");
                    return Ok(());
                }
                // Clear screen + home, then the frame; plain ANSI, no TUI dep.
                print!("\x1b[2J\x1b[H{body}");
                use std::io::Write as _;
                let _ = io::stdout().flush();
            }
            Err(e) if once || !had_snapshot => return Err(e),
            Err(e) => {
                println!("\x1b[2J\x1b[H(daemon unreachable: {e}; retrying)");
            }
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> Json {
        Json::parse(
            r#"{"kind":"stats","uptime_ms":5000,"workers":2,"queue_depth":3,"draining":false,
            "requests":{"accepted":10,"completed":8,"rejected":1},
            "cache":{"served":4},
            "verdicts":{"success":6,"unsat":1,"timeout":1,"error":0,"deadline_expired":0},
            "rates":{"completed":{"per_sec_1s":2.0,"per_sec_10s":0.8,"per_sec_60s":0.13},
                     "rejected":{"per_sec_1s":0,"per_sec_10s":0.1,"per_sec_60s":0},
                     "latency_us_10s":{"p50":1500,"p99":250000}},
            "latency":{"request_us":{"p50":2000,"p99":300000},"queue_wait_us":{"p99":500}},
            "trace":{"enabled":true,"spans_dropped":0},
            "forensics":{"active":true,"bundles_written":2,"retained":8}}"#,
        )
        .unwrap()
    }

    #[test]
    fn render_reports_rates_warm_share_and_latency() {
        let snap = TopSnapshot { stats: sample_stats(), trace: None, forensics: None };
        let body = render(&snap);
        assert!(body.contains("2 workers"), "{body}");
        assert!(body.contains("queue depth 3"), "{body}");
        assert!(body.contains("0.80/s (10s)"), "{body}");
        assert!(body.contains("warm-hit 50.0%"), "{body}");
        assert!(body.contains("p50 1.5ms"), "{body}");
        assert!(body.contains("p99 250.0ms"), "{body}");
        assert!(body.contains("2 bundles written"), "{body}");
    }

    #[test]
    fn stage_split_aggregates_and_flags_truncation() {
        let trace = Json::parse(
            r#"{"kind":"trace","enabled":true,"truncated":5,"trace":{"traceEvents":[
                {"name":"daemon-request","dur":1000.0},
                {"name":"cegis","dur":700.0},
                {"name":"cegis","dur":100.0},
                {"name":"sat-check","dur":600.0}]}}"#,
        )
        .unwrap();
        let body = stage_split(&trace);
        assert!(body.contains("daemon-request"), "{body}");
        assert!(body.contains("cegis"), "{body}");
        let cegis_at = body.find("cegis").unwrap();
        let sat_at = body.find("sat-check").unwrap();
        assert!(cegis_at < sat_at, "sorted by inclusive time: {body}");
        assert!(body.contains("80.0%"), "cegis share of daemon-request total: {body}");
        assert!(body.contains("+5 buffered events truncated"), "{body}");
    }

    #[test]
    fn recent_records_lead_with_triggered_requests() {
        let forensics = Json::parse(
            r#"{"kind":"forensics","bundles_written":1,"bundle_errors":0,"records":[
                {"seq":9,"name":"ok-job","verdict":"success","latency_us":100,"trigger":null},
                {"seq":7,"name":"bad-job","verdict":"unsat","latency_us":90000,"trigger":"unsat"}]}"#,
        )
        .unwrap();
        let body = recent_records(&forensics);
        let bad_at = body.find("bad-job").unwrap();
        let ok_at = body.find("ok-job").unwrap();
        assert!(bad_at < ok_at, "triggered records first: {body}");
        assert!(body.contains("unsat"), "{body}");
    }

    #[test]
    fn microsecond_formatting_picks_the_readable_unit() {
        assert_eq!(format_us(750.0), "750µs");
        assert_eq!(format_us(1_500.0), "1.5ms");
        assert_eq!(format_us(2_500_000.0), "2.50s");
    }
}
