//! Cone-partitioned netlist mapping: the structural-frontend counterpart of
//! the behavioral batch engine.
//!
//! A structural netlist (AIGER or `.bench`, parsed by `lr_aig`) can be far too
//! large to pose to the synthesizer as one spec — the paper's sketches target
//! *small* behavioral fragments, not thousand-gate netlists. [`map_netlist`]
//! instead:
//!
//! 1. cuts the AIG into single-output cones of at most `lut_size` leaves
//!    ([`lr_aig::partition`]), so every cone is a one-LUT problem the Bitwise
//!    sketch solves deterministically;
//! 2. fans the cones out as jobs on the work-stealing scheduler
//!    ([`run_batch_streaming`]), prioritized by cone size so the fattest
//!    cones start first, sharing one content-addressed [`SynthCache`] so
//!    isomorphic cones (identical canonical `x0..xK` specs) collapse into a
//!    single synthesis;
//! 3. stitches the per-cone implementations back into one mapped design
//!    ([`lr_aig::stitch`]) and verifies it against the original AIG on seeded
//!    random stimulus ([`lr_aig::verify_stitched`]).
//!
//! The `lakeroad map-netlist <file>` subcommand is a thin CLI over this
//! module; batch manifests and the daemon reach the same AIG frontend through
//! `lakeroad::DesignSource`, posing the whole netlist as one spec.
//!
//! [`SynthCache`]: crate::SynthCache

use std::time::{Duration, Instant};

use lakeroad::{count_resources, MapConfig, MapOutcome, Resources, Template};
use lr_aig::{partition, stitch, verify_stitched, Aig, ConeOptions, Partition, VerifyReport};
use lr_arch::{ArchName, Architecture};
use lr_ir::Prog;

use crate::scheduler::{
    run_batch_streaming, BatchJob, BatchOptions, JobRecord, JobResult, TemplateChoice,
};

/// Configuration for one cone-partitioned netlist mapping.
#[derive(Clone)]
pub struct NetlistOptions {
    /// Target architecture; its LUT size bounds every cone's leaf count.
    pub arch_name: ArchName,
    /// Worker threads for the cone batch.
    pub workers: usize,
    /// Base mapping configuration; install a shared [`crate::SynthCache`] on
    /// [`MapConfig::cache`] so isomorphic cones collapse.
    pub map: MapConfig,
    /// Maximum AND gates per cone (leaf bounds come from the architecture).
    pub max_cone_ands: usize,
    /// Independent random environments for post-stitch verification.
    pub verify_environments: usize,
    /// Clock cycles replayed per verification environment.
    pub verify_cycles: usize,
    /// Stimulus seed for verification.
    pub verify_seed: u64,
}

impl NetlistOptions {
    /// Defaults: one worker, the stock [`MapConfig`], 32-gate cones, and a
    /// 32-environment × 8-cycle verification sweep.
    pub fn new(arch_name: ArchName) -> NetlistOptions {
        NetlistOptions {
            arch_name,
            workers: 1,
            map: MapConfig::default(),
            max_cone_ands: 32,
            verify_environments: 32,
            verify_cycles: 8,
            verify_seed: 0x1a4e_715d,
        }
    }
}

/// What one netlist mapping did, end to end.
#[derive(Debug, Clone)]
pub struct NetlistReport {
    /// The netlist's name.
    pub name: String,
    /// AND gates in the source AIG.
    pub total_ands: usize,
    /// Latches in the source AIG.
    pub latches: usize,
    /// Cones the partitioner cut (one synthesis job each).
    pub cones: usize,
    /// AND gates covered across all cone bodies (clones counted per cone).
    pub covered_ands: usize,
    /// Largest leaf count over all cones (≤ the architecture's LUT size).
    pub max_leaves: usize,
    /// Cone jobs served from the synthesis cache rather than synthesized —
    /// isomorphic-cone collapse plus cross-run warmth.
    pub cache_hits: usize,
    /// Resources of the stitched implementation.
    pub resources: Resources,
    /// The post-stitch verification sweep. [`VerifyReport::passed`] must hold
    /// for the mapping to be trusted.
    pub verify: VerifyReport,
    /// The stitched structural implementation.
    pub implementation: Prog,
    /// Structural Verilog for the stitched implementation.
    pub verilog: String,
    /// Wall-clock time of the whole pipeline (partition + map + stitch +
    /// verify).
    pub elapsed: Duration,
}

impl NetlistReport {
    /// A human-readable summary block.
    pub fn render(&self) -> String {
        format!(
            "-- netlist mapping: {} --\n\
             \x20 source            : {} ANDs, {} latches\n\
             \x20 cones             : {} (covering {} ANDs, widest {} leaves)\n\
             \x20 cache hits        : {} of {} cone jobs\n\
             \x20 implementation    : {} LEs, {} register bits\n\
             \x20 verification      : {} environments x {} cycles, {} mismatches\n\
             \x20 elapsed           : {:.2?}\n",
            self.name,
            self.total_ands,
            self.latches,
            self.cones,
            self.covered_ands,
            self.max_leaves,
            self.cache_hits,
            self.cones,
            self.resources.logic_elements,
            self.resources.registers,
            self.verify.environments,
            self.verify.cycles,
            self.verify.mismatches,
            self.elapsed,
        )
    }
}

/// Builds the cone batch for `aig`: one Bitwise-template job per cone, named
/// `<netlist>::cone_v<root>`, prioritized by cone size so the largest cones
/// are dealt first.
pub fn cone_jobs(aig: &Aig, part: &Partition, arch: &Architecture) -> Vec<BatchJob> {
    part.cones
        .iter()
        .map(|cone| {
            let mut job = BatchJob::new(
                format!("{}::cone_v{}", aig.name(), cone.root),
                cone.spec.clone(),
                arch.clone(),
                TemplateChoice::Named(Template::Bitwise),
            );
            job.priority = cone.num_ands.min(255) as u8;
            job
        })
        .collect()
}

/// Maps a structural netlist end to end: partition into cones, synthesize
/// every cone on the work-stealing scheduler, stitch, verify.
///
/// `on_cone` observes each cone job's [`JobRecord`] as it is delivered (in
/// submission order), exactly like [`run_batch_streaming`]'s callback; pass
/// `|_| {}` to ignore.
///
/// # Errors
/// Returns a message naming the failing cone if any cone does not map
/// (UNSAT/timeout/error — with leaf counts bounded by the LUT size this means
/// a too-small budget), and a mismatch summary if the stitched design
/// disagrees with the AIG on any verification bit.
pub fn map_netlist(
    aig: &Aig,
    options: &NetlistOptions,
    on_cone: impl Fn(&JobRecord) + Sync,
) -> Result<NetlistReport, String> {
    if aig.outputs().is_empty() {
        return Err("netlist has no outputs to map".to_string());
    }
    let start = Instant::now();
    let arch = Architecture::load(options.arch_name);
    let cone_opts =
        ConeOptions { max_leaves: arch.lut_size() as usize, max_ands: options.max_cone_ands };
    let part = {
        let mut sp = lr_trace::span("cone-partition");
        let part = partition(aig, &cone_opts);
        sp.attr("cones", part.cones.len() as u64);
        sp.attr("covered_ands", part.covered_ands as u64);
        part
    };

    let jobs = cone_jobs(aig, &part, &arch);
    let batch_opts = BatchOptions::new(options.workers, options.map.clone());
    let run = {
        let _sp = lr_trace::span("cone-map");
        run_batch_streaming(&jobs, &batch_opts, on_cone)
    };

    let mut impls = Vec::with_capacity(run.records.len());
    let mut cache_hits = 0;
    for record in &run.records {
        match &record.result {
            JobResult::Finished(MapOutcome::Success(mapped)) => {
                if mapped.from_cache {
                    cache_hits += 1;
                }
                impls.push(mapped.implementation.clone());
            }
            JobResult::Finished(outcome) => {
                let verdict = if outcome.is_unsat() { "UNSAT" } else { "timeout" };
                return Err(format!("cone `{}` did not map: {verdict}", record.name));
            }
            JobResult::Error(e) => {
                return Err(format!("cone `{}` did not map: {e}", record.name));
            }
            JobResult::DeadlineExpired | JobResult::Cancelled => {
                return Err(format!("cone `{}` did not run", record.name));
            }
        }
    }

    let implementation = {
        let _sp = lr_trace::span("cone-stitch");
        stitch(aig, &part, &impls)
    };
    let verify = {
        let _sp = lr_trace::span("cone-verify");
        verify_stitched(
            aig,
            &implementation,
            options.verify_seed,
            options.verify_environments,
            options.verify_cycles,
        )?
    };
    if !verify.passed() {
        return Err(format!(
            "stitched design disagrees with the netlist: {} mismatched bits over {} environments x {} cycles",
            verify.mismatches, verify.environments, verify.cycles
        ));
    }

    let verilog = lr_hdl::emit_verilog(&implementation);
    Ok(NetlistReport {
        name: aig.name().to_string(),
        total_ands: aig.num_ands(),
        latches: aig.num_latches(),
        cones: part.cones.len(),
        covered_ands: part.covered_ands,
        max_leaves: part.max_leaves_used(),
        cache_hits,
        resources: count_resources(&implementation),
        verify,
        implementation,
        verilog,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use lr_aig::{random_aig, GenConfig};

    use super::*;
    use crate::SynthCache;

    fn options_with_cache(workers: usize) -> (NetlistOptions, Arc<SynthCache>) {
        let cache = Arc::new(SynthCache::new());
        let mut options = NetlistOptions::new(ArchName::IntelCyclone10Lp);
        options.workers = workers;
        options.map = MapConfig::default().with_cache(Arc::<SynthCache>::clone(&cache) as Arc<_>);
        (options, cache)
    }

    /// The cone-stitching integration test: a random sequential AIG maps end
    /// to end through real synthesis, and the stitched implementation agrees
    /// with the source on 32 random environments.
    #[test]
    fn random_netlists_map_and_verify() {
        let aig = random_aig(0xA15, &GenConfig { inputs: 6, latches: 3, ands: 60, outputs: 5 });
        let (mut options, cache) = options_with_cache(2);
        options.verify_environments = 32;
        let report = map_netlist(&aig, &options, |_| {}).expect("netlist maps");
        assert!(report.cones > 0);
        assert!(report.verify.passed());
        assert_eq!(report.verify.environments, 32);
        assert!(report.max_leaves <= 4, "cones wider than the LUT: {}", report.max_leaves);
        assert_eq!(report.resources.registers, aig.num_latches());
        assert!(report.verilog.contains("module"));
        // Isomorphic-cone collapse: a 60-AND netlist cut into <=4-leaf cones
        // repeats structures, so the shared cache must have been hit.
        assert!(cache.len() <= report.cones);

        // A second run over the warm cache serves every cone from it.
        let warm = map_netlist(&aig, &options, |_| {}).expect("warm run maps");
        assert_eq!(warm.cache_hits, warm.cones);
    }

    /// Cones are prioritized by size: the fattest cone carries the highest
    /// priority in the dealt batch.
    #[test]
    fn cone_jobs_prioritize_fat_cones() {
        let aig = random_aig(7, &GenConfig { inputs: 5, latches: 0, ands: 40, outputs: 3 });
        let arch = Architecture::load(ArchName::IntelCyclone10Lp);
        let part = partition(&aig, &ConeOptions { max_leaves: 4, max_ands: 8 });
        let jobs = cone_jobs(&aig, &part, &arch);
        assert_eq!(jobs.len(), part.cones.len());
        for (job, cone) in jobs.iter().zip(&part.cones) {
            assert_eq!(job.priority as usize, cone.num_ands.min(255));
            assert!(matches!(job.template, TemplateChoice::Named(Template::Bitwise)));
            assert!(job.name.contains("cone_v"));
        }
    }

    #[test]
    fn netlists_without_outputs_are_rejected() {
        let text = "aag 1 1 0 0 0\n2\n";
        let aig = lr_aig::parse_aag(text).unwrap();
        let (options, _) = options_with_cache(1);
        let err = map_netlist(&aig, &options, |_| {}).unwrap_err();
        assert!(err.contains("no outputs"), "{err}");
    }

    /// An impossible budget surfaces as a per-cone error naming the cone, not
    /// a panic or a silently wrong stitch.
    #[test]
    fn cone_failures_name_the_cone() {
        let aig = random_aig(3, &GenConfig { inputs: 5, latches: 0, ands: 30, outputs: 3 });
        let mut options = NetlistOptions::new(ArchName::IntelCyclone10Lp);
        options.map = MapConfig::default().with_timeout(Duration::from_nanos(1));
        let err = map_netlist(&aig, &options, |_| {}).unwrap_err();
        assert!(err.contains("cone `"), "{err}");
    }
}
