//! The daemon wire protocol: length-prefixed JSON frames.
//!
//! Every message — either direction — is one frame: a 4-byte big-endian
//! payload length followed by that many bytes of UTF-8 JSON. Length prefixes
//! make framing independent of payload content (Verilog source may contain
//! anything), and let a reader reject oversized frames *before* allocating.
//!
//! Requests are objects with a `kind` and an optional `id` of any JSON shape,
//! which the daemon echoes verbatim on the response so clients can pipeline:
//!
//! ```text
//! {"kind": "ping", "id": 7}
//! {"kind": "map", "arch": "xilinx", "template": "dsp", "bench": "mul_w8_s0"}
//! {"kind": "map", "arch": "lattice", "verilog": "module m(...); ... endmodule",
//!  "priority": 3, "timeout_s": 20, "deadline_s": 60, "name": "hot-path"}
//! {"kind": "stats"}
//! {"kind": "trace"}
//! {"kind": "metrics"}
//! {"kind": "forensics"}
//! {"kind": "forensics", "id": 7}
//! {"kind": "shutdown"}
//! ```
//!
//! A `map` request names its design as exactly one of `bench` (a §5.1
//! microbenchmark of the chosen architecture), inline `verilog` source, or
//! inline `netlist` text (ASCII AIGER or `.bench`, format-sniffed, mapped as
//! one whole-design job). Responses carry
//! `kind: "pong" | "mapped" | "stats" | "trace" | "metrics" | "forensics" |
//! "shutting_down" | "rejected" | "error"`; a malformed request earns an
//! `error` response but does **not** close the connection — only an
//! unframeable byte stream does.
//!
//! **`metrics`** answers with `{"kind":"metrics", "content_type":
//! "application/openmetrics-text; version=1.0.0", "text": "..."}` where
//! `text` is the whole observable surface — the `lr_trace` registry plus the
//! daemon's own counters, rates, and latency histograms (as cumulative
//! `_bucket`/`_sum`/`_count` series) — in OpenMetrics text format, terminated
//! by `# EOF`. Any Prometheus-compatible scraper (or `lakeroad top`) can
//! consume it without knowing this protocol's JSON shapes.
//!
//! **`forensics`** drives the flight recorder. Without an `id` it answers
//! `{"kind":"forensics", "records": [...], "bundles": [...],
//! "bundles_written": N, "bundle_errors": N, "dir": ...}` — newest-first
//! record headers for the retained ring and the bundle files on disk. With an
//! `id` it looks up the newest retained record whose `map` request carried
//! that correlation id and answers `{"kind":"forensics", "record": {...}}`
//! with the full record, span tree included (an unknown id is an `error`
//! response). The `id` doubles as the correlation id, so the response echoes
//! it back like any other.

use std::io::{self, Read, Write};
use std::time::Duration;

use lakeroad::{DesignSource, MapOutcome};
use lr_arch::Architecture;

use crate::batch::{parse_arch_name, parse_template};
use crate::json::Json;
use crate::scheduler::{BatchJob, JobResult};

/// Upper bound on one frame's payload, checked before allocation. Generous
/// for inline Verilog; far below anything that could wedge the daemon.
pub const MAX_FRAME: usize = 4 << 20;

/// Writes one frame: big-endian length, then the UTF-8 payload, then a flush.
///
/// # Errors
/// `InvalidData` if the payload exceeds [`MAX_FRAME`]; otherwise I/O errors
/// from the underlying writer.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds the {MAX_FRAME}-byte bound", bytes.len()),
        ));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end of stream (EOF exactly at a
/// frame boundary); EOF mid-frame is `UnexpectedEof`.
///
/// # Errors
/// `InvalidData` for a length above [`MAX_FRAME`] (checked before any payload
/// allocation) or a non-UTF-8 payload; otherwise I/O errors from the reader.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(None)
            } else {
                Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF inside a frame header"))
            };
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header declares {len} bytes, above the {MAX_FRAME}-byte bound"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame payload is not UTF-8"))
}

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// One mapping job.
    Map(Box<BatchJob>),
    /// Daemon statistics.
    Stats,
    /// The recent span buffer as a Chrome trace-event document.
    Trace,
    /// The whole metrics surface in OpenMetrics text format.
    Metrics,
    /// The flight recorder: list retained records and bundles, or (when the
    /// request's `id` names a recorded `map` request) fetch one full record.
    Forensics,
    /// Begin a graceful drain: finish queued work, then stop.
    Shutdown,
}

/// Parses a request frame. The `id`, when present, is returned even for
/// requests that fail to parse past the envelope, so the error response can
/// still be correlated.
pub fn parse_request(text: &str) -> (Option<Json>, Result<Request, String>) {
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return (None, Err(format!("malformed JSON: {e}"))),
    };
    let id = doc.get(&["id"]).cloned();
    (id, parse_request_doc(&doc))
}

fn parse_request_doc(doc: &Json) -> Result<Request, String> {
    let kind = doc
        .get(&["kind"])
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a string `kind`".to_string())?;
    match kind {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "trace" => Ok(Request::Trace),
        "metrics" => Ok(Request::Metrics),
        "forensics" => Ok(Request::Forensics),
        "shutdown" => Ok(Request::Shutdown),
        "map" => parse_map_request(doc).map(|job| Request::Map(Box::new(job))),
        other => Err(format!("unknown request kind `{other}`")),
    }
}

fn parse_map_request(doc: &Json) -> Result<BatchJob, String> {
    let arch_field = doc
        .get(&["arch"])
        .and_then(Json::as_str)
        .ok_or_else(|| "map request needs a string `arch`".to_string())?;
    let arch_name = parse_arch_name(arch_field)
        .ok_or_else(|| format!("unknown architecture `{arch_field}`"))?;
    let template_field = doc.get(&["template"]).and_then(Json::as_str).unwrap_or("auto");
    let template = parse_template(template_field)
        .ok_or_else(|| format!("unknown template `{template_field}`"))?;

    let bench = doc.get(&["bench"]).and_then(Json::as_str);
    let verilog = doc.get(&["verilog"]).and_then(Json::as_str);
    let netlist = doc.get(&["netlist"]).and_then(Json::as_str);
    // The wire format stays compatible: `bench` and `verilog` requests parse
    // exactly as before; `netlist` carries inline AIGER/.bench text.
    let source = match (bench, verilog, netlist) {
        (Some(name), None, None) => DesignSource::Bench(name.to_string()),
        (None, Some(text), None) => {
            DesignSource::VerilogInline { name: "verilog".to_string(), text: text.to_string() }
        }
        (None, None, Some(text)) => {
            DesignSource::NetlistInline { name: "netlist".to_string(), text: text.to_string() }
        }
        _ => {
            return Err(
                "map request needs exactly one of `bench`, `verilog`, or `netlist`".to_string()
            )
        }
    };
    let spec = source.resolve(arch_name)?;
    let default_name = match &source {
        DesignSource::Bench(_) => source.label(),
        _ => spec.name().to_string(),
    };

    let mut job = BatchJob::new(default_name, spec, Architecture::load(arch_name), template);
    if let Some(name) = doc.get(&["name"]).and_then(Json::as_str) {
        job.name = name.to_string();
    }
    if let Some(priority) = doc.get(&["priority"]) {
        let p = priority.as_f64().filter(|p| p.fract() == 0.0 && (0.0..=255.0).contains(p));
        job.priority = p.ok_or_else(|| "`priority` must be an integer in 0-255".to_string())? as u8;
    }
    job.timeout = parse_seconds(doc, "timeout_s")?;
    // Over the wire a deadline is relative to *submission*; the daemon measures
    // the job's queue age against it.
    job.deadline = parse_seconds(doc, "deadline_s")?;
    Ok(job)
}

fn parse_seconds(doc: &Json, field: &str) -> Result<Option<Duration>, String> {
    match doc.get(&[field]) {
        None | Some(Json::Null) => Ok(None),
        // `try_from_secs_f64`, not `from_secs_f64`: the latter panics on finite
        // values that overflow `Duration` (e.g. 1e20), and a panic here unwinds
        // the handler thread and drops the connection instead of answering with
        // the documented error.
        Some(v) => v
            .as_f64()
            .filter(|s| s.is_finite() && *s >= 0.0)
            .and_then(|s| Duration::try_from_secs_f64(s).ok())
            .map(Some)
            .ok_or_else(|| format!("`{field}` must be a non-negative number of seconds")),
    }
}

fn finish(mut doc: Json, id: Option<&Json>) -> String {
    if let (Json::Obj(map), Some(id)) = (&mut doc, id) {
        map.insert("id".to_string(), id.clone());
    }
    doc.render()
}

/// The `pong` response to a ping.
pub fn pong_response(id: Option<&Json>) -> String {
    finish(Json::obj([("kind", Json::str("pong"))]), id)
}

/// An `error` response; the connection stays open.
pub fn error_response(id: Option<&Json>, message: &str) -> String {
    finish(Json::obj([("kind", Json::str("error")), ("error", Json::str(message))]), id)
}

/// A `rejected` response: the client's admission queue is full. The job was
/// never accepted, so it counts as rejected, not lost.
pub fn rejected_response(id: Option<&Json>, pending: usize, limit: usize) -> String {
    finish(
        Json::obj([
            ("kind", Json::str("rejected")),
            ("pending", Json::num(pending as f64)),
            ("limit", Json::num(limit as f64)),
        ]),
        id,
    )
}

/// Most recent spans a `trace` response returns. The span sink holds far more,
/// but a response frame must stay below [`MAX_FRAME`]; at a conservative ~250
/// rendered bytes per event this cap keeps the worst case near half the bound.
pub const TRACE_RESPONSE_EVENTS: usize = 8192;

/// The `trace` response: the most recent spans of the daemon's trace buffer as
/// a Chrome trace-event document (see [`crate::tracefmt`]). `enabled` tells
/// the client whether the daemon is recording at all, `dropped` how many
/// events the bounded sink has discarded since startup, and `truncated` how
/// many *buffered* events this response had to leave out to respect the
/// frame bound — previously that truncation was silent.
pub fn trace_response(id: Option<&Json>) -> String {
    let mut events = lr_trace::snapshot_events();
    let total = events.len();
    if total > TRACE_RESPONSE_EVENTS {
        events.drain(..total - TRACE_RESPONSE_EVENTS);
    }
    finish(
        Json::obj([
            ("kind", Json::str("trace")),
            ("enabled", Json::Bool(lr_trace::enabled())),
            ("returned", Json::num(events.len() as f64)),
            ("buffered", Json::num(total as f64)),
            ("truncated", Json::num((total - events.len()) as f64)),
            ("dropped", Json::num(lr_trace::dropped_events() as f64)),
            ("trace", crate::tracefmt::chrome_trace(&events)),
        ]),
        id,
    )
}

/// The `shutting_down` acknowledgement of a shutdown request.
pub fn shutdown_response(id: Option<&Json>) -> String {
    finish(Json::obj([("kind", Json::str("shutting_down"))]), id)
}

/// The `mapped` response carrying one job's verdict.
pub fn map_response(
    id: Option<&Json>,
    name: &str,
    result: &JobResult,
    elapsed: Duration,
) -> String {
    let mut fields = vec![
        ("kind", Json::str("mapped")),
        ("name", Json::str(name)),
        ("elapsed_ms", Json::num(elapsed.as_secs_f64() * 1e3)),
    ];
    match result {
        JobResult::Finished(outcome) => {
            fields.push(("from_cache", Json::Bool(outcome.served_from_cache())));
            match outcome {
                MapOutcome::Success(mapped) => {
                    fields.push(("verdict", Json::str("success")));
                    fields.push((
                        "resources",
                        Json::obj([
                            ("dsps", Json::num(mapped.resources.dsps as f64)),
                            ("logic_elements", Json::num(mapped.resources.logic_elements as f64)),
                            ("registers", Json::num(mapped.resources.registers as f64)),
                        ]),
                    ));
                    fields.push((
                        "solver",
                        mapped.winning_solver.as_deref().map_or(Json::Null, Json::str),
                    ));
                    fields.push(("iterations", Json::num(mapped.iterations as f64)));
                    fields.push(("verilog", Json::str(&mapped.verilog)));
                }
                MapOutcome::Unsat { winning_solver, .. } => {
                    fields.push(("verdict", Json::str("unsat")));
                    fields
                        .push(("solver", winning_solver.as_deref().map_or(Json::Null, Json::str)));
                }
                MapOutcome::Timeout { .. } => fields.push(("verdict", Json::str("timeout"))),
            }
        }
        JobResult::Error(message) => {
            fields.push(("verdict", Json::str("error")));
            fields.push(("error", Json::str(message)));
        }
        JobResult::DeadlineExpired => fields.push(("verdict", Json::str("deadline_expired"))),
        JobResult::Cancelled => fields.push(("verdict", Json::str("cancelled"))),
    }
    finish(Json::obj(fields), id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::TemplateChoice;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "{\"kind\":\"ping\"}").unwrap();
        write_frame(&mut wire, "second").unwrap();
        let mut reader = wire.as_slice();
        assert_eq!(read_frame(&mut reader).unwrap().as_deref(), Some("{\"kind\":\"ping\"}"));
        assert_eq!(read_frame(&mut reader).unwrap().as_deref(), Some("second"));
        assert_eq!(read_frame(&mut reader).unwrap(), None, "clean EOF at a frame boundary");
    }

    #[test]
    fn torn_frames_and_oversize_headers_are_errors() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "payload").unwrap();
        let torn = &wire[..wire.len() - 2];
        let err = read_frame(&mut &torn[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let torn_header = &wire[..2];
        let err = read_frame(&mut &torn_header[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // An oversize header is rejected from the 4 length bytes alone — no
        // payload needs to exist, and none is allocated.
        let huge = (MAX_FRAME as u32 + 1).to_be_bytes();
        let err = read_frame(&mut &huge[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut out = Vec::new();
        let long = "x".repeat(MAX_FRAME + 1);
        assert_eq!(write_frame(&mut out, &long).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn map_requests_parse_benches_verilog_and_options() {
        let (id, req) = parse_request(
            "{\"kind\":\"map\",\"id\":7,\"arch\":\"intel\",\"template\":\"dsp\",\
             \"bench\":\"mul_w8_s0\",\"priority\":3,\"timeout_s\":20,\"deadline_s\":60.5,\
             \"name\":\"hot\"}",
        );
        assert_eq!(id, Some(Json::num(7)));
        let Ok(Request::Map(job)) = req else { panic!("{req:?}") };
        assert_eq!(job.name, "hot");
        assert_eq!(job.priority, 3);
        assert_eq!(job.timeout, Some(Duration::from_secs(20)));
        assert_eq!(job.deadline, Some(Duration::from_secs_f64(60.5)));
        assert!(matches!(job.template, TemplateChoice::Named(lakeroad::Template::Dsp)));

        let verilog = "module m(input [3:0] a, b, output [3:0] o); assign o = a & b; endmodule";
        let (_, req) = parse_request(&format!(
            "{{\"kind\":\"map\",\"arch\":\"sofa\",\"verilog\":{}}}",
            Json::str(verilog).render()
        ));
        let Ok(Request::Map(job)) = req else { panic!("{req:?}") };
        assert_eq!(job.name, "m");
        assert!(matches!(job.template, TemplateChoice::Auto), "template defaults to auto");
    }

    #[test]
    fn malformed_requests_keep_their_id_where_possible() {
        for (text, needle, has_id) in [
            ("{\"kind\":\"ping\"", "malformed JSON", false),
            ("{\"id\":1}", "needs a string `kind`", true),
            ("{\"kind\":\"frobnicate\",\"id\":1}", "unknown request kind", true),
            ("{\"kind\":\"map\",\"id\":1}", "needs a string `arch`", true),
            ("{\"kind\":\"map\",\"id\":1,\"arch\":\"pdp11\"}", "unknown architecture", true),
            (
                "{\"kind\":\"map\",\"id\":1,\"arch\":\"intel\"}",
                "exactly one of `bench`, `verilog`, or `netlist`",
                true,
            ),
            (
                "{\"kind\":\"map\",\"id\":1,\"arch\":\"intel\",\"bench\":\"nope\"}",
                "no microbenchmark",
                true,
            ),
            (
                "{\"kind\":\"map\",\"id\":1,\"arch\":\"intel\",\"bench\":\"mul_w8_s0\",\
                 \"priority\":999}",
                "0-255",
                true,
            ),
            (
                "{\"kind\":\"map\",\"id\":1,\"arch\":\"intel\",\"bench\":\"mul_w8_s0\",\
                 \"timeout_s\":-1}",
                "non-negative",
                true,
            ),
            // Regression: finite but Duration-overflowing values used to panic
            // in `Duration::from_secs_f64`, killing the handler thread.
            (
                "{\"kind\":\"map\",\"id\":1,\"arch\":\"intel\",\"bench\":\"mul_w8_s0\",\
                 \"timeout_s\":1e20}",
                "non-negative",
                true,
            ),
            (
                "{\"kind\":\"map\",\"id\":1,\"arch\":\"intel\",\"bench\":\"mul_w8_s0\",\
                 \"deadline_s\":1e300}",
                "non-negative",
                true,
            ),
        ] {
            let (id, req) = parse_request(text);
            let err = req.expect_err(text);
            assert!(err.contains(needle), "{text}: {err}");
            assert_eq!(id.is_some(), has_id, "{text}");
        }
    }

    #[test]
    fn responses_echo_the_request_id() {
        let id = Json::str("req-9");
        let doc = Json::parse(&pong_response(Some(&id))).unwrap();
        assert_eq!(doc.get(&["id"]).and_then(Json::as_str), Some("req-9"));
        assert_eq!(doc.get(&["kind"]).and_then(Json::as_str), Some("pong"));

        let doc = Json::parse(&error_response(None, "nope")).unwrap();
        assert!(doc.get(&["id"]).is_none());
        assert_eq!(doc.get(&["error"]).and_then(Json::as_str), Some("nope"));

        let doc = Json::parse(&rejected_response(Some(&id), 8, 8)).unwrap();
        assert_eq!(doc.get(&["kind"]).and_then(Json::as_str), Some("rejected"));
        assert_eq!(doc.get(&["pending"]).and_then(Json::as_f64), Some(8.0));
    }

    #[test]
    fn map_responses_carry_the_verdict() {
        let doc = Json::parse(&map_response(
            None,
            "j1",
            &JobResult::Error("bad sketch".into()),
            Duration::from_millis(12),
        ))
        .unwrap();
        assert_eq!(doc.get(&["verdict"]).and_then(Json::as_str), Some("error"));
        assert_eq!(doc.get(&["error"]).and_then(Json::as_str), Some("bad sketch"));
        assert_eq!(doc.get(&["elapsed_ms"]).and_then(Json::as_f64), Some(12.0));

        let doc =
            Json::parse(&map_response(None, "j2", &JobResult::DeadlineExpired, Duration::ZERO))
                .unwrap();
        assert_eq!(doc.get(&["verdict"]).and_then(Json::as_str), Some("deadline_expired"));
    }
}
