//! Synthetic batch scenarios: deterministic workload generators for the batch
//! engine's tests and benchmarks.
//!
//! Two sources of jobs:
//!
//! * [`suite_jobs`] — the paper's §5.1 microbenchmarks (via
//!   `lakeroad::suite`), the *mappable* population a production queue would
//!   mostly carry.
//! * [`synthetic_jobs`] — random well-formed ℒlr programs from the same
//!   straight-line generator idea the `Prog::simplified` property suite uses,
//!   realized here as a seeded, dependency-free generator so batches are
//!   reproducible from a single `u64`. Random programs are overwhelmingly *not*
//!   single-DSP-mappable, which makes them the deadline/timeout population —
//!   exactly the traffic a serving scheduler must overlap rather than serialize.

use std::time::Duration;

use lakeroad::suite::suite_for;
use lakeroad::Template;
use lr_arch::{ArchName, Architecture};
use lr_ir::{BvOp, Prog, ProgBuilder};

use crate::scheduler::{BatchJob, TemplateChoice};

/// A tiny deterministic RNG (xorshift64*). Not statistically fancy — batches
/// only need diversity and reproducibility.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds the generator; a zero seed is remapped (xorshift's absorbing state).
    pub fn new(seed: u64) -> Rng {
        Rng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut s = self.state;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.state = s;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value in `0..bound` (`bound` must be non-zero).
    ///
    /// Uses Lemire's widening-multiply reduction rather than `% bound`: the
    /// modulo mapping over-weights the low residues whenever `2^64` is not a
    /// multiple of `bound`. The streams stay fully deterministic in the seed —
    /// they just land on different (now uniformly distributed) values.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Width of every generated program (the narrow end of the paper's sweep keeps
/// the solver work small enough for batch-scale experiments).
pub const GEN_WIDTH: u32 = 8;

/// Generates a random *well-formed by construction* behavioral program over
/// inputs `a`, `b`, `c`: a straight line of operators over earlier nodes, with
/// occasional registers and comparisons feeding muxes. Deterministic in `seed`.
pub fn random_program(seed: u64, name: &str, instructions: usize) -> Prog {
    let mut rng = Rng::new(seed);
    let mut b = ProgBuilder::new(name);
    let mut wide: Vec<lr_ir::NodeId> = Vec::new();
    let mut one_bit: Vec<lr_ir::NodeId> = Vec::new();
    for input in ["a", "b", "c"] {
        wide.push(b.input(input, GEN_WIDTH));
    }
    for _ in 0..instructions.max(1) {
        let pick =
            |rng: &mut Rng, nodes: &[lr_ir::NodeId]| nodes[rng.below(nodes.len() as u64) as usize];
        match rng.below(10) {
            0 => {
                let v = rng.below(1 << GEN_WIDTH);
                wide.push(b.constant_u64(v, GEN_WIDTH));
            }
            1 => {
                let x = pick(&mut rng, &wide);
                let op = if rng.below(2) == 0 { BvOp::Not } else { BvOp::Neg };
                wide.push(b.op1(op, x));
            }
            2 => {
                let x = pick(&mut rng, &wide);
                wide.push(b.reg(x, GEN_WIDTH));
            }
            3 => {
                let x = pick(&mut rng, &wide);
                let y = pick(&mut rng, &wide);
                one_bit.push(b.op2(BvOp::Ult, x, y));
            }
            4 if !one_bit.is_empty() => {
                let c = pick(&mut rng, &one_bit);
                let t = pick(&mut rng, &wide);
                let e = pick(&mut rng, &wide);
                wide.push(b.mux(c, t, e));
            }
            n => {
                let x = pick(&mut rng, &wide);
                let y = pick(&mut rng, &wide);
                let op = match n % 6 {
                    0 => BvOp::Add,
                    1 => BvOp::Sub,
                    2 => BvOp::Mul,
                    3 => BvOp::And,
                    4 => BvOp::Or,
                    _ => BvOp::Xor,
                };
                wide.push(b.op2(op, x, y));
            }
        }
    }
    let root = *wide.last().expect("inputs guarantee at least one wide node");
    b.finish(root)
}

/// Jobs over the §5.1 microbenchmark suite of `arch` at width 8 (every shape and
/// stage count), with the named DSP template — the all-mappable population.
pub fn suite_jobs(arch: ArchName, limit: usize) -> Vec<BatchJob> {
    let architecture = Architecture::load(arch);
    suite_for(arch, [GEN_WIDTH].into_iter())
        .into_iter()
        .take(limit)
        .map(|bench| {
            BatchJob::new(
                bench.name.clone(),
                bench.build(),
                architecture.clone(),
                TemplateChoice::Named(Template::Dsp),
            )
        })
        .collect()
}

/// Budget-bound jobs: narrow multiplications posed against the LUT-based
/// multiplication template, whose hole space (per-LUT init bits plus ripple
/// wiring) is large enough that synthesis reliably exhausts a small budget
/// instead of finishing. These model the production queue's lost causes — the
/// requests a serving scheduler must *overlap* (their cost is wall-clock, not
/// useful work) rather than serialize. The Xilinx LUT sketch is deliberately
/// excluded: its solver calls are so coarse that a tight budget overshoots by
/// many seconds, which would put noise in the scaling curve.
pub fn grinder_jobs(budget: Duration) -> Vec<BatchJob> {
    let mut jobs = Vec::new();
    for (arch, width) in [
        (ArchName::Sofa, 6),
        (ArchName::IntelCyclone10Lp, 6),
        (ArchName::LatticeEcp5, 6),
        (ArchName::Sofa, 5),
        (ArchName::IntelCyclone10Lp, 5),
        (ArchName::LatticeEcp5, 5),
    ] {
        let name = format!("lutmul_w{width}_{arch}");
        let mut b = ProgBuilder::new(&name);
        let a = b.input("a", width);
        let x = b.input("b", width);
        let out = b.op2(BvOp::Mul, a, x);
        let spec = b.finish(out);
        let mut job = BatchJob::new(
            name,
            spec,
            Architecture::load(arch),
            TemplateChoice::Named(Template::Multiplication),
        );
        job.timeout = Some(budget);
        jobs.push(job);
    }
    jobs
}

/// `count` random-program jobs against `arch`, deterministic in `seed`. Most of
/// these are unmappable onto one DSP; give them a short `budget` so they model
/// the budget-bound tail of a production queue.
pub fn synthetic_jobs(
    seed: u64,
    count: usize,
    arch: ArchName,
    budget: Option<Duration>,
) -> Vec<BatchJob> {
    let architecture = Architecture::load(arch);
    let mut rng = Rng::new(seed);
    (0..count)
        .map(|i| {
            let program_seed = rng.next_u64();
            let instructions = 4 + rng.below(12) as usize;
            let name = format!("synthetic_{i:03}");
            let mut job = BatchJob::new(
                name.clone(),
                random_program(program_seed, &name, instructions),
                architecture.clone(),
                TemplateChoice::Named(Template::Dsp),
            );
            job.timeout = budget;
            job
        })
        .collect()
}

/// `n` jobs whose specs come from the HDL fuzz firehose: each job elaborates a
/// seeded `lr_hdl::fuzz` module (mixed widths, shifts, ternaries, selects,
/// registers — a far rougher population than [`random_program`]'s straight-line
/// IR), posed against a rotating set of architectures with the DSP template.
/// Deterministic in `seed`. Most of these are unmappable; pass a `budget` so
/// they model the budget-bound tail, exactly like [`synthetic_jobs`].
pub fn fuzz_jobs(seed: u64, n: usize, budget: Option<Duration>) -> Vec<BatchJob> {
    let archs = [ArchName::IntelCyclone10Lp, ArchName::LatticeEcp5, ArchName::XilinxUltraScalePlus];
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|i| {
            let module_seed = rng.next_u64();
            let src = lr_hdl::fuzz::generate_module(module_seed);
            let spec =
                lr_hdl::parse_and_elaborate(&src).expect("fuzz modules elaborate by construction");
            let arch = archs[i % archs.len()];
            let mut job = BatchJob::new(
                format!("fuzz_{i:03}_{module_seed:016x}"),
                spec,
                Architecture::load(arch),
                TemplateChoice::Named(Template::Dsp),
            );
            job.timeout = budget;
            job
        })
        .collect()
}

/// `n` jobs whose specs come from the structural-netlist frontend: each job
/// generates a seeded random AIG (`lr_aig`), renders it as ASCII AIGER text,
/// and resolves it through `lakeroad::DesignSource` — the exact path a daemon
/// `netlist` request takes. The AIGs are small single-output combinational
/// functions of at most 4 inputs, so the Bitwise sketch maps every one onto
/// the rotating 4-LUT architectures: the all-mappable counterpart of
/// [`fuzz_jobs`]'s budget-bound population. Deterministic in `seed`.
pub fn netlist_jobs(seed: u64, n: usize, budget: Option<Duration>) -> Vec<BatchJob> {
    let archs = [ArchName::IntelCyclone10Lp, ArchName::LatticeEcp5];
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|i| {
            let aig_seed = rng.next_u64();
            let config = lr_aig::GenConfig {
                inputs: 3 + (rng.below(2) as u32),
                latches: 0,
                ands: 5 + rng.below(8) as u32,
                outputs: 1,
            };
            let text = lr_aig::random_aig(aig_seed, &config).to_aag();
            let name = format!("netlist_{i:03}_{aig_seed:016x}");
            let arch = archs[i % archs.len()];
            let spec = lakeroad::DesignSource::NetlistInline { name: name.clone(), text }
                .resolve(arch)
                .expect("generated AIGER resolves by construction");
            let mut job = BatchJob::new(
                name,
                spec,
                Architecture::load(arch),
                TemplateChoice::Named(Template::Bitwise),
            );
            job.timeout = budget;
            job
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_are_well_formed_and_deterministic() {
        for seed in [1u64, 7, 0xdead_beef, u64::MAX] {
            let p1 = random_program(seed, "g", 16);
            let p2 = random_program(seed, "g", 16);
            assert!(p1.well_formed().is_ok(), "seed {seed}: {:?}", p1.well_formed());
            assert!(p1.is_behavioral());
            assert_eq!(p1, p2, "seed {seed} must regenerate identically");
        }
        // Different seeds diverge (with overwhelming probability).
        assert_ne!(random_program(2, "g", 16), random_program(3, "g", 16));
    }

    #[test]
    fn zero_seed_does_not_degenerate() {
        let p = random_program(0, "z", 12);
        assert!(p.well_formed().is_ok());
        assert!(p.len() > 3);
    }

    #[test]
    fn suite_jobs_build_the_paper_population() {
        let jobs = suite_jobs(ArchName::IntelCyclone10Lp, 4);
        assert_eq!(jobs.len(), 4);
        for job in &jobs {
            assert!(job.spec.well_formed().is_ok());
            assert!(matches!(job.template, TemplateChoice::Named(Template::Dsp)));
        }
    }

    #[test]
    fn grinder_jobs_carry_their_budget() {
        let jobs = grinder_jobs(Duration::from_secs(2));
        assert_eq!(jobs.len(), 6);
        for job in &jobs {
            assert_eq!(job.timeout, Some(Duration::from_secs(2)));
            assert!(job.spec.well_formed().is_ok());
            assert!(matches!(job.template, TemplateChoice::Named(Template::Multiplication)));
        }
    }

    #[test]
    fn below_is_unbiased_and_in_range() {
        let mut rng = Rng::new(7);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            let v = rng.below(3);
            assert!(v < 3);
            counts[v as usize] += 1;
        }
        for c in counts {
            // Loose uniformity bound: each bucket within ±30% of the mean
            // (the old modulo reduction stays inside this too — the bias it
            // introduces is small for tiny bounds — but the property the
            // widening multiply guarantees is worth pinning).
            assert!((700..=1300).contains(&c), "skewed bucket counts {counts:?}");
        }
    }

    #[test]
    fn fuzz_jobs_are_reproducible_and_well_formed() {
        let a = fuzz_jobs(11, 6, Some(Duration::from_secs(1)));
        let b = fuzz_jobs(11, 6, Some(Duration::from_secs(1)));
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.name, y.name);
            assert_eq!(x.timeout, Some(Duration::from_secs(1)));
            assert!(x.spec.well_formed().is_ok());
        }
        // The population rotates architectures.
        assert_ne!(a[0].arch.name(), a[1].arch.name());
    }

    #[test]
    fn netlist_jobs_resolve_through_the_frontend_and_reproduce() {
        let a = netlist_jobs(0xA16, 4, Some(Duration::from_secs(2)));
        let b = netlist_jobs(0xA16, 4, Some(Duration::from_secs(2)));
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.name, y.name);
            assert!(x.spec.well_formed().is_ok());
            // Small combinational functions: at most 4 free inputs, so the
            // Bitwise sketch fits the rotating 4-LUT architectures.
            assert!(x.spec.free_vars().len() <= 4);
            assert!(matches!(x.template, TemplateChoice::Named(Template::Bitwise)));
        }
        // The population rotates architectures.
        assert_ne!(a[0].arch.name(), a[1].arch.name());
    }

    #[test]
    fn synthetic_jobs_are_reproducible() {
        let a = synthetic_jobs(42, 6, ArchName::IntelCyclone10Lp, Some(Duration::from_secs(2)));
        let b = synthetic_jobs(42, 6, ArchName::IntelCyclone10Lp, Some(Duration::from_secs(2)));
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.timeout, y.timeout);
        }
    }
}
