//! Chrome trace-event rendering for [`lr_trace`] span buffers.
//!
//! `lr_trace` itself is dependency-free and stores spans as raw
//! [`lr_trace::TraceEvent`] records; this module turns a buffer of them into
//! the Chrome trace-event JSON format (the `chrome://tracing` / Perfetto
//! "JSON Array Format" with a `traceEvents` wrapper), built on the same
//! [`Json`] value the daemon protocol uses — so every trace the CLI or daemon
//! emits is guaranteed to round-trip through [`Json::parse`].
//!
//! Each span becomes one complete event (`"ph": "X"`): timestamps and
//! durations are microseconds (the format's unit), the recording thread id
//! becomes `tid`, and the span's attributes — plus the `ctx` job-attribution
//! context and nesting `depth` — land in `args`.

use crate::json::Json;
use lr_trace::TraceEvent;

/// Builds the Chrome trace-event document for a span buffer.
pub fn chrome_trace(events: &[TraceEvent]) -> Json {
    let items: Vec<Json> = events.iter().map(event_json).collect();
    Json::obj([("traceEvents", Json::Arr(items))])
}

/// [`chrome_trace`], rendered to a compact JSON string.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    chrome_trace(events).render()
}

pub(crate) fn event_json(e: &TraceEvent) -> Json {
    let mut args: Vec<(&'static str, Json)> =
        e.attrs.iter().map(|&(k, v)| (k, Json::num(v as f64))).collect();
    args.push(("ctx", Json::num(e.ctx as f64)));
    args.push(("depth", Json::num(f64::from(e.depth))));
    Json::obj([
        ("name", Json::str(e.name)),
        ("cat", Json::str("lakeroad")),
        ("ph", Json::str("X")),
        ("ts", Json::num(e.start_ns as f64 / 1000.0)),
        ("dur", Json::num(e.dur_ns as f64 / 1000.0)),
        ("pid", Json::num(1.0)),
        ("tid", Json::num(e.tid as f64)),
        ("args", Json::obj(args)),
    ])
}

/// Summarizes a [`lr_trace::Histogram`] as a JSON object: `count`, `sum`,
/// `mean`, the `p50`/`p90`/`p99` bucket upper bounds (`null` when empty), and
/// the non-empty buckets as `[upper_bound, count]` pairs — enough to merge or
/// re-render on the client side.
pub fn histogram_json(h: &lr_trace::Histogram) -> Json {
    let quantile = |q: Option<u64>| q.map_or(Json::Null, |v| Json::num(v as f64));
    let buckets: Vec<Json> = h
        .buckets()
        .iter()
        .enumerate()
        .filter(|&(_, &count)| count > 0)
        .map(|(i, &count)| {
            Json::Arr(vec![
                Json::num(lr_trace::Histogram::bucket_bound(i) as f64),
                Json::num(count as f64),
            ])
        })
        .collect();
    Json::obj([
        ("count", Json::num(h.count() as f64)),
        ("sum", Json::num(h.sum() as f64)),
        ("mean", Json::num(h.mean())),
        ("p50", quantile(h.p50())),
        ("p90", quantile(h.p90())),
        ("p99", quantile(h.p99())),
        ("buckets", Json::Arr(buckets)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                name: "cegis",
                tid: 3,
                ctx: 7,
                depth: 0,
                start_ns: 1_000,
                dur_ns: 2_500_000,
                attrs: vec![("iterations", 4), ("conflicts", 19)],
            },
            TraceEvent {
                name: "sat-check",
                tid: 3,
                ctx: 7,
                depth: 1,
                start_ns: 501_000,
                dur_ns: 1_000_000,
                attrs: vec![("sat", 1)],
            },
        ]
    }

    #[test]
    fn chrome_trace_round_trips_through_the_protocol_parser() {
        let rendered = chrome_trace_json(&sample_events());
        let parsed = Json::parse(&rendered).expect("valid JSON");
        let events = parsed.get(&["traceEvents"]).unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get(&["name"]).unwrap().as_str(), Some("cegis"));
        assert_eq!(events[0].get(&["ph"]).unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get(&["ts"]).unwrap().as_f64(), Some(1.0));
        assert_eq!(events[0].get(&["dur"]).unwrap().as_f64(), Some(2500.0));
        assert_eq!(events[0].get(&["args", "iterations"]).unwrap().as_f64(), Some(4.0));
        assert_eq!(events[0].get(&["args", "ctx"]).unwrap().as_f64(), Some(7.0));
        assert_eq!(events[1].get(&["args", "depth"]).unwrap().as_f64(), Some(1.0));
        assert_eq!(events[1].get(&["tid"]).unwrap().as_f64(), Some(3.0));
    }

    #[test]
    fn live_span_buffer_renders_and_parses() {
        lr_trace::set_enabled(true);
        lr_trace::set_context(9001);
        {
            let mut outer = lr_trace::span("outer");
            outer.attr("k", 42);
            let _inner = lr_trace::span("inner");
        }
        lr_trace::set_context(0);
        // Deliberately leave tracing enabled: tests share the process-global
        // tracer, so disabling here would race sibling tests. Filtering on a
        // unique ctx keeps this test's view isolated.
        lr_trace::flush();
        let events: Vec<TraceEvent> =
            lr_trace::snapshot_events().into_iter().filter(|e| e.ctx == 9001).collect();
        assert_eq!(events.len(), 2);
        let parsed = Json::parse(&chrome_trace_json(&events)).expect("valid JSON");
        let arr = parsed.get(&["traceEvents"]).unwrap().as_arr().unwrap();
        let names: Vec<&str> = arr.iter().filter_map(|e| e.get(&["name"])?.as_str()).collect();
        assert!(names.contains(&"outer") && names.contains(&"inner"));
    }

    #[test]
    fn histogram_json_reports_quantiles_and_buckets() {
        let mut h = lr_trace::Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let doc = histogram_json(&h);
        let rendered = doc.render();
        let parsed = Json::parse(&rendered).expect("valid JSON");
        assert_eq!(parsed.get(&["count"]).unwrap().as_f64(), Some(5.0));
        assert_eq!(parsed.get(&["sum"]).unwrap().as_f64(), Some(1106.0));
        assert!(parsed.get(&["p99"]).unwrap().as_f64().is_some());
        assert!(!parsed.get(&["buckets"]).unwrap().as_arr().unwrap().is_empty());
        assert_eq!(histogram_json(&lr_trace::Histogram::new()).get(&["p50"]), Some(&Json::Null));
    }
}
