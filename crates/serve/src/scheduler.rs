//! The work-stealing batch scheduler.
//!
//! A batch is a list of independent mapping jobs (spec × architecture ×
//! template). Jobs are distributed round-robin over per-worker deques in
//! priority order; each worker pops from the front of its own deque and, when
//! empty, steals from the back of a sibling's — the classic split that keeps
//! hot jobs local and contention at the cold end. Workers are plain scoped
//! threads (`std::thread::scope`), so the scheduler borrows the jobs and needs
//! no `'static` plumbing.
//!
//! Three control mechanisms ride on the queue:
//!
//! * **Priorities** (higher first) order the initial distribution; stealing
//!   preserves them approximately, which is all a batch engine needs.
//! * **Per-job deadlines** are relative to batch start. A job popped after its
//!   deadline is not posed at all ([`JobResult::DeadlineExpired`]); a job
//!   popped before it has its synthesis timeout clamped so it cannot overrun.
//! * **Cooperative cancellation**: flip the [`BatchOptions::cancel`] flag and
//!   every not-yet-started job drains as [`JobResult::Cancelled`]. The flag is
//!   also installed as [`MapConfig::cancel`] on every posed job, which reaches
//!   all the way down to a SAT-solver interrupt — a job already deep inside a
//!   solver check stops promptly instead of running out its budget.
//!
//! Results stream back **in submission order** regardless of completion order:
//! [`run_batch_streaming`] invokes its callback for job *i* only once jobs
//! `0..i` have been delivered, which is what lets a manifest run print a stable
//! report while overlapping work.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lakeroad::{map_design_auto, MapConfig, MapError, MapOutcome, Template};
use lr_arch::Architecture;
use lr_ir::Prog;

/// Which sketch template(s) a job tries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemplateChoice {
    /// One named template.
    Named(Template),
    /// The guidance ranking (`lakeroad::map_design_auto`).
    Auto,
}

/// One independent mapping job of a batch.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Display name (manifest line, benchmark name, …).
    pub name: String,
    /// The behavioral design to map.
    pub spec: Prog,
    /// Target architecture.
    pub arch: Architecture,
    /// Template selection.
    pub template: TemplateChoice,
    /// Scheduling priority; higher runs earlier. Ties keep submission order.
    pub priority: u8,
    /// Per-job synthesis budget; `None` inherits [`BatchOptions::map`]'s.
    pub timeout: Option<Duration>,
    /// Wall-clock deadline relative to batch start. Expired jobs are reported
    /// as [`JobResult::DeadlineExpired`] without posing a query; running jobs
    /// have their budget clamped to what remains.
    pub deadline: Option<Duration>,
}

impl BatchJob {
    /// A job with default priority, no deadline, and the batch-wide budget.
    pub fn new(
        name: impl Into<String>,
        spec: Prog,
        arch: Architecture,
        template: TemplateChoice,
    ) -> BatchJob {
        BatchJob {
            name: name.into(),
            spec,
            arch,
            template,
            priority: 0,
            timeout: None,
            deadline: None,
        }
    }
}

/// Scheduler configuration for one batch run.
#[derive(Clone)]
pub struct BatchOptions {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Base mapping configuration; install the synthesis cache on
    /// [`MapConfig::cache`] to share verdicts across jobs and batches.
    pub map: MapConfig,
    /// Cooperative cancellation flag for the whole batch.
    pub cancel: Arc<AtomicBool>,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            workers: 1,
            map: MapConfig::default(),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }
}

impl BatchOptions {
    /// Options with `workers` threads over `map`.
    pub fn new(workers: usize, map: MapConfig) -> BatchOptions {
        BatchOptions { workers, map, ..BatchOptions::default() }
    }
}

/// How one job ended.
#[derive(Debug, Clone)]
pub enum JobResult {
    /// The mapping ran to a verdict (success, UNSAT, or timeout).
    Finished(MapOutcome),
    /// The mapping could not be posed (sketch/frontend/task error).
    Error(String),
    /// The job's deadline passed before a worker picked it up.
    DeadlineExpired,
    /// The batch was cancelled before the job ran.
    Cancelled,
}

impl JobResult {
    /// Whether the job produced a successful mapping.
    pub fn is_success(&self) -> bool {
        matches!(self, JobResult::Finished(o) if o.is_success())
    }

    /// The finished outcome, if any.
    pub fn outcome(&self) -> Option<&MapOutcome> {
        match self {
            JobResult::Finished(o) => Some(o),
            _ => None,
        }
    }
}

/// One job's record in the batch result.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Submission index.
    pub index: usize,
    /// Job name.
    pub name: String,
    /// Worker that delivered the result.
    pub worker: usize,
    /// Whether the job reached its worker by stealing.
    pub stolen: bool,
    /// Wall-clock time the job spent executing (zero for expired/cancelled).
    pub elapsed: Duration,
    /// Time from batch start until the result was delivered.
    pub completed_at: Duration,
    /// How the job ended.
    pub result: JobResult,
}

/// The result of a batch run.
#[derive(Debug, Clone)]
pub struct BatchRun {
    /// Per-job records in submission order.
    pub records: Vec<JobRecord>,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs that migrated to a worker other than the one they were dealt to.
    pub steals: u64,
}

impl BatchRun {
    /// Jobs per second of batch wall time.
    pub fn throughput(&self) -> f64 {
        self.records.len() as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Records whose outcome was served from the synthesis cache.
    pub fn cache_served(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.result.outcome().is_some_and(MapOutcome::served_from_cache))
            .count()
    }
}

/// Runs a batch and returns all records in submission order.
pub fn run_batch(jobs: &[BatchJob], opts: &BatchOptions) -> BatchRun {
    run_batch_streaming(jobs, opts, |_| {})
}

/// [`run_batch`], invoking `on_ready` for every record **in submission order**
/// as soon as it and all of its predecessors are available.
pub fn run_batch_streaming(
    jobs: &[BatchJob],
    opts: &BatchOptions,
    on_ready: impl Fn(&JobRecord) + Sync,
) -> BatchRun {
    let workers = opts.workers.max(1);
    let start = Instant::now();

    // Deal job indices round-robin in priority order (stable: ties keep
    // submission order), so every worker starts with a fair, priority-sorted
    // slice of the batch.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(jobs[i].priority));
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (slot, &job) in order.iter().enumerate() {
        deques[slot % workers].lock().unwrap().push_back(job);
    }

    let slots: Vec<Mutex<Option<JobRecord>>> = (0..jobs.len()).map(|_| Mutex::new(None)).collect();
    // Emission frontier: index of the next record to hand to `on_ready`.
    // Advancing it under a lock is what serializes the callback in submission
    // order even though completions arrive out of order.
    let frontier: Mutex<usize> = Mutex::new(0);
    let steals = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for me in 0..workers {
            let (deques, slots, frontier, steals, on_ready) =
                (&deques, &slots, &frontier, &steals, &on_ready);
            scope.spawn(move || loop {
                // Own deque first (front), then steal from siblings (back).
                let mut claimed: Option<(usize, bool)> =
                    deques[me].lock().unwrap().pop_front().map(|j| (j, false));
                if claimed.is_none() {
                    for other in (1..workers).map(|d| (me + d) % workers) {
                        if let Some(j) = deques[other].lock().unwrap().pop_back() {
                            steals.fetch_add(1, Ordering::Relaxed);
                            claimed = Some((j, true));
                            break;
                        }
                    }
                }
                let Some((index, stolen)) = claimed else { return };

                let job = &jobs[index];
                let elapsed_at_start = start.elapsed();
                let (result, elapsed) = if opts.cancel.load(Ordering::Relaxed) {
                    (JobResult::Cancelled, Duration::ZERO)
                } else if job.deadline.is_some_and(|d| elapsed_at_start >= d) {
                    (JobResult::DeadlineExpired, Duration::ZERO)
                } else {
                    // Jobs are all submitted at batch start, so the time until a
                    // worker claims one *is* its queue wait — admission pressure
                    // made visible.
                    let wait_us = u64::try_from(elapsed_at_start.as_micros()).unwrap_or(u64::MAX);
                    lr_trace::hist_record("scheduler.queue_wait_us", wait_us);
                    // Attribute every span below this job to its submission
                    // index (+1 so 0 stays "unattributed"); the batch report
                    // groups the trace buffer by this context id.
                    lr_trace::set_context(index as u64 + 1);
                    let mut sp = lr_trace::span("job");
                    sp.attr("index", index as u64);
                    sp.attr("worker", me as u64);
                    sp.attr("stolen", u64::from(stolen));
                    sp.attr("queue_wait_us", wait_us);
                    let job_start = Instant::now();
                    let result = execute_job(job, &opts.map, &opts.cancel, elapsed_at_start);
                    drop(sp);
                    lr_trace::set_context(0);
                    (result, job_start.elapsed())
                };
                let record = JobRecord {
                    index,
                    name: job.name.clone(),
                    worker: me,
                    stolen,
                    elapsed,
                    completed_at: start.elapsed(),
                    result,
                };
                *slots[index].lock().unwrap() = Some(record);

                // Drain every in-order record that is now ready.
                let mut next = frontier.lock().unwrap();
                while *next < slots.len() {
                    let slot = slots[*next].lock().unwrap();
                    let Some(record) = slot.as_ref() else { break };
                    on_ready(record);
                    *next += 1;
                }
            });
        }
    });

    let records: Vec<JobRecord> = slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every job index is claimed exactly once"))
        .collect();
    BatchRun { records, wall: start.elapsed(), workers, steals: steals.load(Ordering::Relaxed) }
}

/// Poses one job, clamping its budget to its deadline. A panic inside the
/// mapping stack (a poison job) is contained to this job — one bad request must
/// not take the whole batch down with it. `cancel` is installed as the mapping
/// run's [`MapConfig::cancel`] hook (reaching the SAT-solver interrupt), so
/// flipping it stops an in-flight job promptly; a run cut short that way is
/// reported as [`JobResult::Cancelled`], not a timeout. Shared with the serving
/// daemon's worker pool.
pub(crate) fn execute_job(
    job: &BatchJob,
    map: &MapConfig,
    cancel: &Arc<AtomicBool>,
    already_elapsed: Duration,
) -> JobResult {
    let mut config = map.clone();
    config.cancel = Some(Arc::clone(cancel));
    if let Some(timeout) = job.timeout {
        config.timeout = timeout;
    }
    // Cache addressing must see the job's *requested* budget: the deadline
    // clamp below depends on when a worker happened to pick the job up, and a
    // wall-clock-dependent key tier would defeat warm batches.
    if config.cache_budget.is_none() {
        config.cache_budget = Some(config.timeout);
    }
    if let Some(deadline) = job.deadline {
        let remaining = deadline.saturating_sub(already_elapsed);
        config.timeout = config.timeout.min(remaining);
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        poison_check(&job.name);
        match job.template {
            TemplateChoice::Named(template) => {
                lakeroad::map_design(&job.spec, template, &job.arch, &config)
            }
            TemplateChoice::Auto => map_design_auto(&job.spec, &job.arch, &config),
        }
    }));
    match outcome {
        // A cancelled run surfaces as a timeout verdict from the synthesis
        // layer; re-label it so callers can tell shutdown from a blown budget.
        Ok(Ok(MapOutcome::Timeout { .. })) if cancel.load(Ordering::Relaxed) => {
            JobResult::Cancelled
        }
        Ok(Ok(outcome)) => JobResult::Finished(outcome),
        Ok(Err(e)) => JobResult::Error(render_error(&e)),
        Err(panic) => JobResult::Error(format!("panicked: {}", render_panic(&panic))),
    }
}

/// The installed poison-job name (see [`set_poison_job`]).
static POISON_JOB: Mutex<Option<String>> = Mutex::new(None);

/// Installs (or clears, with `None`) a process-wide *poison job* name: any
/// job whose name matches panics inside the mapping closure, behind
/// [`execute_job`]'s `catch_unwind`. This is deliberate test apparatus — the
/// forensics integration tests and `exp_obs`'s poison phase use it to drive
/// the panic-containment and post-mortem paths end to end over a real
/// socket; nothing installs it in production. The panic fires *before* any
/// synthesis work, so a poisoned job contributes zero solver counters.
pub fn set_poison_job(name: Option<&str>) {
    *POISON_JOB.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
        name.map(str::to_string);
}

fn poison_check(name: &str) {
    let poisoned = POISON_JOB.lock().map(|guard| guard.as_deref() == Some(name)).unwrap_or(false);
    if poisoned {
        panic!("poison job `{name}` injected a panic");
    }
}

fn render_error(e: &MapError) -> String {
    e.to_string()
}

fn render_panic(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_ir::{BvOp, ProgBuilder};

    fn mul_spec(name: &str) -> Prog {
        let mut b = ProgBuilder::new(name);
        let a = b.input("a", 8);
        let x = b.input("b", 8);
        let out = b.op2(BvOp::Mul, a, x);
        b.finish(out)
    }

    fn quick_opts(workers: usize) -> BatchOptions {
        let map = MapConfig::single_solver().with_timeout(Duration::from_secs(30));
        BatchOptions::new(workers, map)
    }

    fn quick_jobs(n: usize) -> Vec<BatchJob> {
        (0..n)
            .map(|i| {
                BatchJob::new(
                    format!("mul_{i}"),
                    mul_spec(&format!("mul_{i}")),
                    Architecture::intel_cyclone10lp(),
                    TemplateChoice::Named(Template::Dsp),
                )
            })
            .collect()
    }

    #[test]
    fn batch_results_arrive_in_submission_order() {
        let jobs = quick_jobs(5);
        let seen = Mutex::new(Vec::new());
        let run = run_batch_streaming(&jobs, &quick_opts(3), |record| {
            seen.lock().unwrap().push(record.index);
        });
        assert_eq!(seen.into_inner().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(run.records.len(), 5);
        for (i, record) in run.records.iter().enumerate() {
            assert_eq!(record.index, i);
            assert!(record.result.is_success(), "{:?}", record.result);
        }
    }

    #[test]
    fn priorities_order_the_initial_deal() {
        // Single worker: execution strictly follows the priority-sorted deal.
        // Streaming is submission-ordered by design, so observe completion
        // times instead.
        let mut jobs = quick_jobs(3);
        jobs[2].priority = 9;
        let run = run_batch(&jobs, &quick_opts(1));
        let mut by_completion: Vec<(Duration, usize)> =
            run.records.iter().map(|r| (r.completed_at, r.index)).collect();
        by_completion.sort();
        assert_eq!(by_completion[0].1, 2, "the high-priority job must run first");
    }

    #[test]
    fn expired_deadlines_are_reported_without_posing() {
        let mut jobs = quick_jobs(2);
        jobs[1].deadline = Some(Duration::ZERO); // expired before the batch starts
        let run = run_batch(&jobs, &quick_opts(2));
        assert!(run.records[0].result.is_success());
        assert!(matches!(run.records[1].result, JobResult::DeadlineExpired));
        assert_eq!(run.records[1].elapsed, Duration::ZERO);
    }

    #[test]
    fn cancellation_drains_pending_jobs() {
        let jobs = quick_jobs(4);
        let opts = quick_opts(2);
        opts.cancel.store(true, Ordering::Relaxed);
        let run = run_batch(&jobs, &opts);
        assert!(run.records.iter().all(|r| matches!(r.result, JobResult::Cancelled)));
    }

    #[test]
    fn cancellation_interrupts_a_job_already_inside_synthesis() {
        // Regression: the cancel flag used to be sampled only *between* jobs,
        // so a job already inside a solver check ran out its whole budget. One
        // grinder-style job (LUT multiplication, a search that reliably chews
        // through minutes) gets a generous timeout; cancelling shortly after
        // it starts must bring the batch home orders of magnitude sooner.
        let mut jobs = crate::scenario::grinder_jobs(Duration::from_secs(300));
        jobs.truncate(1);
        let opts = quick_opts(1);
        let cancel = Arc::clone(&opts.cancel);
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(300));
            cancel.store(true, Ordering::Relaxed);
        });
        let start = Instant::now();
        let run = run_batch(&jobs, &opts);
        canceller.join().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "cancel must interrupt in-flight synthesis promptly, took {:?}",
            start.elapsed()
        );
        assert!(
            matches!(run.records[0].result, JobResult::Cancelled),
            "{:?}",
            run.records[0].result
        );
    }

    #[test]
    fn stealing_happens_when_a_worker_starves() {
        // More workers than jobs in one worker's deque: with 4 workers and 8
        // jobs the deal gives each worker 2; uneven finish times make steals
        // likely but not certain, so only assert the counters are consistent.
        let jobs = quick_jobs(8);
        let run = run_batch(&jobs, &quick_opts(4));
        let stolen = run.records.iter().filter(|r| r.stolen).count() as u64;
        assert_eq!(stolen, run.steals);
        assert!(run.records.iter().all(|r| r.worker < 4));
    }

    #[test]
    fn unposeable_jobs_surface_as_errors() {
        // SOFA has no DSP: the DSP template cannot be instantiated.
        let job = BatchJob::new(
            "no_dsp",
            mul_spec("no_dsp"),
            Architecture::sofa(),
            TemplateChoice::Named(Template::Dsp),
        );
        let run = run_batch(&[job], &quick_opts(1));
        assert!(matches!(&run.records[0].result, JobResult::Error(_)));
    }
}
