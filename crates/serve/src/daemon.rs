//! `lakeroad serve`: the resident mapping daemon.
//!
//! The batch engine amortizes synthesis within one process invocation; the
//! daemon amortizes it across *clients*. It owns one always-warm, size-bounded
//! [`SynthCache`] and serves mapping requests over the length-prefixed JSON
//! protocol of [`crate::protocol`] on a plain [`TcpListener`] — no async
//! runtime, just scoped-lifetime-free std threads:
//!
//! * one **acceptor** hands each connection to a detached handler thread;
//! * each **handler** reads frames, answers `ping`/`stats`/`trace` inline, and admits
//!   `map` jobs into the shared priority queue — bounded per client, so one
//!   greedy client cannot starve the rest (an over-limit job is *rejected* at
//!   the door with a `rejected` response, never silently dropped);
//! * a fixed pool of **workers** pops jobs in priority order (FIFO within a
//!   priority) and executes them through the same
//!   [`scheduler::execute_job`] path as `lakeroad batch`, sharing the cache;
//! * an optional **persister** snapshots the cache to disk every interval
//!   using the atomic [`SynthCache::save`], so a crash loses at most one
//!   interval of new verdicts and never the file.
//!
//! **Graceful drain.** Shutdown (a `shutdown` request or
//! [`Daemon::shutdown_and_wait`]) flips the drain flag *under the queue lock*:
//! every job admitted before the flip is still executed and answered, and no
//! job can slip in after it — admission checks the flag under the same lock.
//! Workers exit once the queue is empty, the persister writes a final
//! snapshot, and the summary's accounting proves nothing was lost:
//! `accepted == completed`.

use std::collections::BinaryHeap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lakeroad::{CacheKey, MapConfig, MapOutcome};
use lr_trace::{OpenMetricsWriter, RollingCounter, RollingHistogram};

use crate::cache::{CacheSnapshot, SynthCache};
use crate::forensics::{FlightRecorder, ForensicsConfig, RequestRecord};
use crate::json::Json;
use crate::protocol::{
    error_response, map_response, parse_request, pong_response, read_frame, rejected_response,
    shutdown_response, trace_response, write_frame, Request,
};
use crate::scheduler::{execute_job, BatchJob, JobResult, TemplateChoice};

/// Configuration of a daemon instance.
#[derive(Clone)]
pub struct DaemonConfig {
    /// Listen address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Worker threads executing mapping jobs.
    pub workers: usize,
    /// Base mapping configuration. The daemon installs its own shared cache;
    /// any cache already present is replaced.
    pub map: MapConfig,
    /// Entry cap for the shared cache (`None` = unbounded). Unlike one-shot
    /// batches, a resident cache must be bounded, so the daemon defaults this
    /// on.
    pub cache_capacity: Option<usize>,
    /// Cache snapshot file: loaded (warm start) at bind, rewritten atomically
    /// by the persister and at shutdown. `None` disables persistence.
    pub persist_path: Option<PathBuf>,
    /// Interval between persister snapshots.
    pub persist_interval: Duration,
    /// Per-client admission bound: a client with this many jobs queued or
    /// running has further `map` requests rejected until some complete.
    pub max_pending_per_client: usize,
    /// Flight-recorder configuration (`--slow-ms`, `--forensics-dir`,
    /// `--forensics-keep`). When active, the daemon enables span recording so
    /// records carry their request's span tree.
    pub forensics: ForensicsConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            map: MapConfig::default(),
            cache_capacity: Some(4096),
            persist_path: None,
            persist_interval: Duration::from_secs(30),
            max_pending_per_client: 64,
            forensics: ForensicsConfig { dir: None, slow: None, keep: 64, ring: 256 },
        }
    }
}

/// One queued mapping job.
struct QueuedJob {
    /// Admission ticket; FIFO tie-break within a priority.
    seq: u64,
    job: BatchJob,
    submitted: Instant,
    client: Arc<ClientSlot>,
    id: Option<Json>,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then earlier admission.
        self.job.priority.cmp(&other.job.priority).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Queue state; `draining` lives under the same lock so admission and worker
/// exit see one consistent picture (the zero-lost-jobs invariant).
struct QueueState {
    heap: BinaryHeap<QueuedJob>,
    draining: bool,
    next_seq: u64,
}

/// Per-connection shared half: the response writer and the admission counter.
struct ClientSlot {
    writer: Mutex<TcpStream>,
    pending: AtomicUsize,
}

impl ClientSlot {
    /// Writes one response frame; a vanished client is not an error worth
    /// propagating (its jobs still count as completed).
    fn respond(&self, payload: &str) {
        let mut writer = self.writer.lock().unwrap();
        let _ = write_frame(&mut *writer, payload);
    }
}

/// Monotonic daemon counters, all exposed by the `stats` request.
#[derive(Default)]
struct Counters {
    pings: AtomicU64,
    stats_requests: AtomicU64,
    protocol_errors: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    successes: AtomicU64,
    unsats: AtomicU64,
    timeouts: AtomicU64,
    job_errors: AtomicU64,
    deadline_expired: AtomicU64,
    cancelled: AtomicU64,
    cache_served: AtomicU64,
    synth_iterations: AtomicU64,
    synth_examples: AtomicU64,
    sat_conflicts: AtomicU64,
    sat_propagations: AtomicU64,
    sat_restarts: AtomicU64,
    trace_requests: AtomicU64,
    metrics_requests: AtomicU64,
    forensics_requests: AtomicU64,
    /// End-to-end handling latency of completed `map` jobs, µs.
    request_latency_us: lr_trace::AtomicHistogram,
    /// Time each job spent queued before a worker picked it up, µs — the
    /// admission-pressure signal.
    queue_wait_us: lr_trace::AtomicHistogram,
}

/// One-second interval buckets; 64 of them cover the longest (60s) window.
const RATE_WIDTH_MS: u64 = 1_000;
const RATE_SLOTS: usize = 64;

/// The daemon's windowed rates: what `stats` reports as *current* load, as
/// opposed to the lifetime aggregates in [`Counters`]. Live regardless of
/// whether tracing is enabled, like the admission counters.
struct Rates {
    completed: RollingCounter,
    rejected: RollingCounter,
    latency_us: RollingHistogram,
}

impl Rates {
    fn new() -> Rates {
        Rates {
            completed: RollingCounter::new(RATE_WIDTH_MS, RATE_SLOTS),
            rejected: RollingCounter::new(RATE_WIDTH_MS, RATE_SLOTS),
            latency_us: RollingHistogram::new(RATE_WIDTH_MS, RATE_SLOTS),
        }
    }
}

struct Inner {
    queue: Mutex<QueueState>,
    queue_cv: Condvar,
    /// Mirror of `QueueState::draining` for lock-free reads (acceptor, stats).
    draining: AtomicBool,
    map: MapConfig,
    cache: Arc<SynthCache>,
    persist_path: Option<PathBuf>,
    persist_interval: Duration,
    persist_stop: Mutex<bool>,
    persist_cv: Condvar,
    max_pending: usize,
    workers: usize,
    started: Instant,
    local_addr: SocketAddr,
    counters: Counters,
    rates: Mutex<Rates>,
    /// The flight recorder; `Some` when any forensics surface is configured.
    recorder: Option<FlightRecorder>,
}

impl Inner {
    /// Milliseconds since daemon start — the tick the rolling windows run on.
    fn now_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// Final accounting of a drained daemon.
#[derive(Debug, Clone)]
pub struct DaemonSummary {
    /// `map` jobs admitted into the queue.
    pub accepted: u64,
    /// Admitted jobs executed and answered. Equal to `accepted` after a
    /// graceful drain — the zero-lost-jobs invariant.
    pub completed: u64,
    /// `map` requests refused at admission (queue bound or drain in progress).
    pub rejected: u64,
    /// Of the completed jobs, how many were served from the warm cache.
    pub cache_served: u64,
    /// Final cache counters.
    pub cache: CacheSnapshot,
    /// Entries resident in the cache at shutdown.
    pub cache_entries: usize,
}

impl DaemonSummary {
    /// Admitted jobs that were never answered; 0 after a graceful drain.
    pub fn lost(&self) -> u64 {
        self.accepted - self.completed
    }
}

/// A running daemon. Dropping the handle does **not** stop it; call
/// [`Daemon::shutdown_and_wait`] (or send a `shutdown` request and then
/// [`Daemon::wait`]) to drain it.
pub struct Daemon {
    inner: Arc<Inner>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    persister: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds the listener, warms the cache from `persist_path` when the file
    /// exists, and starts the acceptor, worker, and persister threads.
    ///
    /// # Errors
    /// Socket errors from binding `config.addr`. A missing or unreadable
    /// snapshot file is a cold start, not an error.
    pub fn bind(config: DaemonConfig) -> io::Result<Daemon> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;

        let cache = Arc::new(match &config.persist_path {
            Some(path) => SynthCache::load(path).unwrap_or_default(),
            None => SynthCache::new(),
        });
        cache.set_capacity(config.cache_capacity);
        let mut map = config.map;
        map.cache = Some(Arc::<SynthCache>::clone(&cache) as _);

        let recorder = config.forensics.active().then(|| {
            // Span trees are the payload of every post-mortem bundle, so an
            // active recorder turns span recording on (process-wide, like the
            // CLI's --trace). Observation only: the mapping configuration and
            // cache are untouched, so deterministic synthesis counters are
            // identical with forensics on or off.
            lr_trace::set_enabled(true);
            FlightRecorder::new(config.forensics.clone())
        });

        let inner = Arc::new(Inner {
            queue: Mutex::new(QueueState { heap: BinaryHeap::new(), draining: false, next_seq: 0 }),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            map,
            cache,
            persist_path: config.persist_path,
            persist_interval: config.persist_interval,
            persist_stop: Mutex::new(false),
            persist_cv: Condvar::new(),
            max_pending: config.max_pending_per_client.max(1),
            workers: config.workers.max(1),
            started: Instant::now(),
            local_addr,
            counters: Counters::default(),
            rates: Mutex::new(Rates::new()),
            recorder,
        });

        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || accept_loop(&listener, &inner))
        };
        let workers = (0..inner.workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        let persister = inner.persist_path.is_some().then(|| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || persist_loop(&inner))
        });

        Ok(Daemon { inner, acceptor, workers, persister })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr
    }

    /// Blocks until the daemon has drained — either because a client sent
    /// `shutdown` or because [`Daemon::shutdown_and_wait`] was called — and
    /// returns the final accounting.
    pub fn wait(self) -> DaemonSummary {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
        if let Some(persister) = self.persister {
            let _ = persister.join();
        }
        // The final forensics sync rides along with the shutdown cache
        // snapshot: every worker has exited, so the ring is final and the
        // drained run's last requests survive the restart as one bundle.
        if let Some(recorder) = &self.inner.recorder {
            recorder.final_sync();
        }
        let c = &self.inner.counters;
        DaemonSummary {
            accepted: c.accepted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            cache_served: c.cache_served.load(Ordering::Relaxed),
            cache: self.inner.cache.snapshot(),
            cache_entries: self.inner.cache.len(),
        }
    }

    /// Initiates a graceful drain and blocks until it finishes: already
    /// admitted jobs run to completion and are answered, new ones are
    /// rejected.
    pub fn shutdown_and_wait(self) -> DaemonSummary {
        begin_drain(&self.inner);
        self.wait()
    }
}

/// Flips the drain flag (under the queue lock — see module docs) and wakes the
/// workers and the persister. The acceptor needs no wakeup: it polls a
/// nonblocking listener (see [`accept_loop`]), so it notices the flag within
/// one poll interval no matter what address the daemon is bound to — a
/// self-connect wakeup would not be reliable for 0.0.0.0 or external binds.
fn begin_drain(inner: &Inner) {
    {
        let mut queue = inner.queue.lock().unwrap();
        if queue.draining {
            return;
        }
        queue.draining = true;
    }
    inner.draining.store(true, Ordering::SeqCst);
    inner.queue_cv.notify_all();
    *inner.persist_stop.lock().unwrap() = true;
    inner.persist_cv.notify_all();
}

/// How often the acceptor re-checks the drain flag while no connection is
/// pending. Bounds shutdown latency; far too coarse to matter for accept
/// throughput (a pending connection is accepted immediately).
const ACCEPT_POLL: Duration = Duration::from_millis(20);

fn accept_loop(listener: &TcpListener, inner: &Arc<Inner>) {
    // Nonblocking, so the drain flag is re-checked even when no connection
    // ever arrives; a blocking `accept` could only be unblocked by a
    // self-connect, which is not guaranteed to succeed for non-loopback binds.
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if inner.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Handler I/O is blocking; on some platforms the accepted
                // socket inherits the listener's nonblocking flag.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let inner = Arc::clone(inner);
                // Handlers are detached: they live as long as their client and
                // only touch `Inner` through the Arc, so the drain never has
                // to wait on an idle connection.
                std::thread::spawn(move || handle_connection(stream, &inner));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            // Transient accept failures (aborted handshake, fd pressure):
            // back off instead of hot-spinning, keep serving.
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, inner: &Inner) {
    let Ok(writer) = stream.try_clone() else { return };
    let client = Arc::new(ClientSlot { writer: Mutex::new(writer), pending: AtomicUsize::new(0) });
    loop {
        let frame = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            // Clean disconnect, or an unframeable stream (torn frame, oversize
            // header): either way this connection is done. Protocol-level
            // errors inside a well-formed frame do NOT land here.
            Ok(None) | Err(_) => return,
        };
        let (id, request) = parse_request(&frame);
        match request {
            Err(message) => {
                inner.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                client.respond(&error_response(id.as_ref(), &message));
            }
            Ok(Request::Ping) => {
                inner.counters.pings.fetch_add(1, Ordering::Relaxed);
                client.respond(&pong_response(id.as_ref()));
            }
            Ok(Request::Stats) => {
                inner.counters.stats_requests.fetch_add(1, Ordering::Relaxed);
                client.respond(&stats_response(inner, id.as_ref()));
            }
            Ok(Request::Trace) => {
                inner.counters.trace_requests.fetch_add(1, Ordering::Relaxed);
                client.respond(&trace_response(id.as_ref()));
            }
            Ok(Request::Metrics) => {
                inner.counters.metrics_requests.fetch_add(1, Ordering::Relaxed);
                client.respond(&metrics_response(inner, id.as_ref()));
            }
            Ok(Request::Forensics) => {
                inner.counters.forensics_requests.fetch_add(1, Ordering::Relaxed);
                client.respond(&forensics_response(inner, id.as_ref()));
            }
            Ok(Request::Shutdown) => {
                client.respond(&shutdown_response(id.as_ref()));
                begin_drain(inner);
            }
            Ok(Request::Map(job)) => submit(inner, &client, *job, id),
        }
    }
}

/// Admits one job or rejects it, under the queue lock so the decision is
/// consistent with the drain flag and the worker exit condition.
fn submit(inner: &Inner, client: &Arc<ClientSlot>, job: BatchJob, id: Option<Json>) {
    let pending = client.pending.load(Ordering::Relaxed);
    if pending >= inner.max_pending {
        inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
        inner.rates.lock().unwrap().rejected.add(inner.now_ms(), 1);
        client.respond(&rejected_response(id.as_ref(), pending, inner.max_pending));
        return;
    }
    {
        let mut queue = inner.queue.lock().unwrap();
        if queue.draining {
            drop(queue);
            inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            inner.rates.lock().unwrap().rejected.add(inner.now_ms(), 1);
            client.respond(&error_response(id.as_ref(), "daemon is draining"));
            return;
        }
        let seq = queue.next_seq;
        queue.next_seq += 1;
        client.pending.fetch_add(1, Ordering::Relaxed);
        inner.counters.accepted.fetch_add(1, Ordering::Relaxed);
        queue.heap.push(QueuedJob {
            seq,
            job,
            submitted: Instant::now(),
            client: Arc::clone(client),
            id,
        });
    }
    inner.queue_cv.notify_one();
}

fn worker_loop(inner: &Inner) {
    // Graceful drain never cancels in-flight work; the flag exists because
    // `execute_job` requires one and keeps the path shared with the batch
    // scheduler.
    let no_cancel = Arc::new(AtomicBool::new(false));
    loop {
        let queued = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(next) = queue.heap.pop() {
                    break next;
                }
                if queue.draining {
                    return;
                }
                queue = inner.queue_cv.wait(queue).unwrap();
            }
        };
        let waited = queued.submitted.elapsed();
        let wait_us = u64::try_from(waited.as_micros()).unwrap_or(u64::MAX);
        inner.counters.queue_wait_us.record(wait_us);
        lr_trace::hist_record("daemon.queue_wait_us", wait_us);
        let start = Instant::now();
        let mut spans: Vec<lr_trace::TraceEvent> = Vec::new();
        let result = if queued.job.deadline.is_some_and(|d| waited >= d) {
            JobResult::DeadlineExpired
        } else {
            // Attribute the job's spans to its admission ticket (+1 keeps 0 as
            // "unattributed"); a `trace` request groups the buffer by this ctx.
            lr_trace::set_context(queued.seq + 1);
            let mut sp = lr_trace::span("daemon-request");
            sp.attr("seq", queued.seq);
            sp.attr("priority", u64::from(queued.job.priority));
            sp.attr("queue_wait_us", wait_us);
            let result = execute_job(&queued.job, &inner.map, &no_cancel, waited);
            drop(sp);
            // The outer span just closed at depth 0, flushing this thread's
            // buffer, and `execute_job` joins any portfolio threads before
            // returning — so the sink holds the job's complete span tree,
            // selectable by its ctx.
            if inner.recorder.is_some() {
                spans = lr_trace::snapshot_events()
                    .into_iter()
                    .filter(|e| e.ctx == queued.seq + 1)
                    .collect();
            }
            lr_trace::set_context(0);
            result
        };
        record_result(&inner.counters, &result);
        let latency = start.elapsed();
        let latency_us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        inner.counters.request_latency_us.record(latency_us);
        {
            let now = inner.now_ms();
            let mut rates = inner.rates.lock().unwrap();
            rates.completed.add(now, 1);
            rates.latency_us.record(now, latency_us);
        }
        if let Some(recorder) = &inner.recorder {
            recorder.record(build_record(inner, &queued, &result, wait_us, latency_us, spans));
        }
        queued.client.pending.fetch_sub(1, Ordering::Relaxed);
        queued.client.respond(&map_response(
            queued.id.as_ref(),
            &queued.job.name,
            &result,
            latency,
        ));
        inner.counters.completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Assembles the flight-recorder record for one answered job: identity,
/// design hash, verdict, the latency split, this run's synthesis counters,
/// and the captured span tree.
fn build_record(
    inner: &Inner,
    queued: &QueuedJob,
    result: &JobResult,
    queue_wait_us: u64,
    latency_us: u64,
    spans: Vec<lr_trace::TraceEvent>,
) -> RequestRecord {
    let (hi, lo) = lakeroad::cache::spec_fingerprint(&queued.job.spec);
    let (verdict, error, from_cache) = match result {
        JobResult::Finished(outcome) => {
            let verdict = match outcome {
                MapOutcome::Success(_) => "success",
                MapOutcome::Unsat { .. } => "unsat",
                MapOutcome::Timeout { .. } => "timeout",
            };
            (verdict, None, outcome.served_from_cache())
        }
        JobResult::Error(message) => ("error", Some(message.clone()), false),
        JobResult::DeadlineExpired => ("deadline_expired", None, false),
        JobResult::Cancelled => ("cancelled", None, false),
    };
    let stats = match result {
        JobResult::Finished(outcome) => Some(outcome.stats()),
        _ => None,
    };
    RequestRecord {
        seq: queued.seq,
        id: queued.id.clone(),
        name: queued.job.name.clone(),
        design: CacheKey([hi, lo]).to_string(),
        arch: queued.job.arch.name().to_string(),
        template: match &queued.job.template {
            TemplateChoice::Named(t) => t.cli_name().to_string(),
            TemplateChoice::Auto => "auto".to_string(),
        },
        priority: queued.job.priority,
        verdict,
        // `execute_job` contains worker panics via `catch_unwind` and reports
        // them with this prefix — the recorder's `panic` trigger keys off it.
        panicked: error.as_deref().is_some_and(|e| e.starts_with("panicked: ")),
        error,
        from_cache,
        queue_wait_us,
        latency_us,
        completed_at_ms: inner.now_ms(),
        iterations: stats.map_or(0, |s| s.iterations as u64),
        examples: stats.map_or(0, |s| s.examples as u64),
        conflicts: stats.map_or(0, |s| s.conflicts),
        propagations: stats.map_or(0, |s| s.propagations),
        restarts: stats.map_or(0, |s| s.restarts),
        spans,
        trigger: None,
    }
}

fn record_result(c: &Counters, result: &JobResult) {
    match result {
        JobResult::Finished(outcome) => {
            if outcome.served_from_cache() {
                c.cache_served.fetch_add(1, Ordering::Relaxed);
            }
            // Every finished verdict carries its run's statistics now, so
            // failed and expired-budget jobs' partial work is accounted too —
            // the old success-only accumulation under-reported daemon load.
            let stats = outcome.stats();
            c.synth_iterations.fetch_add(stats.iterations as u64, Ordering::Relaxed);
            c.synth_examples.fetch_add(stats.examples as u64, Ordering::Relaxed);
            c.sat_conflicts.fetch_add(stats.conflicts, Ordering::Relaxed);
            c.sat_propagations.fetch_add(stats.propagations, Ordering::Relaxed);
            c.sat_restarts.fetch_add(stats.restarts, Ordering::Relaxed);
            match outcome {
                MapOutcome::Success(_) => {
                    c.successes.fetch_add(1, Ordering::Relaxed);
                }
                MapOutcome::Unsat { .. } => {
                    c.unsats.fetch_add(1, Ordering::Relaxed);
                }
                MapOutcome::Timeout { .. } => {
                    c.timeouts.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        JobResult::Error(_) => {
            c.job_errors.fetch_add(1, Ordering::Relaxed);
        }
        JobResult::DeadlineExpired => {
            c.deadline_expired.fetch_add(1, Ordering::Relaxed);
        }
        JobResult::Cancelled => {
            c.cancelled.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn stats_response(inner: &Inner, id: Option<&Json>) -> String {
    let c = &inner.counters;
    let n = |a: &AtomicU64| Json::num(a.load(Ordering::Relaxed) as f64);
    let cache = inner.cache.snapshot();
    let queue_depth = inner.queue.lock().unwrap().heap.len();
    let mut doc = Json::obj([
        ("kind", Json::str("stats")),
        ("uptime_ms", Json::num(inner.started.elapsed().as_secs_f64() * 1e3)),
        ("workers", Json::num(inner.workers as f64)),
        ("queue_depth", Json::num(queue_depth as f64)),
        ("draining", Json::Bool(inner.draining.load(Ordering::SeqCst))),
        (
            "requests",
            Json::obj([
                ("pings", n(&c.pings)),
                ("stats", n(&c.stats_requests)),
                ("trace", n(&c.trace_requests)),
                ("metrics", n(&c.metrics_requests)),
                ("forensics", n(&c.forensics_requests)),
                ("protocol_errors", n(&c.protocol_errors)),
                ("accepted", n(&c.accepted)),
                ("rejected", n(&c.rejected)),
                ("completed", n(&c.completed)),
            ]),
        ),
        (
            "verdicts",
            Json::obj([
                ("success", n(&c.successes)),
                ("unsat", n(&c.unsats)),
                ("timeout", n(&c.timeouts)),
                ("error", n(&c.job_errors)),
                ("deadline_expired", n(&c.deadline_expired)),
                ("cancelled", n(&c.cancelled)),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("hits", Json::num(cache.hits as f64)),
                ("misses", Json::num(cache.misses as f64)),
                ("stores", Json::num(cache.stores as f64)),
                ("invalidations", Json::num(cache.invalidations as f64)),
                ("evictions", Json::num(cache.evictions as f64)),
                ("entries", Json::num(inner.cache.len() as f64)),
                (
                    "capacity",
                    inner.cache.capacity().map_or(Json::Null, |cap| Json::num(cap as f64)),
                ),
                ("served", n(&c.cache_served)),
            ]),
        ),
        (
            "synthesis",
            Json::obj([("iterations", n(&c.synth_iterations)), ("examples", n(&c.synth_examples))]),
        ),
        (
            "solver",
            Json::obj([
                ("conflicts", n(&c.sat_conflicts)),
                ("propagations", n(&c.sat_propagations)),
                ("restarts", n(&c.sat_restarts)),
            ]),
        ),
        (
            "latency",
            Json::obj([
                ("request_us", crate::tracefmt::histogram_json(&c.request_latency_us.snapshot())),
                ("queue_wait_us", crate::tracefmt::histogram_json(&c.queue_wait_us.snapshot())),
            ]),
        ),
        ("rates", rates_json(inner)),
        (
            "trace",
            Json::obj([
                ("enabled", Json::Bool(lr_trace::enabled())),
                ("spans_dropped", Json::num(lr_trace::counter_value("trace_spans_dropped") as f64)),
            ]),
        ),
        (
            "forensics",
            match &inner.recorder {
                None => Json::obj([("active", Json::Bool(false))]),
                Some(rec) => Json::obj([
                    ("active", Json::Bool(true)),
                    ("bundles_written", Json::num(rec.bundles_written() as f64)),
                    ("bundle_errors", Json::num(rec.bundle_errors() as f64)),
                    ("retained", Json::num(rec.retained() as f64)),
                    (
                        "slow_ms",
                        rec.slow_threshold()
                            .map_or(Json::Null, |d| Json::num(d.as_secs_f64() * 1e3)),
                    ),
                ]),
            },
        ),
    ]);
    if let (Json::Obj(map), Some(id)) = (&mut doc, id) {
        map.insert("id".to_string(), id.clone());
    }
    doc.render()
}

/// The windowed-rate section of `stats`: current load over the last 1/10/60
/// seconds, plus the windowed latency quantiles — as opposed to the lifetime
/// aggregates everywhere else in the response.
fn rates_json(inner: &Inner) -> Json {
    let now = inner.now_ms();
    let rates = inner.rates.lock().unwrap();
    let windows = |c: &RollingCounter| {
        Json::obj([
            ("per_sec_1s", Json::num(c.rate_per_sec(now, 1_000))),
            ("per_sec_10s", Json::num(c.rate_per_sec(now, 10_000))),
            ("per_sec_60s", Json::num(c.rate_per_sec(now, 60_000))),
        ])
    };
    Json::obj([
        ("completed", windows(&rates.completed)),
        ("rejected", windows(&rates.rejected)),
        (
            "latency_us_10s",
            crate::tracefmt::histogram_json(&rates.latency_us.windowed(now, 10_000)),
        ),
    ])
}

/// Renders the whole metrics surface in OpenMetrics text format: the
/// `lr_trace` registry (prefixed `lakeroad_`), the daemon's lifetime request
/// and verdict counters, cache and queue gauges, the latency histograms, and
/// the windowed rates. The text rides inside the usual JSON frame so the
/// protocol stays uniform; an HTTP bridge can serve `text` verbatim with the
/// given `content_type`.
fn metrics_response(inner: &Inner, id: Option<&Json>) -> String {
    let c = &inner.counters;
    let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let mut w = OpenMetricsWriter::new();

    for (kind, counter) in [
        ("ping", &c.pings),
        ("stats", &c.stats_requests),
        ("trace", &c.trace_requests),
        ("metrics", &c.metrics_requests),
        ("forensics", &c.forensics_requests),
        ("protocol_error", &c.protocol_errors),
    ] {
        w.counter("lakeroad_daemon_requests", &[("kind", kind)], load(counter));
    }
    for (outcome, counter) in
        [("accepted", &c.accepted), ("rejected", &c.rejected), ("completed", &c.completed)]
    {
        w.counter("lakeroad_daemon_jobs", &[("outcome", outcome)], load(counter));
    }
    for (verdict, counter) in [
        ("success", &c.successes),
        ("unsat", &c.unsats),
        ("timeout", &c.timeouts),
        ("error", &c.job_errors),
        ("deadline_expired", &c.deadline_expired),
        ("cancelled", &c.cancelled),
    ] {
        w.counter("lakeroad_daemon_verdicts", &[("verdict", verdict)], load(counter));
    }
    let cache = inner.cache.snapshot();
    for (event, value) in [
        ("hit", cache.hits),
        ("miss", cache.misses),
        ("store", cache.stores),
        ("invalidation", cache.invalidations),
        ("eviction", cache.evictions),
        ("served", load(&c.cache_served)),
    ] {
        w.counter("lakeroad_daemon_cache_events", &[("event", event)], value);
    }
    for (stage, counter) in [
        ("iterations", &c.synth_iterations),
        ("examples", &c.synth_examples),
        ("conflicts", &c.sat_conflicts),
        ("propagations", &c.sat_propagations),
        ("restarts", &c.sat_restarts),
    ] {
        w.counter("lakeroad_daemon_synthesis", &[("counter", stage)], load(counter));
    }
    w.gauge("lakeroad_daemon_queue_depth", &[], inner.queue.lock().unwrap().heap.len() as u64);
    w.gauge("lakeroad_daemon_workers", &[], inner.workers as u64);
    w.gauge("lakeroad_daemon_draining", &[], u64::from(inner.draining.load(Ordering::SeqCst)));
    w.gauge("lakeroad_daemon_cache_entries", &[], inner.cache.len() as u64);
    w.gauge_f64("lakeroad_daemon_uptime_seconds", &[], inner.started.elapsed().as_secs_f64());

    {
        let now = inner.now_ms();
        let rates = inner.rates.lock().unwrap();
        for (window, ms) in [("1s", 1_000), ("10s", 10_000), ("60s", 60_000)] {
            let lbl = [("window", window)];
            w.gauge_f64(
                "lakeroad_daemon_completed_per_sec",
                &lbl,
                rates.completed.rate_per_sec(now, ms),
            );
            w.gauge_f64(
                "lakeroad_daemon_rejected_per_sec",
                &lbl,
                rates.rejected.rate_per_sec(now, ms),
            );
        }
        w.histogram("lakeroad_daemon_latency_10s_us", &[], &rates.latency_us.windowed(now, 10_000));
    }
    w.histogram("lakeroad_daemon_request_latency_us", &[], &c.request_latency_us.snapshot());
    // The daemon's own queue-wait histogram and the spans-dropped counter are
    // NOT emitted here: the registry snapshot below carries the same families
    // (`daemon.queue_wait_us`, `trace_spans_dropped`) under the `lakeroad_`
    // prefix, and OpenMetrics forbids a family appearing twice.

    if let Some(rec) = &inner.recorder {
        w.counter("lakeroad_daemon_forensics_bundles_written", &[], rec.bundles_written());
        w.counter("lakeroad_daemon_forensics_bundle_errors", &[], rec.bundle_errors());
        w.gauge("lakeroad_daemon_forensics_retained", &[], rec.retained() as u64);
    }

    // The registry last: per-stage counters, gauges, and stage-latency
    // histograms recorded by the instrumented mapping stack itself.
    w.snapshot("lakeroad_", &lr_trace::metrics_snapshot());

    let mut doc = Json::obj([
        ("kind", Json::str("metrics")),
        ("content_type", Json::str("application/openmetrics-text; version=1.0.0")),
        ("text", Json::str(w.finish())),
    ]);
    if let (Json::Obj(map), Some(id)) = (&mut doc, id) {
        map.insert("id".to_string(), id.clone());
    }
    doc.render()
}

/// Answers `{"kind":"forensics"}`: with an `id`, the full record (header +
/// span tree) of the newest retained request with that correlation id; without
/// one, the listing of retained records and on-disk bundles.
fn forensics_response(inner: &Inner, id: Option<&Json>) -> String {
    let Some(recorder) = &inner.recorder else {
        return error_response(id, "forensics are not enabled (--slow-ms / --forensics-dir)");
    };
    let mut doc = match id {
        Some(wanted) => match recorder.fetch(wanted) {
            Some(record) => {
                let mut doc = Json::obj([("kind", Json::str("forensics"))]);
                if let (Json::Obj(map), Json::Obj(fields)) = (&mut doc, record) {
                    for (k, v) in fields {
                        map.insert(k, v);
                    }
                }
                doc
            }
            None => return error_response(id, "no forensics record with that id"),
        },
        None => {
            let mut doc = Json::obj([("kind", Json::str("forensics"))]);
            if let (Json::Obj(map), Json::Obj(fields)) = (&mut doc, recorder.list_json()) {
                for (k, v) in fields {
                    map.insert(k, v);
                }
            }
            doc
        }
    };
    if let (Json::Obj(map), Some(id)) = (&mut doc, id) {
        map.insert("id".to_string(), id.clone());
    }
    doc.render()
}

fn persist_loop(inner: &Inner) {
    let path = inner.persist_path.as_ref().expect("persister only runs with a path");
    let mut stopped = inner.persist_stop.lock().unwrap();
    loop {
        if *stopped {
            break;
        }
        let (guard, _timeout) =
            inner.persist_cv.wait_timeout(stopped, inner.persist_interval).unwrap();
        stopped = guard;
        if !*stopped {
            // Periodic snapshot; the atomic save means a torn write can never
            // replace the previous good file.
            let _ = inner.cache.save(path);
        }
    }
    drop(stopped);
    // Final snapshot only after every admitted job has finished, so the
    // verdicts the last jobs computed survive the restart.
    wait_for_workers_idle(inner);
    let _ = inner.cache.save(path);
}

/// Blocks until the queue is empty and no job is executing, polling the
/// completion counters (drain-path only, so polling is fine).
fn wait_for_workers_idle(inner: &Inner) {
    loop {
        let queue_empty = inner.queue.lock().unwrap().heap.is_empty();
        let accepted = inner.counters.accepted.load(Ordering::SeqCst);
        let done = inner.counters.completed.load(Ordering::SeqCst);
        if queue_empty && accepted == done {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// A small synchronous client for the daemon protocol, used by the CLI,
/// the integration tests, and the `exp_daemon` benchmark.
pub struct DaemonClient {
    stream: TcpStream,
}

impl DaemonClient {
    /// Connects to a daemon.
    ///
    /// # Errors
    /// Socket errors from `TcpStream::connect`.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<DaemonClient> {
        Ok(DaemonClient { stream: TcpStream::connect(addr)? })
    }

    /// Sends one request frame without waiting for the response (pipelining;
    /// correlate responses by `id`).
    ///
    /// # Errors
    /// Framing and socket errors.
    pub fn send(&mut self, payload: &str) -> io::Result<()> {
        write_frame(&mut self.stream, payload)
    }

    /// Receives one response frame; `None` when the daemon closed the
    /// connection.
    ///
    /// # Errors
    /// Framing/socket errors, or a response that is not valid JSON.
    pub fn recv(&mut self) -> io::Result<Option<Json>> {
        match read_frame(&mut self.stream)? {
            None => Ok(None),
            Some(text) => Json::parse(&text)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
        }
    }

    /// Sends one request and waits for the next response frame.
    ///
    /// # Errors
    /// As [`DaemonClient::send`]/[`DaemonClient::recv`], plus `UnexpectedEof`
    /// if the daemon closed the connection instead of answering.
    pub fn request(&mut self, payload: &str) -> io::Result<Json> {
        self.send(payload)?;
        self.recv()?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })
    }
}
