//! Cache-key soundness.
//!
//! The content-addressed cache is only sound if (1) keys are *stable* — the
//! same spec always addresses the same entry, across saturations and across
//! processes — and (2) hits are *verified* — a replayed program is checked
//! against the requesting spec before it is served, so a colliding or stale
//! entry can never produce a wrong mapping. The properties here pin both down
//! over randomly generated well-formed programs and over adversarially
//! poisoned cache entries.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use lakeroad::cache::spec_fingerprint;
use lakeroad::{map_design, CacheKey, CachedOutcome, MapCache, MapConfig, Template};
use lr_arch::Architecture;
use lr_bv::BitVec;
use lr_egraph::{Limits, StopReason};
use lr_ir::{BvOp, Node, Prog, ProgBuilder};
use lr_serve::{random_program, SynthCache};
use proptest::prelude::*;

/// Wraps a program's root in an algebraic disguise that saturation removes:
/// `root + 0`, `-(-root)`, or `root - (x - x)` over a fresh use of an input.
fn disguise(prog: &Prog, variant: usize) -> Prog {
    let width = prog.width(prog.root());
    // Rebuild the program node-for-node on top of a fresh builder, then wrap.
    let mut b = ProgBuilder::with_base_id(prog.name(), prog.max_id().map(|m| m + 1).unwrap_or(0));
    let mut remap: BTreeMap<lr_ir::NodeId, lr_ir::NodeId> = BTreeMap::new();
    // The builder refuses foreign ids, so re-add every node in ascending id
    // order (operands of builder-shaped programs precede their users, except
    // register feedback, which is patched afterwards).
    let mut reg_patches = Vec::new();
    for (id, node) in prog.nodes() {
        let new = match node {
            Node::BV(bv) => b.constant(bv.clone()),
            Node::Var { name, width } => b.input(name, *width),
            Node::Op(op, args) => {
                let args: Vec<_> = args.iter().map(|a| remap[a]).collect();
                match args.len() {
                    1 => b.op1(*op, args[0]),
                    2 => b.op2(*op, args[0], args[1]),
                    _ => b.op3(*op, args[0], args[1], args[2]),
                }
            }
            Node::Reg { data, init } => {
                let reg = b.reg_placeholder(init.width());
                reg_patches.push((reg, *data));
                reg
            }
            Node::Prim(_) | Node::Hole { .. } => unreachable!("generator emits behavioral nodes"),
        };
        remap.insert(id, new);
    }
    for (reg, data) in reg_patches {
        b.set_reg_data(reg, remap[&data]);
    }
    let root = remap[&prog.root()];
    let out = match variant % 3 {
        0 => {
            let zero = b.constant(BitVec::zeros(width));
            b.op2(BvOp::Add, root, zero)
        }
        1 => {
            let neg = b.op1(BvOp::Neg, root);
            b.op1(BvOp::Neg, neg)
        }
        _ => {
            // Reuse the rebuilt `a` input node rather than adding a duplicate.
            let a = *remap
                .iter()
                .find_map(|(old, new)| match prog.node(*old) {
                    Some(Node::Var { name, .. }) if name == "a" => Some(new),
                    _ => None,
                })
                .expect("generated programs always declare input a");
            let ama = b.op2(BvOp::Sub, a, a);
            let z = if width == 8 { ama } else { b.op1(BvOp::ZeroExt { width }, ama) };
            b.op2(BvOp::Sub, root, z)
        }
    };
    b.finish(out)
}

fn key_for(spec: &Prog) -> CacheKey {
    CacheKey::for_mapping(
        spec,
        &Architecture::intel_cyclone10lp(),
        Template::Dsp,
        Duration::from_secs(15),
    )
}

/// A budget tight enough to keep 24 random saturations in CI time. Key
/// *stability* must hold under any fixed limits (the runner is deterministic);
/// the canonical-form *convergence* property additionally rejects runs that
/// stopped on a limit.
const LIMITS: Limits = Limits { max_iterations: 10, max_nodes: 2_500 };

fn saturated(prog: &Prog) -> (Prog, StopReason) {
    let outcome = prog.saturated_with_stats(&LIMITS);
    (outcome.prog, outcome.stats.stop)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Key stability: saturating the same program twice — two independent
    /// e-graphs — must yield the same fingerprint, and re-saturating the
    /// canonical form must be a fixpoint for the key.
    #[test]
    fn keys_are_stable_across_independent_saturations(
        seed in 0u64..=u64::MAX,
        len in 1usize..9,
    ) {
        let prog = random_program(seed, "p", len);
        let (canon1, _) = saturated(&prog);
        let (canon2, _) = saturated(&prog);
        let (k1, k2) = (key_for(&canon1), key_for(&canon2));
        prop_assert_eq!(k1, k2, "two saturations of one spec disagree");
        let (recanon, stop) = saturated(&canon1);
        // A limit-stopped first pass may leave rewriting headroom; only a truly
        // saturated form owes key idempotence.
        if stop == StopReason::Saturated {
            prop_assert_eq!(k1, key_for(&recanon), "saturation is not a key fixpoint");
        }
    }

    /// The same stability property over the HDL fuzz population: elaborated
    /// mini-Verilog designs (mixed widths, shifts, selects, registers) are a
    /// far rougher key surface than the straight-line generator above.
    #[test]
    fn fuzz_population_keys_are_stable(seed in 0u64..=u64::MAX) {
        let src = lr_hdl::fuzz::generate_module(seed);
        let prog = lr_hdl::parse_and_elaborate(&src)
            .expect("fuzz modules elaborate by construction");
        let (canon1, _) = saturated(&prog);
        let (canon2, _) = saturated(&prog);
        prop_assert_eq!(key_for(&canon1), key_for(&canon2), "two saturations disagree");
    }

    /// Semantically-identical specs that saturate to the same canonical form
    /// share one cache entry: an algebraically disguised copy of a random
    /// program fingerprints identically after canonicalization.
    #[test]
    fn disguised_specs_share_a_key(
        seed in 0u64..=u64::MAX,
        len in 1usize..9,
        variant in 0usize..3,
    ) {
        let prog = random_program(seed, "p", len);
        let disguised = disguise(&prog, variant);
        let (base, base_stop) = saturated(&prog);
        let (wrapped, wrapped_stop) = saturated(&disguised);
        // The claim is conditional on both runs truly saturating: a run that
        // stopped on a node/iteration limit explored rule-application-order-
        // dependent subsets and owes no canonical form.
        if base_stop != StopReason::Saturated || wrapped_stop != StopReason::Saturated {
            return Err(proptest::TestCaseError::reject("saturation hit a limit"));
        }
        prop_assert_eq!(
            spec_fingerprint(&base),
            spec_fingerprint(&wrapped),
            "disguise changed the canonical fingerprint"
        );
        prop_assert_eq!(key_for(&base), key_for(&wrapped));
    }
}

/// End to end: mapping a disguised twin of a cached spec is served from the
/// twin's entry, and the replayed implementation is verified against the
/// *requesting* spec.
#[test]
fn disguised_twin_is_served_from_one_entry_with_a_verified_replay() {
    let mut b = ProgBuilder::new("mul_plain");
    let a = b.input("a", 8);
    let x = b.input("b", 8);
    let out = b.op2(BvOp::Mul, a, x);
    let plain = b.finish(out);

    // 0 − (a · (0 − b)) ≡ a · b.
    let mut b = ProgBuilder::new("mul_disguised");
    let a = b.input("a", 8);
    let x = b.input("b", 8);
    let zero = b.constant_u64(0, 8);
    let nb = b.op2(BvOp::Sub, zero, x);
    let prod = b.op2(BvOp::Mul, a, nb);
    let out = b.op2(BvOp::Sub, zero, prod);
    let disguised = b.finish(out);

    let arch = Architecture::intel_cyclone10lp();
    let cache = Arc::new(SynthCache::new());
    let shared: Arc<dyn MapCache> = Arc::<SynthCache>::clone(&cache);
    let config =
        MapConfig::single_solver().with_timeout(Duration::from_secs(30)).with_cache(shared);

    let first = map_design(&plain, Template::Dsp, &arch, &config).unwrap();
    assert!(first.is_success() && !first.served_from_cache());
    let second = map_design(&disguised, Template::Dsp, &arch, &config).unwrap();
    assert!(second.served_from_cache(), "canonical twin must hit the shared entry");
    let mapped = second.success().unwrap();
    assert!(mapped.from_cache);
    assert!(mapped.stats.from_cache);
    assert_eq!(mapped.iterations, 0);
    assert!(mapped.resources.is_single_dsp());
    // The replay was verified against the *disguised* spec; cross-check again.
    for (av, bv) in [(0u64, 0u64), (3, 5), (255, 254), (17, 200)] {
        let env = lr_ir::StreamInputs::from_constants([
            ("a".to_string(), BitVec::from_u64(av, 8)),
            ("b".to_string(), BitVec::from_u64(bv, 8)),
        ]);
        assert_eq!(
            disguised.interp(&env, 0).unwrap(),
            mapped.implementation.interp(&env, 0).unwrap(),
        );
    }
    let snap = cache.snapshot();
    assert_eq!(snap.stores, 1, "one canonical entry serves both spellings");
    assert_eq!(snap.hits, 1);
    assert_eq!(cache.len(), 1);
}

/// Cache addressing uses the *requested* budget, not a dynamically shrunk
/// solver budget: a mapping whose wall-clock remainder was clamped (deadline,
/// auto-template loop) still hits the entry stored under the original tier.
#[test]
fn clamped_solver_budgets_keep_the_requested_cache_tier() {
    let mut b = ProgBuilder::new("mul_budget");
    let a = b.input("a", 8);
    let x = b.input("b", 8);
    let out = b.op2(BvOp::Mul, a, x);
    let spec = b.finish(out);

    let arch = Architecture::intel_cyclone10lp();
    let cache = Arc::new(SynthCache::new());
    let shared: Arc<dyn MapCache> = Arc::<SynthCache>::clone(&cache);
    // Cold: synthesized and stored under the 15 s tier.
    let requested =
        MapConfig::single_solver().with_timeout(Duration::from_secs(15)).with_cache(shared);
    assert!(map_design(&spec, Template::Dsp, &arch, &requested).unwrap().is_success());
    // Warm lookalike: the solver budget was clamped into a *different* tier
    // (2 s), but `cache_budget` pins the advertised one — must still hit.
    let clamped = MapConfig {
        timeout: Duration::from_secs(2),
        cache_budget: Some(Duration::from_secs(15)),
        ..requested.clone()
    };
    let served = map_design(&spec, Template::Dsp, &arch, &clamped).unwrap();
    assert!(served.served_from_cache(), "clamped budget must not change the key tier");
    // Without the pin, the 2 s tier is a genuine miss (and would re-synthesize).
    let unpinned = MapConfig { cache_budget: None, ..clamped };
    let miss = map_design(&spec, Template::Dsp, &arch, &unpinned).unwrap();
    assert!(!miss.served_from_cache());
}

/// A poisoned entry — a stored hole assignment that no longer implements the
/// spec — must fail replay verification, be invalidated, and fall back to real
/// synthesis with a correct result.
#[test]
fn stale_entries_fail_verification_and_fall_back_to_synthesis() {
    let mut b = ProgBuilder::new("add5");
    let a = b.input("a", 8);
    let x = b.input("b", 8);
    let out = b.op2(BvOp::Mul, a, x);
    let spec = b.finish(out);

    let arch = Architecture::intel_cyclone10lp();
    let cache = Arc::new(SynthCache::new());
    let shared: Arc<dyn MapCache> = Arc::<SynthCache>::clone(&cache);
    let config =
        MapConfig::single_solver().with_timeout(Duration::from_secs(30)).with_cache(shared);

    // Synthesize once to learn the real key and hole names…
    let honest = map_design(&spec, Template::Dsp, &arch, &config).unwrap();
    assert!(honest.is_success());
    let (key, stored) = cache.entries().into_iter().next().unwrap();
    let CachedOutcome::Success { holes } = stored else {
        panic!("successful mapping must store a success entry")
    };
    // …then poison the entry: flip a port-selection hole to a wrong-but-in-
    // domain value, so replay type-checks yet computes the wrong function.
    let mut poisoned = holes.clone();
    let victim = poisoned
        .iter()
        .find(|(name, _)| name.ends_with("A_SEL") || name.ends_with("B_SEL"))
        .map(|(name, value)| (name.clone(), value.clone()))
        .expect("DSP entries carry selection holes");
    let flipped = if victim.1 == BitVec::from_u64(1, victim.1.width()) {
        BitVec::from_u64(0, victim.1.width())
    } else {
        BitVec::from_u64(1, victim.1.width())
    };
    poisoned.insert(victim.0, flipped);
    cache.store(key, CachedOutcome::Success { holes: poisoned });

    let served = map_design(&spec, Template::Dsp, &arch, &config).unwrap();
    let mapped = served.success().expect("fallback synthesis must succeed");
    assert!(!mapped.from_cache, "a failed replay must not be served");
    for (av, bv) in [(3u64, 5u64), (255, 254)] {
        let env = lr_ir::StreamInputs::from_constants([
            ("a".to_string(), BitVec::from_u64(av, 8)),
            ("b".to_string(), BitVec::from_u64(bv, 8)),
        ]);
        assert_eq!(spec.interp(&env, 0).unwrap(), mapped.implementation.interp(&env, 0).unwrap(),);
    }
    let snap = cache.snapshot();
    assert_eq!(snap.invalidations, 1, "the poisoned entry must be dropped");
    // The fallback re-stored an honest entry under the same key; a fresh
    // lookup now replays successfully.
    let replayed = map_design(&spec, Template::Dsp, &arch, &config).unwrap();
    assert!(replayed.served_from_cache());
}
