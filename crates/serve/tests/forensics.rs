//! Integration tests for the flight recorder and the new observability
//! surfaces: real TCP connections against in-process [`Daemon`] instances,
//! with `--slow-ms 0` forensics, worker-panic injection, and the
//! `metrics`/`forensics` protocol kinds.

use std::path::{Path, PathBuf};
use std::time::Duration;

use lakeroad::MapConfig;
use lr_serve::{Daemon, DaemonClient, DaemonConfig, ForensicsConfig, Json};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lr_forensics_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn forensic_config(dir: &Path) -> DaemonConfig {
    DaemonConfig {
        workers: 2,
        map: MapConfig::single_solver().with_timeout(Duration::from_secs(30)),
        forensics: ForensicsConfig {
            dir: Some(dir.to_path_buf()),
            // Threshold 0: every completed request breaches it, so every
            // request leaves a bundle — the `--slow-ms 0` firehose mode.
            slow: Some(Duration::ZERO),
            keep: 16,
            ring: 16,
        },
        ..DaemonConfig::default()
    }
}

fn map_request(id: u64) -> String {
    format!(
        "{{\"kind\":\"map\",\"id\":{id},\"arch\":\"intel\",\"template\":\"dsp\",\
         \"bench\":\"mul_w8_s0\"}}"
    )
}

fn kind(doc: &Json) -> &str {
    doc.get(&["kind"]).and_then(Json::as_str).unwrap_or("?")
}

#[test]
fn slow_ms_zero_dumps_a_retrievable_bundle_per_request() {
    let dir = temp_dir("slow0");
    let daemon = Daemon::bind(forensic_config(&dir)).unwrap();
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();

    let doc = client.request(&map_request(7)).unwrap();
    assert_eq!(kind(&doc), "mapped", "{}", doc.render());
    assert_eq!(doc.get(&["verdict"]).and_then(Json::as_str), Some("success"));

    // The listing shows the record and the on-disk bundle.
    let listing = client.request("{\"kind\":\"forensics\"}").unwrap();
    assert_eq!(kind(&listing), "forensics", "{}", listing.render());
    let records = listing.get(&["records"]).and_then(Json::as_arr).unwrap();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].get(&["trigger"]).and_then(Json::as_str), Some("slow"));
    assert_eq!(listing.get(&["bundles_written"]).and_then(Json::as_f64), Some(1.0));
    let bundles = listing.get(&["bundles"]).and_then(Json::as_arr).unwrap();
    assert_eq!(bundles.len(), 1);

    // Fetch by correlation id: the full record with span tree and counters.
    let full = client.request("{\"kind\":\"forensics\",\"id\":7}").unwrap();
    assert_eq!(kind(&full), "forensics", "{}", full.render());
    assert_eq!(full.get(&["verdict"]).and_then(Json::as_str), Some("success"));
    assert_eq!(full.get(&["arch"]).and_then(Json::as_str), Some("Intel Cyclone 10 LP"));
    assert_eq!(full.get(&["template"]).and_then(Json::as_str), Some("dsp"));
    let design = full.get(&["design"]).and_then(Json::as_str).unwrap();
    assert_eq!(design.len(), 32, "32-hex-digit design hash: {design}");
    assert!(full.get(&["counters", "iterations"]).and_then(Json::as_f64).unwrap() >= 1.0);
    let spans = full.get(&["spans", "traceEvents"]).and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = spans.iter().filter_map(|e| e.get(&["name"])?.as_str()).collect();
    assert!(names.contains(&"daemon-request"), "span tree captured: {names:?}");
    assert!(names.contains(&"cegis"), "synthesis spans attributed to the job: {names:?}");

    // An unknown correlation id is a protocol error, not a crash.
    let missing = client.request("{\"kind\":\"forensics\",\"id\":999}").unwrap();
    assert_eq!(kind(&missing), "error");

    // The bundle on disk is JSONL: a header line plus span lines.
    let bundle_name = bundles[0].as_str().unwrap();
    assert!(bundle_name.contains("seq000000-slow"), "{bundle_name}");
    let text = std::fs::read_to_string(dir.join(bundle_name)).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "header + spans: {}", lines.len());
    let header = Json::parse(lines[0]).unwrap();
    assert_eq!(header.get(&["id"]).and_then(Json::as_f64), Some(7.0));
    for span_line in &lines[1..] {
        Json::parse(span_line).expect("every span line parses");
    }

    let summary = daemon.shutdown_and_wait();
    assert_eq!(summary.lost(), 0);
    // The drain wrote a final whole-ring bundle alongside the per-request one.
    let drained: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains("drain"))
        .collect();
    assert_eq!(drained.len(), 1, "final sync bundle: {drained:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_panic_is_contained_and_lands_in_a_bundle_with_its_span_tree() {
    let dir = temp_dir("panic");
    let daemon = Daemon::bind(forensic_config(&dir)).unwrap();
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();

    // The daemon names bench jobs `bench:<name>`; poisoning that name makes
    // the worker panic inside `execute_job`'s catch_unwind, before any
    // synthesis.
    lr_serve::set_poison_job(Some("bench:mul_w9_s0"));
    let poisoned = "{\"kind\":\"map\",\"id\":13,\"arch\":\"intel\",\"template\":\"dsp\",\
         \"bench\":\"mul_w9_s0\"}";
    let doc = client.request(poisoned).unwrap();
    lr_serve::set_poison_job(None);
    assert_eq!(kind(&doc), "mapped", "{}", doc.render());
    assert_eq!(doc.get(&["verdict"]).and_then(Json::as_str), Some("error"));

    // The daemon survived: the next request on the same connection works.
    let ok = client.request(&map_request(14)).unwrap();
    assert_eq!(ok.get(&["verdict"]).and_then(Json::as_str), Some("success"));

    let full = client.request("{\"kind\":\"forensics\",\"id\":13}").unwrap();
    assert_eq!(full.get(&["verdict"]).and_then(Json::as_str), Some("error"));
    assert_eq!(full.get(&["panicked"]).and_then(Json::as_bool), Some(true));
    assert_eq!(full.get(&["trigger"]).and_then(Json::as_str), Some("panic"));
    let error = full.get(&["error"]).and_then(Json::as_str).unwrap();
    assert!(error.contains("panicked"), "{error}");
    let spans = full.get(&["spans", "traceEvents"]).and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = spans.iter().filter_map(|e| e.get(&["name"])?.as_str()).collect();
    assert!(names.contains(&"daemon-request"), "panicked job still has spans: {names:?}");

    // And the panic bundle is on disk.
    let panics: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains("panic"))
        .collect();
    assert_eq!(panics.len(), 1, "{panics:?}");

    let summary = daemon.shutdown_and_wait();
    assert_eq!(summary.lost(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn metrics_exposition_is_openmetrics_text_and_stats_report_rates() {
    let dir = temp_dir("metrics");
    let daemon = Daemon::bind(forensic_config(&dir)).unwrap();
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();

    let doc = client.request(&map_request(1)).unwrap();
    assert_eq!(doc.get(&["verdict"]).and_then(Json::as_str), Some("success"));

    let metrics = client.request("{\"kind\":\"metrics\",\"id\":42}").unwrap();
    assert_eq!(kind(&metrics), "metrics");
    assert_eq!(metrics.get(&["id"]).and_then(Json::as_f64), Some(42.0));
    assert!(metrics
        .get(&["content_type"])
        .and_then(Json::as_str)
        .unwrap()
        .starts_with("application/openmetrics-text"));
    let text = metrics.get(&["text"]).and_then(Json::as_str).unwrap();
    assert!(text.ends_with("# EOF\n"), "terminated exposition");
    assert!(text.contains("# TYPE lakeroad_daemon_requests counter"), "{text}");
    assert!(
        text.contains("lakeroad_daemon_jobs_total{outcome=\"completed\"} 1"),
        "completed job counted"
    );
    assert!(text.contains("lakeroad_daemon_request_latency_us_bucket"), "histogram buckets");
    assert!(text.contains("lakeroad_daemon_forensics_bundles_written_total 1"), "{text}");

    // Every line is a comment, blank, or `name{labels} value`.
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let value = line.rsplit(' ').next().unwrap();
        assert!(value.parse::<f64>().is_ok(), "unparseable sample line: {line}");
    }

    let stats = client.request("{\"kind\":\"stats\"}").unwrap();
    assert!(stats.get(&["rates", "completed", "per_sec_10s"]).and_then(Json::as_f64).is_some());
    assert!(
        stats.get(&["rates", "completed", "per_sec_10s"]).and_then(Json::as_f64).unwrap() > 0.0,
        "the completed request shows up in the 10s window"
    );
    assert_eq!(stats.get(&["forensics", "active"]).and_then(Json::as_bool), Some(true));
    assert_eq!(stats.get(&["trace", "enabled"]).and_then(Json::as_bool), Some(true));
    assert_eq!(stats.get(&["requests", "metrics"]).and_then(Json::as_f64), Some(1.0));

    let summary = daemon.shutdown_and_wait();
    assert_eq!(summary.lost(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn forensics_request_without_a_recorder_is_an_error() {
    let daemon = Daemon::bind(DaemonConfig {
        workers: 1,
        map: MapConfig::single_solver().with_timeout(Duration::from_secs(30)),
        ..DaemonConfig::default()
    })
    .unwrap();
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();
    let doc = client.request("{\"kind\":\"forensics\"}").unwrap();
    assert_eq!(kind(&doc), "error");
    assert!(doc.get(&["error"]).and_then(Json::as_str).unwrap_or("").contains("not enabled"));
    let summary = daemon.shutdown_and_wait();
    assert_eq!(summary.lost(), 0);
}
