//! Integration tests for the resident daemon: live TCP connections against
//! in-process [`Daemon`] instances on ephemeral ports.

use std::time::Duration;

use lakeroad::MapConfig;
use lr_serve::{Daemon, DaemonClient, DaemonConfig, Json};

fn quick_config() -> DaemonConfig {
    DaemonConfig {
        workers: 2,
        map: MapConfig::single_solver().with_timeout(Duration::from_secs(30)),
        ..DaemonConfig::default()
    }
}

fn map_request(id: u64) -> String {
    format!(
        "{{\"kind\":\"map\",\"id\":{id},\"arch\":\"intel\",\"template\":\"dsp\",\
         \"bench\":\"mul_w8_s0\"}}"
    )
}

fn kind(doc: &Json) -> &str {
    doc.get(&["kind"]).and_then(Json::as_str).unwrap_or("?")
}

#[test]
fn malformed_frames_earn_errors_without_killing_the_connection() {
    let daemon = Daemon::bind(quick_config()).unwrap();
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();

    let doc = client.request("{\"kind\":\"ping\",\"id\":\"a\"}").unwrap();
    assert_eq!(kind(&doc), "pong");
    assert_eq!(doc.get(&["id"]).and_then(Json::as_str), Some("a"));

    // Broken JSON, a missing kind, an unknown kind, and a bad map request all
    // come back as error responses on the SAME connection...
    for bad in [
        "this is not json",
        "{\"id\":1}",
        "{\"kind\":\"frobnicate\"}",
        "{\"kind\":\"map\",\"arch\":\"pdp11\",\"bench\":\"mul_w8_s0\"}",
    ] {
        let doc = client.request(bad).unwrap();
        assert_eq!(kind(&doc), "error", "{bad}");
    }
    // ...which stays fully usable afterwards.
    let doc = client.request("{\"kind\":\"ping\",\"id\":\"b\"}").unwrap();
    assert_eq!(kind(&doc), "pong");
    assert_eq!(doc.get(&["id"]).and_then(Json::as_str), Some("b"));

    let doc = client.request("{\"kind\":\"stats\"}").unwrap();
    assert_eq!(kind(&doc), "stats");
    assert_eq!(doc.get(&["requests", "pings"]).and_then(Json::as_f64), Some(2.0));
    assert_eq!(doc.get(&["requests", "protocol_errors"]).and_then(Json::as_f64), Some(4.0));

    let summary = daemon.shutdown_and_wait();
    assert_eq!(summary.lost(), 0);
}

#[test]
fn concurrent_clients_share_one_warm_cache_and_drain_with_zero_lost_jobs() {
    let daemon = Daemon::bind(quick_config()).unwrap();
    let addr = daemon.local_addr();

    // Cold phase: one client synthesizes the verdict into the shared cache.
    let mut cold = DaemonClient::connect(addr).unwrap();
    let doc = cold.request(&map_request(0)).unwrap();
    assert_eq!(kind(&doc), "mapped", "{}", doc.render());
    assert_eq!(doc.get(&["verdict"]).and_then(Json::as_str), Some("success"));
    assert_eq!(doc.get(&["from_cache"]).and_then(Json::as_bool), Some(false));

    // Warm phase: N concurrent clients ask for the same mapping; every verdict
    // must be served from the cache the cold client warmed.
    let clients: u64 = 4;
    let warm: Vec<Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                scope.spawn(move || {
                    let mut client = DaemonClient::connect(addr).unwrap();
                    client.request(&map_request(i + 1)).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for doc in &warm {
        assert_eq!(doc.get(&["verdict"]).and_then(Json::as_str), Some("success"));
        assert_eq!(
            doc.get(&["from_cache"]).and_then(Json::as_bool),
            Some(true),
            "{}",
            doc.render()
        );
    }

    let stats = cold.request("{\"kind\":\"stats\"}").unwrap();
    assert_eq!(stats.get(&["cache", "served"]).and_then(Json::as_f64), Some(clients as f64));
    assert!(stats.get(&["cache", "hits"]).and_then(Json::as_f64).unwrap() >= clients as f64);
    assert_eq!(stats.get(&["requests", "accepted"]).and_then(Json::as_f64), Some(5.0));

    // Shutdown over the protocol, then join the daemon from the handle.
    let ack = cold.request("{\"kind\":\"shutdown\"}").unwrap();
    assert_eq!(kind(&ack), "shutting_down");
    let summary = daemon.wait();
    assert_eq!(summary.accepted, 5);
    assert_eq!(summary.completed, 5);
    assert_eq!(summary.lost(), 0);
    assert_eq!(summary.cache_served, clients);
}

#[test]
fn admission_bound_rejects_the_overflow_but_loses_nothing() {
    let config = DaemonConfig {
        workers: 1,
        max_pending_per_client: 1,
        map: MapConfig::single_solver().with_timeout(Duration::from_secs(30)),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::bind(config).unwrap();
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();

    // Pipeline three jobs without reading responses. The handler admits the
    // first and, while it is still running, bounces the rest at the door.
    for id in 0..3 {
        client.send(&map_request(id)).unwrap();
    }
    let mut mapped = 0u64;
    let mut rejected = 0u64;
    for _ in 0..3 {
        let doc = client.recv().unwrap().expect("three responses");
        match kind(&doc) {
            "mapped" => mapped += 1,
            "rejected" => rejected += 1,
            other => panic!("unexpected response kind `{other}`"),
        }
    }
    assert!(mapped >= 1, "the first job must run");
    assert_eq!(mapped + rejected, 3, "every request is answered");

    let summary = daemon.shutdown_and_wait();
    assert_eq!(summary.accepted, mapped);
    assert_eq!(summary.completed, mapped);
    assert_eq!(summary.rejected, rejected);
    assert_eq!(summary.lost(), 0);
}

#[test]
fn submission_relative_deadlines_expire_stale_jobs() {
    let daemon = Daemon::bind(quick_config()).unwrap();
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();
    let doc = client
        .request(
            "{\"kind\":\"map\",\"arch\":\"intel\",\"template\":\"dsp\",\
             \"bench\":\"mul_w8_s0\",\"deadline_s\":0}",
        )
        .unwrap();
    assert_eq!(doc.get(&["verdict"]).and_then(Json::as_str), Some("deadline_expired"));
    let summary = daemon.shutdown_and_wait();
    assert_eq!(summary.lost(), 0);
}

#[test]
fn the_persisted_cache_warm_starts_the_next_daemon() {
    let dir = std::env::temp_dir().join("lr_serve_daemon_persist_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("daemon.lrc");
    let _ = std::fs::remove_file(&path);

    let config = DaemonConfig { persist_path: Some(path.clone()), ..quick_config() };
    let daemon = Daemon::bind(config.clone()).unwrap();
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();
    let doc = client.request(&map_request(0)).unwrap();
    assert_eq!(doc.get(&["from_cache"]).and_then(Json::as_bool), Some(false));
    let summary = daemon.shutdown_and_wait();
    assert!(summary.cache_entries >= 1);
    assert!(path.exists(), "shutdown writes a final snapshot");

    // A fresh daemon over the same snapshot serves the verdict warm.
    let daemon = Daemon::bind(config).unwrap();
    let mut client = DaemonClient::connect(daemon.local_addr()).unwrap();
    let doc = client.request(&map_request(1)).unwrap();
    assert_eq!(doc.get(&["from_cache"]).and_then(Json::as_bool), Some(true), "{}", doc.render());
    let summary = daemon.shutdown_and_wait();
    assert_eq!(summary.lost(), 0);
}
