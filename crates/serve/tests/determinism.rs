//! Scheduler determinism: a batch must produce identical verdicts and resource
//! counts no matter how many workers run it and no matter whether the cache is
//! cold or warm. This is the property that lets `exp_all` parallelize the
//! paper sweeps without changing a single reported number, and it exercises
//! the end-to-end tier (microbenchmark specs through sketch, CEGIS, and
//! resource counting) rather than toy jobs.

use std::sync::Arc;
use std::time::Duration;

use lakeroad::{MapCache, MapConfig, MapOutcome};
use lr_arch::ArchName;
use lr_serve::{run_batch, suite_jobs, BatchOptions, BatchRun, JobResult, SynthCache};

/// The observable outcome of one job: verdict class plus resources — everything
/// a report aggregates. Wall-clock fields are deliberately excluded.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Observed {
    Success { dsps: usize, logic: usize, registers: usize },
    Unsat,
    Timeout,
    Error(String),
    NotRun,
}

fn observe(run: &BatchRun) -> Vec<(String, Observed)> {
    run.records
        .iter()
        .map(|r| {
            let observed = match &r.result {
                JobResult::Finished(MapOutcome::Success(m)) => Observed::Success {
                    dsps: m.resources.dsps,
                    logic: m.resources.logic_elements,
                    registers: m.resources.registers,
                },
                JobResult::Finished(MapOutcome::Unsat { .. }) => Observed::Unsat,
                JobResult::Finished(MapOutcome::Timeout { .. }) => Observed::Timeout,
                JobResult::Error(e) => Observed::Error(e.clone()),
                JobResult::DeadlineExpired | JobResult::Cancelled => Observed::NotRun,
            };
            (r.name.clone(), observed)
        })
        .collect()
}

fn options(workers: usize, cache: Option<&Arc<SynthCache>>) -> BatchOptions {
    let mut map = MapConfig::single_solver().with_timeout(Duration::from_secs(60));
    if let Some(cache) = cache {
        let shared: Arc<dyn MapCache> = Arc::<SynthCache>::clone(cache);
        map = map.with_cache(shared);
    }
    BatchOptions::new(workers, map)
}

/// `--jobs 1` vs `--jobs 8`, cold and warm: four runs of the e2e tier, one
/// answer.
#[test]
fn verdicts_and_resources_are_identical_across_worker_counts_and_cache_states() {
    let mut jobs = suite_jobs(ArchName::IntelCyclone10Lp, 6);
    jobs.extend(suite_jobs(ArchName::LatticeEcp5, 4));

    // Cold at 1 worker and at 8 workers, each with its own untouched cache.
    let cold1_cache = Arc::new(SynthCache::new());
    let cold1 = run_batch(&jobs, &options(1, Some(&cold1_cache)));
    let cold8_cache = Arc::new(SynthCache::new());
    let cold8 = run_batch(&jobs, &options(8, Some(&cold8_cache)));

    // Warm reruns against the caches the cold runs populated.
    let warm1 = run_batch(&jobs, &options(1, Some(&cold1_cache)));
    let warm8 = run_batch(&jobs, &options(8, Some(&cold8_cache)));

    let baseline = observe(&cold1);
    assert!(
        baseline.iter().any(|(_, o)| matches!(o, Observed::Success { .. })),
        "the e2e tier must map something, or the comparison is vacuous"
    );
    for (label, run) in
        [("cold —jobs 8", &cold8), ("warm —jobs 1", &warm1), ("warm —jobs 8", &warm8)]
    {
        assert_eq!(baseline, observe(run), "{label} diverged from cold —jobs 1");
    }

    // The warm runs must have been served entirely from cache (every cold
    // verdict here is cacheable), with every replay verified.
    for (cache, warm) in [(&cold1_cache, &warm1), (&cold8_cache, &warm8)] {
        let snap = cache.snapshot();
        assert_eq!(snap.invalidations, 0, "no replay may fail verification");
        assert_eq!(
            warm.records.len(),
            warm.records
                .iter()
                .filter(|r| r.result.outcome().is_some_and(MapOutcome::served_from_cache))
                .count(),
            "a warm identical batch must be served from the cache"
        );
    }

    // And a batch without any cache agrees too (the cache changes latency, not
    // answers).
    let uncached = run_batch(&jobs, &options(8, None));
    assert_eq!(baseline, observe(&uncached));
}
