// A resize whose width depends on a register feedback path through a wire
// chain — the shape that exercised the old quadratic clone-the-builder width
// helper in `elaborate` (now ProgBuilder::width_of).
module signal_dependent_resize(input clk, input [3:0] a, output reg [7:0] y);
  wire [5:0] w;
  assign w = a + y[3:0];
  always @(posedge clk) y <= w;
endmodule
