// `>>>` / `<<<` used to tokenize as `>>` `>` and die with an opaque parse
// error. All subset values are unsigned, so the arithmetic spellings lower to
// the logical shifts (Verilog semantics for unsigned operands agree).
module arith_shift_unsigned(input [7:0] a, input [2:0] n, output [7:0] y);
  wire [7:0] r;
  assign r = a >>> n;
  assign y = (r <<< 1) ^ (a >> n);
endmodule
