// Reduced from fuzz seed 19: a 1-bit value widened to 87 bits (to match the
// shift amount's concat width) needs an 86-bit zero pad. The emitter used to
// fall back to replication syntax `{{N{1'b0}}, x}` for deltas over 64 bits,
// which the mini-HDL parser cannot re-parse; padding is now chunked into
// 64-bit-capped sized zero literals.
module wide_zext_padding(input [32:0] a, input [53:0] b, output y);
  assign y = 1'b1 >> {a, b};
endmodule
