// Reduced from fuzz seed 2: a register whose next-state wire is computed
// *after* the register in node-id order. The emitter used to interleave the
// `always` block with the assigns in id order, producing structural Verilog
// that referenced `w`'s driver wire before it was assigned — source our own
// frontend rejects as use-before-definition, breaking round-trip closure.
module reg_data_forward_ref(input clk, input [3:0] a, output reg [7:0] y);
  wire [7:0] w;
  assign w = y + a;
  always @(posedge clk) y <= w;
endmodule
