// Sized literals exactly filling their stated width are legal; one bit more
// (4'hFFF, 128'd1) is a parse error rather than a silent truncation. This
// fixture pins the accepting side of that boundary, including the 64-bit cap.
module sized_literal_boundary(input [3:0] a, output [63:0] y);
  wire [3:0] full;
  assign full = a & 4'hf;
  assign y = {60'hfffffffffffffff, full} ^ 64'hffffffffffffffff;
endmodule
