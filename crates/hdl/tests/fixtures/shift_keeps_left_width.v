// The subset's shift rule: the amount is self-determined and the result keeps
// the *left* operand's width. The old lowering widened the result to
// max(lhs, rhs) width, so bits shifted out of the 4-bit lane leaked into the
// 8-bit output (4'b1001 << 1 read back as 18 instead of 2).
module shift_keeps_left_width(input [3:0] a, input [7:0] b, output [7:0] y);
  assign y = a << b;
endmodule
