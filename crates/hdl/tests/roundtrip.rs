//! Round-trip closure of the frontend/backend pair: for any design we can
//! elaborate, `emit_verilog` must produce source that re-parses and
//! re-elaborates to an interpretation-equivalent program.
//!
//! Coverage comes from three directions: the frozen fuzz counterexamples under
//! `fixtures/`, a sweep of the seeded fuzz generator, and every §5.1
//! microbenchmark design (emitted from IR rather than parsed, so this is the
//! emit-side half of the loop over realistic DSP-shaped programs).

use lr_hdl::{check_seed, emit_verilog, interp_equivalent, parse_and_elaborate};

const FIXTURES: &[(&str, &str)] = &[
    ("reg_data_forward_ref", include_str!("fixtures/reg_data_forward_ref.v")),
    ("wide_zext_padding", include_str!("fixtures/wide_zext_padding.v")),
    ("shift_keeps_left_width", include_str!("fixtures/shift_keeps_left_width.v")),
    ("arith_shift_unsigned", include_str!("fixtures/arith_shift_unsigned.v")),
    ("sized_literal_boundary", include_str!("fixtures/sized_literal_boundary.v")),
    ("signal_dependent_resize", include_str!("fixtures/signal_dependent_resize.v")),
];

fn assert_roundtrip(name: &str, spec: &lr_ir::Prog, cycles: u32) {
    let emitted = emit_verilog(spec);
    let reparsed = parse_and_elaborate(&emitted).unwrap_or_else(|e| {
        panic!("{name}: emitted Verilog failed to re-elaborate: {e}\n{emitted}")
    });
    interp_equivalent(spec, &reparsed, 0xF1A7_C0DE, 16, 0, cycles)
        .unwrap_or_else(|e| panic!("{name}: round-trip mismatch: {e}\n{emitted}"));
}

#[test]
fn frozen_fixtures_round_trip() {
    for (name, src) in FIXTURES {
        let spec =
            parse_and_elaborate(src).unwrap_or_else(|e| panic!("{name}: failed to elaborate: {e}"));
        assert_roundtrip(name, &spec, 4);
    }
}

#[test]
fn fuzz_sweep_round_trips() {
    for seed in 0..300 {
        let outcome = check_seed(seed, 8, 4);
        assert!(
            outcome.ok(),
            "seed {seed} failed: {}\nsource:\n{}",
            outcome.failure.unwrap(),
            outcome.source
        );
    }
}

#[test]
fn suite_designs_round_trip() {
    use lakeroad::suite::{suite_for, FULL_WIDTHS};
    use lr_arch::ArchName;
    let mut checked = 0usize;
    for arch in [ArchName::XilinxUltraScalePlus, ArchName::LatticeEcp5, ArchName::IntelCyclone10Lp]
    {
        for mb in suite_for(arch, FULL_WIDTHS) {
            let spec = mb.build();
            assert_roundtrip(&mb.name, &spec, mb.stages + 1);
            checked += 1;
        }
    }
    assert!(checked >= 1000, "suite unexpectedly small: {checked} designs");
}
