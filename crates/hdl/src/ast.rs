//! Abstract syntax for the mini-HDL (a behavioral Verilog subset).

use lr_bv::BitVec;

/// Direction of a module port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// An input port.
    Input,
    /// An output port (optionally a registered output, i.e. `output reg`).
    Output,
}

/// A declared signal: port, internal register, wire, or parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalDecl {
    /// Signal name.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Port direction, if the signal is a port.
    pub dir: Option<PortDir>,
    /// Whether the signal was declared `reg` (or `output reg`).
    pub is_reg: bool,
    /// Whether the signal was declared `parameter`; parameters carry a default.
    pub is_parameter: bool,
    /// Default value for parameters.
    pub default: Option<BitVec>,
}

/// An expression of the mini-HDL.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A sized literal (`8'hff`) or bare decimal literal (width inferred as 32).
    Literal(BitVec),
    /// A reference to a signal.
    Ident(String),
    /// A unary operator: `~`, `-`, `&` (reduction AND), `|` (reduction OR),
    /// `^` (reduction XOR), `!`.
    Unary(UnaryOp, Box<Expr>),
    /// A binary operator.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// The ternary conditional `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// A concatenation `{a, b, c}` (first element is most significant).
    Concat(Vec<Expr>),
    /// A part-select `x[hi:lo]` with constant bounds.
    PartSelect(Box<Expr>, u32, u32),
    /// A bit-select `x[i]` with a constant index.
    BitSelect(Box<Expr>, u32),
    /// A dynamic bit-select `x[i]` where the index is an expression
    /// (lowered to a shift-and-mask).
    DynBitSelect(Box<Expr>, Box<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Bitwise NOT (`~`).
    Not,
    /// Arithmetic negation (`-`).
    Neg,
    /// Logical NOT (`!`), producing 1 bit.
    LogicalNot,
    /// Reduction AND (`&x`).
    RedAnd,
    /// Reduction OR (`|x`).
    RedOr,
    /// Reduction XOR (`^x`).
    RedXor,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Equality (1-bit result).
    Eq,
    /// Disequality (1-bit result).
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
    /// Logical AND (`&&`), 1-bit result.
    LogicalAnd,
    /// Logical OR (`||`), 1-bit result.
    LogicalOr,
}

/// A statement of the mini-HDL.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A continuous assignment `assign lhs = expr;`.
    Assign {
        /// Target signal name.
        lhs: String,
        /// Driving expression.
        rhs: Expr,
    },
    /// A non-blocking assignment `lhs <= expr;` inside an `always @(posedge clk)`.
    NonBlocking {
        /// Target register name.
        lhs: String,
        /// Driving expression (sampled at the clock edge).
        rhs: Expr,
    },
}

/// A parsed module.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleAst {
    /// Module name.
    pub name: String,
    /// All declared signals (ports, regs, wires, parameters).
    pub signals: Vec<SignalDecl>,
    /// Statements, in source order.
    pub statements: Vec<Statement>,
    /// Names of output ports in declaration order.
    pub outputs: Vec<String>,
}

impl ModuleAst {
    /// Looks up a signal declaration by name.
    pub fn signal(&self, name: &str) -> Option<&SignalDecl> {
        self.signals.iter().find(|s| s.name == name)
    }

    /// Names of input ports (excluding `clk`) in declaration order.
    pub fn data_inputs(&self) -> Vec<&SignalDecl> {
        self.signals.iter().filter(|s| s.dir == Some(PortDir::Input) && s.name != "clk").collect()
    }
}
