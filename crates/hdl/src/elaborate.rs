//! Elaboration of parsed mini-HDL modules into ℒbeh programs, including the
//! "semantics extraction from HDL" entry point (§4.4).

use std::collections::HashMap;
use std::fmt;

use lr_bv::BitVec;
use lr_ir::{BvOp, NodeId, Prog, ProgBuilder};

use crate::ast::{BinaryOp, Expr, ModuleAst, PortDir, Statement, UnaryOp};
use crate::parser::{parse_module, ParseError};

/// An error produced during elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElaborateError {
    /// The module has no data output.
    NoOutput,
    /// The module's output is never assigned.
    OutputNeverAssigned(String),
    /// A signal is referenced before any driver for it has been elaborated.
    UseBeforeDefinition(String),
    /// A signal is referenced but never declared.
    UndeclaredSignal(String),
    /// A syntax error from the parser (for [`parse_and_elaborate`]).
    Parse(String),
}

impl fmt::Display for ElaborateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElaborateError::NoOutput => write!(f, "module has no output port"),
            ElaborateError::OutputNeverAssigned(s) => write!(f, "output `{s}` is never assigned"),
            ElaborateError::UseBeforeDefinition(s) => {
                write!(f, "signal `{s}` is used before it is driven")
            }
            ElaborateError::UndeclaredSignal(s) => write!(f, "signal `{s}` is not declared"),
            ElaborateError::Parse(s) => write!(f, "{s}"),
        }
    }
}

impl std::error::Error for ElaborateError {}

impl From<ParseError> for ElaborateError {
    fn from(e: ParseError) -> Self {
        ElaborateError::Parse(e.to_string())
    }
}

/// Parses and elaborates a behavioral design (parameters keep their default values).
///
/// # Errors
/// Returns an error if parsing or elaboration fails.
pub fn parse_and_elaborate(src: &str) -> Result<Prog, ElaborateError> {
    let mut sp = lr_trace::span("elaborate");
    sp.attr("source_bytes", src.len() as u64);
    let ast = {
        let _parse = lr_trace::span("hdl-parse");
        parse_module(src)?
    };
    let _elab = lr_trace::span("hdl-elaborate");
    elaborate(&ast, false)
}

/// Semantics extraction from HDL (§4.4): parses a vendor-style primitive model and
/// elaborates it with **parameters converted to input ports**, so that parameters
/// remain symbols the synthesis engine can solve for.
///
/// # Errors
/// Returns an error if parsing or elaboration fails.
pub fn extract_semantics(src: &str) -> Result<Prog, ElaborateError> {
    let ast = parse_module(src)?;
    elaborate(&ast, true)
}

/// Elaborates a parsed module into an ℒbeh program rooted at its (single) output.
///
/// When `params_as_inputs` is true, `parameter` declarations become free variables of
/// the program (the extraction behaviour); otherwise their default values are used as
/// constants.
///
/// # Errors
/// Returns an error if the module has no output, a signal is undeclared, or a
/// combinational signal is used before it is driven.
pub fn elaborate(ast: &ModuleAst, params_as_inputs: bool) -> Result<Prog, ElaborateError> {
    let output_name = ast.outputs.first().cloned().ok_or(ElaborateError::NoOutput)?;
    let mut b = ProgBuilder::new(&ast.name);
    let mut env: HashMap<String, NodeId> = HashMap::new();

    // Inputs (excluding the clock, which is implicit in the IR's register semantics).
    for sig in &ast.signals {
        if sig.dir == Some(PortDir::Input) && sig.name != "clk" {
            let id = b.input(&sig.name, sig.width);
            env.insert(sig.name.clone(), id);
        }
    }
    // Parameters: symbolic inputs when extracting, constants otherwise.
    for sig in &ast.signals {
        if sig.is_parameter {
            let id = if params_as_inputs {
                b.input(&sig.name, sig.width)
            } else {
                b.constant(sig.default.clone().unwrap_or_else(|| BitVec::zeros(sig.width)))
            };
            env.insert(sig.name.clone(), id);
        }
    }
    // Registers driven by non-blocking assignments get placeholders up front, so they
    // can be referenced before (or within) the statements that drive them.
    for stmt in &ast.statements {
        if let Statement::NonBlocking { lhs, .. } = stmt {
            let width = ast
                .signal(lhs)
                .map(|s| s.width)
                .ok_or_else(|| ElaborateError::UndeclaredSignal(lhs.clone()))?;
            env.entry(lhs.clone()).or_insert_with(|| b.reg_placeholder(width));
        }
    }
    // Elaborate statements in source order.
    for stmt in &ast.statements {
        match stmt {
            Statement::Assign { lhs, rhs } => {
                let width = ast
                    .signal(lhs)
                    .map(|s| s.width)
                    .ok_or_else(|| ElaborateError::UndeclaredSignal(lhs.clone()))?;
                let value = lower_expr(&mut b, &env, ast, rhs)?;
                let value = resize(&mut b, value, width);
                env.insert(lhs.clone(), value);
            }
            Statement::NonBlocking { lhs, rhs } => {
                // The placeholder loop above already rejected undeclared lhs names.
                let width = ast
                    .signal(lhs)
                    .map(|s| s.width)
                    .ok_or_else(|| ElaborateError::UndeclaredSignal(lhs.clone()))?;
                let value = lower_expr(&mut b, &env, ast, rhs)?;
                let value = resize(&mut b, value, width);
                let reg = env[lhs];
                b.set_reg_data(reg, value);
            }
        }
    }
    let root =
        *env.get(&output_name).ok_or(ElaborateError::OutputNeverAssigned(output_name.clone()))?;
    Ok(b.finish(root))
}

fn resize(b: &mut ProgBuilder, id: NodeId, width: u32) -> NodeId {
    let current = b.width_of(id);
    if current == width {
        id
    } else if current < width {
        b.zext(id, width)
    } else {
        b.extract(id, width - 1, 0)
    }
}

fn lower_expr(
    b: &mut ProgBuilder,
    env: &HashMap<String, NodeId>,
    ast: &ModuleAst,
    expr: &Expr,
) -> Result<NodeId, ElaborateError> {
    match expr {
        Expr::Literal(bv) => Ok(b.constant(bv.clone())),
        Expr::Ident(name) => {
            if let Some(&id) = env.get(name) {
                Ok(id)
            } else if ast.signal(name).is_some() {
                Err(ElaborateError::UseBeforeDefinition(name.clone()))
            } else {
                Err(ElaborateError::UndeclaredSignal(name.clone()))
            }
        }
        Expr::Unary(op, inner) => {
            let x = lower_expr(b, env, ast, inner)?;
            Ok(match op {
                UnaryOp::Not => b.op1(BvOp::Not, x),
                UnaryOp::Neg => b.op1(BvOp::Neg, x),
                UnaryOp::RedAnd => b.op1(BvOp::RedAnd, x),
                UnaryOp::RedOr => b.op1(BvOp::RedOr, x),
                UnaryOp::RedXor => b.op1(BvOp::RedXor, x),
                UnaryOp::LogicalNot => {
                    let any = b.op1(BvOp::RedOr, x);
                    b.op1(BvOp::Not, any)
                }
            })
        }
        Expr::Binary(op, lhs, rhs) => {
            let mut x = lower_expr(b, env, ast, lhs)?;
            let mut y = lower_expr(b, env, ast, rhs)?;
            // Widen both operands to the larger width (Verilog's context rule,
            // restricted to our subset: widths are computed bottom-up, without
            // threading the assignment target's width into subexpressions).
            let wx = b.width_of(x);
            let wy = b.width_of(y);
            let w = wx.max(wy);
            // Shifts: the amount is self-determined and the result keeps the
            // *left* operand's width. The IR ops need equal-width arguments, so
            // widen both to the common width, shift there, and narrow the result
            // back to `wx` below. Widening (rather than truncating the amount)
            // is what makes shift-by-≥-width correctly yield zero even when the
            // amount is wider than the shifted operand.
            x = resize(b, x, w);
            y = resize(b, y, w);
            let shift_result = |b: &mut ProgBuilder, id: NodeId| {
                if w > wx {
                    b.extract(id, wx - 1, 0)
                } else {
                    id
                }
            };
            Ok(match op {
                BinaryOp::Add => b.op2(BvOp::Add, x, y),
                BinaryOp::Sub => b.op2(BvOp::Sub, x, y),
                BinaryOp::Mul => b.op2(BvOp::Mul, x, y),
                BinaryOp::And => b.op2(BvOp::And, x, y),
                BinaryOp::Or => b.op2(BvOp::Or, x, y),
                BinaryOp::Xor => b.op2(BvOp::Xor, x, y),
                BinaryOp::Shl => {
                    let s = b.op2(BvOp::Shl, x, y);
                    shift_result(b, s)
                }
                BinaryOp::Shr => {
                    let s = b.op2(BvOp::Lshr, x, y);
                    shift_result(b, s)
                }
                BinaryOp::Eq => b.op2(BvOp::Eq, x, y),
                BinaryOp::Ne => {
                    let e = b.op2(BvOp::Eq, x, y);
                    b.op1(BvOp::Not, e)
                }
                BinaryOp::Lt => b.op2(BvOp::Ult, x, y),
                BinaryOp::Le => b.op2(BvOp::Ule, x, y),
                BinaryOp::Gt => b.op2(BvOp::Ult, y, x),
                BinaryOp::Ge => b.op2(BvOp::Ule, y, x),
                BinaryOp::LogicalAnd => {
                    let xa = b.op1(BvOp::RedOr, x);
                    let ya = b.op1(BvOp::RedOr, y);
                    b.op2(BvOp::And, xa, ya)
                }
                BinaryOp::LogicalOr => {
                    let xa = b.op1(BvOp::RedOr, x);
                    let ya = b.op1(BvOp::RedOr, y);
                    b.op2(BvOp::Or, xa, ya)
                }
            })
        }
        Expr::Ternary(cond, then_, else_) => {
            let c = lower_expr(b, env, ast, cond)?;
            let c1 = if b.width_of(c) == 1 { c } else { b.op1(BvOp::RedOr, c) };
            let mut t = lower_expr(b, env, ast, then_)?;
            let mut e = lower_expr(b, env, ast, else_)?;
            let w = b.width_of(t).max(b.width_of(e));
            t = resize(b, t, w);
            e = resize(b, e, w);
            Ok(b.mux(c1, t, e))
        }
        Expr::Concat(parts) => {
            let mut ids: Vec<NodeId> = Vec::new();
            for p in parts {
                ids.push(lower_expr(b, env, ast, p)?);
            }
            // {a, b, c}: a is most significant. Fold left with Concat(high, low).
            let mut acc = *ids.last().expect("concat is non-empty");
            for &hi in ids.iter().rev().skip(1) {
                acc = b.op2(BvOp::Concat, hi, acc);
            }
            Ok(acc)
        }
        Expr::PartSelect(inner, hi, lo) => {
            let x = lower_expr(b, env, ast, inner)?;
            Ok(b.extract(x, *hi, *lo))
        }
        Expr::BitSelect(inner, idx) => {
            let x = lower_expr(b, env, ast, inner)?;
            Ok(b.extract(x, *idx, *idx))
        }
        Expr::DynBitSelect(inner, index) => {
            // x[i] with a non-constant index lowers to (x >> i)[0].
            let x = lower_expr(b, env, ast, inner)?;
            let i = lower_expr(b, env, ast, index)?;
            let w = b.width_of(x);
            let i = resize(b, i, w);
            let shifted = b.op2(BvOp::Lshr, x, i);
            Ok(b.extract(shifted, 0, 0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_ir::StreamInputs;

    fn inputs(pairs: &[(&str, u64, u32)]) -> StreamInputs {
        StreamInputs::from_constants(
            pairs.iter().map(|&(n, v, w)| (n.to_string(), BitVec::from_u64(v, w))),
        )
    }

    const ADD_MUL_AND: &str = r#"
module add_mul_and(input clk, input [15:0] a, b, c, d,
                   output reg [15:0] out);
  reg [15:0] r;
  always @(posedge clk) begin
    r <= (a+b)*c&d;
    out <= r;
  end
endmodule
"#;

    #[test]
    fn elaborates_the_running_example() {
        let prog = parse_and_elaborate(ADD_MUL_AND).unwrap();
        assert_eq!(prog.name(), "add_mul_and");
        assert!(prog.is_behavioral());
        assert!(prog.well_formed().is_ok());
        assert_eq!(prog.width(prog.root()), 16);
        // Two pipeline stages: result appears at cycle 2.
        let env = inputs(&[("a", 3, 16), ("b", 5, 16), ("c", 7, 16), ("d", 0xFF, 16)]);
        assert_eq!(prog.interp(&env, 2).unwrap(), BitVec::from_u64(((3 + 5) * 7) & 0xFF, 16));
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::zeros(16));
    }

    #[test]
    fn elaborates_combinational_assign() {
        let prog = parse_and_elaborate(
            "module f(input [7:0] a, b, output [7:0] y); assign y = (a ^ b) | 8'h0f; endmodule",
        )
        .unwrap();
        let env = inputs(&[("a", 0x30, 8), ("b", 0x41, 8)]);
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::from_u64((0x30 ^ 0x41) | 0x0F, 8));
    }

    #[test]
    fn parameters_become_constants_or_inputs() {
        let src = r#"
module lut2(input [1:0] in, output out);
  parameter [3:0] INIT = 4'h8;
  assign out = INIT[in];
endmodule
"#;
        // Design mode: INIT = 8 = 0b1000, so out = 1 only when in = 3.
        let design = parse_and_elaborate(src).unwrap();
        assert_eq!(design.free_vars().len(), 1);
        let env = inputs(&[("in", 3, 2)]);
        assert_eq!(design.interp(&env, 0).unwrap(), BitVec::from_bool(true));
        let env = inputs(&[("in", 1, 2)]);
        assert_eq!(design.interp(&env, 0).unwrap(), BitVec::from_bool(false));

        // Extraction mode: INIT becomes a free input (a solvable symbol).
        let extracted = extract_semantics(src).unwrap();
        let names: Vec<String> = extracted.free_vars().into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"INIT".to_string()));
        let env = inputs(&[("in", 2, 2), ("INIT", 0b0100, 4)]);
        assert_eq!(extracted.interp(&env, 0).unwrap(), BitVec::from_bool(true));
    }

    #[test]
    fn width_mismatches_are_resolved_like_verilog() {
        // 8-bit + 32-bit literal truncates back to the 8-bit output.
        let prog = parse_and_elaborate(
            "module f(input [7:0] a, output [7:0] y); assign y = a + 300; endmodule",
        )
        .unwrap();
        let env = inputs(&[("a", 10, 8)]);
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::from_u64((10 + 300) & 0xFF, 8));
    }

    #[test]
    fn self_feedback_counter() {
        let prog = parse_and_elaborate(
            "module counter(input clk, output reg [7:0] out); always @(posedge clk) out <= out + 8'd1; endmodule",
        )
        .unwrap();
        let env = StreamInputs::new();
        assert_eq!(prog.interp(&env, 5).unwrap(), BitVec::from_u64(5, 8));
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            parse_and_elaborate("module m(input a); assign b = a; endmodule"),
            Err(ElaborateError::NoOutput)
        ));
        assert!(matches!(
            parse_and_elaborate("module m(input a, output y); assign y = zz; endmodule"),
            Err(ElaborateError::UndeclaredSignal(_))
        ));
        assert!(matches!(
            parse_and_elaborate("module m(input a, output y); endmodule"),
            Err(ElaborateError::OutputNeverAssigned(_))
        ));
        assert!(matches!(
            parse_and_elaborate(
                "module m(input a, output y); wire w; assign y = w; assign w = a; endmodule"
            ),
            Err(ElaborateError::UseBeforeDefinition(_))
        ));
        assert!(matches!(
            parse_and_elaborate("module m(input a output y);"),
            Err(ElaborateError::Parse(_))
        ));
    }

    #[test]
    fn resize_width_can_depend_on_a_signal_chain() {
        // Regression: `resize`'s width query used to clone the whole builder and
        // finish() it per call (quadratic, and wrong-footed by its unused
        // env/ast parameters). This design forces width computation through a
        // register placeholder feedback path plus a wire chain, exactly the
        // shape the old helper handled by accident.
        let prog = parse_and_elaborate(
            "module fb(input clk, input [3:0] a, output reg [7:0] out);
               wire [5:0] w;
               assign w = a + out[3:0];
               always @(posedge clk) out <= w;
             endmodule",
        )
        .unwrap();
        assert_eq!(prog.width(prog.root()), 8);
        let env = inputs(&[("a", 3, 4)]);
        // out: 0, 3, 6 (w = a + out[3:0], registered).
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::zeros(8));
        assert_eq!(prog.interp(&env, 1).unwrap(), BitVec::from_u64(3, 8));
        assert_eq!(prog.interp(&env, 2).unwrap(), BitVec::from_u64(6, 8));
    }

    #[test]
    fn shift_results_keep_the_left_operand_width() {
        // Subset rule (matching Verilog): the amount is self-determined and the
        // result has the *left* operand's width. The old lowering widened the
        // result to max(wx, wy), so `a << b` with a wide amount leaked bits
        // that should have been shifted out of a 4-bit lane.
        let prog = parse_and_elaborate(
            "module m(input [3:0] a, input [7:0] b, output [7:0] y); assign y = a << b; endmodule",
        )
        .unwrap();
        let env = inputs(&[("a", 0b1001, 4), ("b", 1, 8)]);
        // (4'b1001 << 1) = 4'b0010, then zero-extended to the 8-bit output.
        // The buggy widening gave 8'b0001_0010 = 18.
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::from_u64(0b0010, 8));
    }

    #[test]
    fn shift_by_width_or_more_yields_zero() {
        let prog = parse_and_elaborate(
            "module m(input [3:0] a, input [7:0] b, output [3:0] y); assign y = a >> b; endmodule",
        )
        .unwrap();
        for amount in [4u64, 5, 63, 200] {
            let env = inputs(&[("a", 0b1111, 4), ("b", amount, 8)]);
            assert_eq!(
                prog.interp(&env, 0).unwrap(),
                BitVec::zeros(4),
                "a >> {amount} must be zero for a 4-bit a"
            );
        }
        let prog = parse_and_elaborate(
            "module m(input [3:0] a, input [7:0] b, output [3:0] y); assign y = a << b; endmodule",
        )
        .unwrap();
        let env = inputs(&[("a", 0b1111, 4), ("b", 4, 8)]);
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::zeros(4));
    }

    #[test]
    fn arithmetic_shift_equals_logical_shift_on_the_unsigned_subset() {
        // All subset values are unsigned, so `>>>` and `>>` must agree (and
        // `<<<`/`<<` trivially so). Before the lexer fix, `a >>> b` tokenized
        // as `>>` `>` and died with an opaque parse error.
        let logical = parse_and_elaborate(
            "module m(input [7:0] a, b, output [7:0] y); assign y = a >> b; endmodule",
        )
        .unwrap();
        let arith = parse_and_elaborate(
            "module m(input [7:0] a, b, output [7:0] y); assign y = a >>> b; endmodule",
        )
        .unwrap();
        for (a, bv) in [(0x80u64, 1u64), (0xFF, 3), (0x01, 0), (0xAA, 9)] {
            let env = inputs(&[("a", a, 8), ("b", bv, 8)]);
            assert_eq!(
                logical.interp(&env, 0).unwrap(),
                arith.interp(&env, 0).unwrap(),
                "{a:#x} >>> {bv}"
            );
        }
    }

    #[test]
    fn ternary_and_comparisons() {
        let prog = parse_and_elaborate(
            "module max(input [7:0] a, b, output [7:0] y); assign y = a < b ? b : a; endmodule",
        )
        .unwrap();
        let env = inputs(&[("a", 9, 8), ("b", 200, 8)]);
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::from_u64(200, 8));
        let env = inputs(&[("a", 250, 8), ("b", 200, 8)]);
        assert_eq!(prog.interp(&env, 0).unwrap(), BitVec::from_u64(250, 8));
    }
}
