//! # lr-hdl: mini-Verilog frontend, semantics extraction, and structural emission
//!
//! The original Lakeroad leans on Yosys for three translations (paper §4.4–4.5):
//!
//! 1. behavioral Verilog designs → the solver-facing IR (ℒbeh),
//! 2. vendor-provided Verilog primitive models → solver-ready semantics
//!    ("semantics extraction from HDL"),
//! 3. the synthesized structural program → structural Verilog.
//!
//! This crate provides all three for a behavioral Verilog *subset* (the mini-HDL):
//! modules with `input`/`output`/`reg`/`wire`/`parameter` declarations, continuous
//! `assign`s, and `always @(posedge clk)` blocks of non-blocking assignments, over
//! expressions built from the usual bitvector operators.
//!
//! * [`parse_module`] / [`elaborate`] implement (1);
//! * [`extract_semantics`] implements (2) — following §4.4, module **parameters are
//!   converted to input ports** during extraction so they remain solvable symbols;
//! * [`emit_verilog`] implements (3).
//!
//! ```
//! let src = r#"
//! module add_one(input clk, input [7:0] a, output [7:0] out);
//!   assign out = a + 8'd1;
//! endmodule
//! "#;
//! let design = lr_hdl::parse_and_elaborate(src).unwrap();
//! assert_eq!(design.name(), "add_one");
//! assert!(design.is_behavioral());
//! ```
//!
//! ## Subset width semantics
//!
//! Expression widths are computed **bottom-up**; the assignment target's width
//! is never threaded into subexpressions (full Verilog's context-determined
//! sizing is deliberately out of scope). The rules:
//!
//! * binary arithmetic/bitwise operators zero-extend both operands to the
//!   larger operand width, which is also the result width;
//! * shifts (`<<`, `>>`, and the arithmetic spellings `<<<`, `>>>`) have a
//!   self-determined amount and a result of the **left** operand's width;
//!   shifting by ≥ the operand width yields zero. All subset values are
//!   unsigned, so `>>>` behaves exactly like `>>`;
//! * comparisons, logical operators, and reductions produce 1 bit;
//! * sized literals are capped at 64 bits and must fit their stated width
//!   (`4'hFFF` is a parse error, not a silent truncation);
//! * the final value of an `assign`/non-blocking RHS is zero-extended or
//!   truncated to the destination width.
//!
//! The [`fuzz`] module turns these guarantees into an executable oracle: a
//! seeded generator covering the whole grammar plus a differential round-trip
//! check (`parse → elaborate → emit_verilog → re-parse → re-elaborate` must
//! preserve interpretation).

mod ast;
mod elaborate;
mod emit;
pub mod fuzz;
mod lexer;
pub mod models;
mod parser;

pub use ast::{Expr, ModuleAst, PortDir, Statement};
pub use elaborate::{elaborate, extract_semantics, parse_and_elaborate, ElaborateError};
pub use emit::emit_verilog;
pub use fuzz::{check_seed, generate_module, interp_equivalent, FuzzOutcome, FuzzRng};
pub use models::{builtin_models, BuiltinModel};
pub use parser::{parse_module, ParseError};

/// Counts the source lines of code of an HDL snippet, skipping blank lines and
/// comment-only lines. Used by the Table 1 / extensibility experiments.
pub fn count_sloc(text: &str) -> usize {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with('#'))
        .count()
}

#[cfg(test)]
mod tests {
    #[test]
    fn sloc_counting_skips_blanks_and_comments() {
        let text = "// header\n\nmodule m;\n  // body comment\n  wire x;\nendmodule\n";
        assert_eq!(super::count_sloc(text), 3);
    }
}
