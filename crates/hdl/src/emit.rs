//! Compilation of ℒlr programs to structural Verilog (§4.5).
//!
//! Like the original Lakeroad, this is a deliberately mechanical, one-to-one
//! syntactic mapping: every node becomes a wire (or flip-flop), every primitive
//! instance becomes a module instantiation, and no optimization is performed, which
//! keeps the emitter out of the reasoning path and minimizes the chance of
//! introducing bugs after synthesis has established correctness.

use std::fmt::Write as _;

use lr_ir::{BvOp, Node, NodeId, Prog};

/// Emits a structural Verilog module for an ℒlr program.
///
/// Registers become `always @(posedge clk)` blocks (a `clk` input is added whenever
/// the design is sequential), primitive instances become module instantiations with
/// their parameters, and wiring operators become `assign`s.
pub fn emit_verilog(prog: &Prog) -> String {
    let mut wires = String::new();
    let mut body = String::new();
    // Register updates go in a separate section emitted after every assign:
    // a register's data wire may have a higher node id than the register
    // itself (feedback through combinational logic), and emitting the always
    // block in id order would then reference that wire before its driver —
    // source our own frontend rejects as use-before-definition.
    let mut seq = String::new();
    let sequential = has_state(prog);

    for (id, node) in prog.nodes() {
        let width = prog.width(id);
        match node {
            Node::Reg { data, init } => {
                let _ = writeln!(wires, "  reg [{}:0] {};", width - 1, wire(id));
                let _ = writeln!(
                    seq,
                    "  always @(posedge clk) {} <= {}; // init {}",
                    wire(id),
                    wire(*data),
                    init.to_verilog_literal()
                );
            }
            Node::BV(value) => {
                let _ = writeln!(wires, "  wire [{}:0] {};", width - 1, wire(id));
                let _ = writeln!(body, "  assign {} = {};", wire(id), value.to_verilog_literal());
            }
            Node::Var { name, .. } => {
                let _ = writeln!(wires, "  wire [{}:0] {};", width - 1, wire(id));
                let _ = writeln!(body, "  assign {} = {};", wire(id), name);
            }
            Node::Hole { name, .. } => {
                let _ = writeln!(wires, "  wire [{}:0] {};", width - 1, wire(id));
                let _ = writeln!(
                    body,
                    "  // UNFILLED HOLE `{name}` -- emit after synthesis fills it\n  assign {} = {}'d0;",
                    wire(id),
                    width
                );
            }
            Node::Op(op, args) => {
                let _ = writeln!(wires, "  wire [{}:0] {};", width - 1, wire(id));
                let expr = op_expr(prog, *op, args);
                let _ = writeln!(body, "  assign {} = {};", wire(id), expr);
            }
            Node::Prim(p) => {
                let _ = writeln!(wires, "  wire [{}:0] {};", width - 1, wire(id));
                let mut params = Vec::new();
                let mut ports = Vec::new();
                for (name, &bound) in &p.bindings {
                    if p.param_names.contains(name) {
                        // Parameters must be constants after hole filling; fall back
                        // to the driving wire's name in the unusual case they are not.
                        let value = match prog.node(bound) {
                            Some(Node::BV(bv)) => bv.to_verilog_literal(),
                            _ => wire(bound),
                        };
                        params.push(format!(".{name}({value})"));
                    } else {
                        ports.push(format!(".{name}({})", wire(bound)));
                    }
                }
                if sequential {
                    ports.push(".CLK(clk)".to_string());
                }
                ports.push(format!(".{}({})", p.output_port, wire(id)));
                let param_text = if params.is_empty() {
                    String::new()
                } else {
                    format!(" #({})", params.join(", "))
                };
                let _ = writeln!(
                    body,
                    "  {}{} {}_{} ({});",
                    p.module,
                    param_text,
                    p.module.to_lowercase(),
                    id.0,
                    ports.join(", ")
                );
            }
        }
    }

    let mut header = String::new();
    let _ = write!(header, "module {}(", prog.name());
    let mut port_decls: Vec<String> = Vec::new();
    if sequential {
        port_decls.push("input clk".to_string());
    }
    for (name, width) in prog.declared_inputs() {
        if *width == 1 {
            port_decls.push(format!("input {name}"));
        } else {
            port_decls.push(format!("input [{}:0] {name}", width - 1));
        }
    }
    let out_width = prog.width(prog.root());
    if out_width == 1 {
        port_decls.push("output out".to_string());
    } else {
        port_decls.push(format!("output [{}:0] out", out_width - 1));
    }
    let _ = writeln!(header, "{});", port_decls.join(", "));

    format!("{header}{wires}{body}{seq}  assign out = {};\nendmodule\n", wire(prog.root()))
}

fn wire(id: NodeId) -> String {
    format!("n{}", id.0)
}

fn has_state(prog: &Prog) -> bool {
    prog.nodes().any(|(_, n)| matches!(n, Node::Reg { .. } | Node::Prim(_)))
}

fn op_expr(prog: &Prog, op: BvOp, args: &[NodeId]) -> String {
    let a = |i: usize| wire(args[i]);
    match op {
        BvOp::Not => format!("~{}", a(0)),
        BvOp::Neg => format!("-{}", a(0)),
        BvOp::And => format!("{} & {}", a(0), a(1)),
        BvOp::Or => format!("{} | {}", a(0), a(1)),
        BvOp::Xor => format!("{} ^ {}", a(0), a(1)),
        BvOp::Add => format!("{} + {}", a(0), a(1)),
        BvOp::Sub => format!("{} - {}", a(0), a(1)),
        BvOp::Mul => format!("{} * {}", a(0), a(1)),
        BvOp::Udiv => format!("{} / {}", a(0), a(1)),
        BvOp::Urem => format!("{} % {}", a(0), a(1)),
        BvOp::Shl => format!("{} << {}", a(0), a(1)),
        BvOp::Lshr => format!("{} >> {}", a(0), a(1)),
        BvOp::Ashr => format!("$signed({}) >>> {}", a(0), a(1)),
        BvOp::Concat => format!("{{{}, {}}}", a(0), a(1)),
        BvOp::Extract { hi, lo } => format!("{}[{hi}:{lo}]", a(0)),
        BvOp::ZeroExt { width } => {
            // Emitted as a concat of sized zero literals (chunked to the
            // 64-bit literal cap), a form the mini-HDL parser itself can
            // re-parse. The old replication form `{{N{1'b0}}, a}` could not
            // round-trip, and its count was the result width rather than the
            // number of padding bits.
            let arg_width = prog.width(args[0]);
            if width <= arg_width {
                format!("{}[{}:0]", a(0), width - 1)
            } else {
                let mut delta = width - arg_width;
                let mut parts = Vec::new();
                while delta > 64 {
                    parts.push("64'd0".to_string());
                    delta -= 64;
                }
                parts.push(format!("{delta}'d0"));
                parts.push(a(0));
                format!("{{{}}}", parts.join(", "))
            }
        }
        BvOp::SignExt { width } => {
            // Replicate the argument's *top* bit (the old form replicated
            // bit 0, i.e. sign-extended by the LSB).
            let arg_width = prog.width(args[0]);
            if width <= arg_width {
                format!("{}[{}:0]", a(0), width - 1)
            } else {
                format!("{{{{{}{{{}[{}]}}}}, {}}}", width - arg_width, a(0), arg_width - 1, a(0))
            }
        }
        BvOp::Eq => format!("{} == {}", a(0), a(1)),
        BvOp::Ult => format!("{} < {}", a(0), a(1)),
        BvOp::Ule => format!("{} <= {}", a(0), a(1)),
        BvOp::Slt => format!("$signed({}) < $signed({})", a(0), a(1)),
        BvOp::Sle => format!("$signed({}) <= $signed({})", a(0), a(1)),
        BvOp::Ite => format!("{} ? {} : {}", a(0), a(1), a(2)),
        BvOp::RedOr => format!("|{}", a(0)),
        BvOp::RedAnd => format!("&{}", a(0)),
        BvOp::RedXor => format!("^{}", a(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_bv::BitVec;
    use lr_ir::{PrimInstance, ProgBuilder};
    use std::collections::BTreeMap;

    #[test]
    fn emits_a_combinational_module() {
        let mut b = ProgBuilder::new("comb");
        let a = b.input("a", 8);
        let c = b.constant_u64(0x0F, 8);
        let out = b.op2(BvOp::And, a, c);
        let prog = b.finish(out);
        let v = emit_verilog(&prog);
        assert!(v.starts_with("module comb("));
        assert!(v.contains("input [7:0] a"));
        assert!(v.contains("output [7:0] out"));
        assert!(v.contains("8'h0f"));
        assert!(v.contains("assign out ="));
        assert!(!v.contains("clk"), "combinational module should not have a clock");
    }

    #[test]
    fn emits_registers_and_clock() {
        let mut b = ProgBuilder::new("seq");
        let a = b.input("a", 4);
        let r = b.reg(a, 4);
        let prog = b.finish(r);
        let v = emit_verilog(&prog);
        assert!(v.contains("input clk"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("reg [3:0]"));
    }

    #[test]
    fn emits_primitive_instances_with_parameters() {
        let mut b = ProgBuilder::new("wrapped");
        let a = b.input("a", 4);
        let init = b.constant(BitVec::from_u64(0xBEEF, 16));
        let mut sem = ProgBuilder::with_base_id("lut_sem", 100);
        let x = sem.var("I", 4);
        let i = sem.var("INIT", 16);
        let xz = sem.zext(x, 16);
        let shifted = sem.op2(BvOp::Lshr, i, xz);
        let bit = sem.extract(shifted, 0, 0);
        let sem = sem.finish(bit);
        let prim = PrimInstance {
            module: "LUT4".into(),
            interface: "LUT4".into(),
            bindings: BTreeMap::from([("I".to_string(), a), ("INIT".to_string(), init)]),
            semantics: sem,
            param_names: vec!["INIT".to_string()],
            output_port: "O".into(),
        };
        let p = b.prim(prim);
        let prog = b.finish(p);
        let v = emit_verilog(&prog);
        assert!(v.contains("LUT4 #(.INIT(16'hbeef)) lut4_"));
        assert!(v.contains(".I(n0)"));
        assert!(v.contains(".O("));
    }

    #[test]
    fn emitted_text_mentions_every_node() {
        let mut b = ProgBuilder::new("full");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let sum = b.op2(BvOp::Add, a, bb);
        let prog = b.finish(sum);
        let v = emit_verilog(&prog);
        for (id, _) in prog.nodes() {
            assert!(v.contains(&format!("n{}", id.0)), "missing wire n{}", id.0);
        }
    }
}
