//! Recursive-descent parser for the mini-HDL.

use std::fmt;

use lr_bv::BitVec;

use crate::ast::{BinaryOp, Expr, ModuleAst, PortDir, SignalDecl, Statement, UnaryOp};
use crate::lexer::{tokenize, Token};

/// A parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError { message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a single module from mini-HDL source text.
///
/// # Errors
/// Returns a [`ParseError`] describing the first syntax problem encountered.
pub fn parse_module(src: &str) -> Result<ModuleAst, ParseError> {
    let tokens = tokenize(src).map_err(ParseError::new)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.module()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Symbol(s)) if s == sym => Ok(()),
            other => Err(ParseError::new(format!("expected `{sym}`, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s == kw => Ok(()),
            other => Err(ParseError::new(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::new(format!("expected identifier, found {other:?}"))),
        }
    }

    fn at_symbol(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Token::Symbol(s)) if s == sym)
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if self.at_symbol(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn module(&mut self) -> Result<ModuleAst, ParseError> {
        self.expect_keyword("module")?;
        let name = self.expect_ident()?;
        let mut signals: Vec<SignalDecl> = Vec::new();
        let mut outputs: Vec<String> = Vec::new();
        self.expect_symbol("(")?;
        if !self.at_symbol(")") {
            self.port_list(&mut signals, &mut outputs)?;
        }
        self.expect_symbol(")")?;
        self.expect_symbol(";")?;

        let mut statements = Vec::new();
        loop {
            if self.eat_keyword("endmodule") {
                break;
            }
            if self.peek().is_none() {
                return Err(ParseError::new("unexpected end of input (missing endmodule)"));
            }
            if self.at_keyword("reg") || self.at_keyword("wire") {
                self.var_decl(&mut signals)?;
            } else if self.at_keyword("parameter") {
                self.parameter_decl(&mut signals)?;
            } else if self.at_keyword("assign") {
                self.pos += 1;
                let lhs = self.expect_ident()?;
                self.expect_symbol("=")?;
                let rhs = self.expr()?;
                self.expect_symbol(";")?;
                statements.push(Statement::Assign { lhs, rhs });
            } else if self.at_keyword("always") {
                self.always_block(&mut statements)?;
            } else {
                return Err(ParseError::new(format!("unexpected token {:?}", self.peek())));
            }
        }
        Ok(ModuleAst { name, signals, statements, outputs })
    }

    fn range(&mut self) -> Result<u32, ParseError> {
        // "[" hi ":" lo "]" -> width hi - lo + 1
        self.expect_symbol("[")?;
        let hi = self.const_number()?;
        self.expect_symbol(":")?;
        let lo = self.const_number()?;
        self.expect_symbol("]")?;
        if lo != 0 {
            return Err(ParseError::new("only [N:0] ranges are supported"));
        }
        Ok((hi - lo + 1) as u32)
    }

    fn const_number(&mut self) -> Result<u64, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(ParseError::new(format!("expected number, found {other:?}"))),
        }
    }

    fn port_list(
        &mut self,
        signals: &mut Vec<SignalDecl>,
        outputs: &mut Vec<String>,
    ) -> Result<(), ParseError> {
        let mut dir = PortDir::Input;
        let mut width = 1u32;
        let mut is_reg = false;
        loop {
            if self.eat_keyword("input") {
                dir = PortDir::Input;
                is_reg = false;
                width = 1;
            } else if self.eat_keyword("output") {
                dir = PortDir::Output;
                is_reg = false;
                width = 1;
            }
            if self.eat_keyword("reg") {
                is_reg = true;
            }
            if self.at_symbol("[") {
                width = self.range()?;
            }
            let name = self.expect_ident()?;
            signals.push(SignalDecl {
                name: name.clone(),
                width,
                dir: Some(dir),
                is_reg,
                is_parameter: false,
                default: None,
            });
            if dir == PortDir::Output {
                outputs.push(name);
            }
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(())
    }

    fn var_decl(&mut self, signals: &mut Vec<SignalDecl>) -> Result<(), ParseError> {
        let is_reg = self.at_keyword("reg");
        self.pos += 1; // reg or wire
        let width = if self.at_symbol("[") { self.range()? } else { 1 };
        loop {
            let name = self.expect_ident()?;
            signals.push(SignalDecl {
                name,
                width,
                dir: None,
                is_reg,
                is_parameter: false,
                default: None,
            });
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(";")?;
        Ok(())
    }

    fn parameter_decl(&mut self, signals: &mut Vec<SignalDecl>) -> Result<(), ParseError> {
        self.expect_keyword("parameter")?;
        let width = if self.at_symbol("[") { self.range()? } else { 32 };
        let name = self.expect_ident()?;
        self.expect_symbol("=")?;
        let default = match self.next() {
            Some(Token::Number(n)) => BitVec::from_u64(n, width),
            Some(Token::SizedLiteral(text)) => BitVec::parse_verilog(&text)
                .map_err(|e| ParseError::new(e.to_string()))?
                .resize_zext(width),
            other => {
                return Err(ParseError::new(format!("expected parameter value, found {other:?}")))
            }
        };
        self.expect_symbol(";")?;
        signals.push(SignalDecl {
            name,
            width,
            dir: None,
            is_reg: false,
            is_parameter: true,
            default: Some(default),
        });
        Ok(())
    }

    fn always_block(&mut self, statements: &mut Vec<Statement>) -> Result<(), ParseError> {
        self.expect_keyword("always")?;
        self.expect_symbol("@")?;
        self.expect_symbol("(")?;
        self.expect_keyword("posedge")?;
        let _clk = self.expect_ident()?;
        self.expect_symbol(")")?;
        let block = self.eat_keyword("begin");
        loop {
            if block && self.eat_keyword("end") {
                break;
            }
            let lhs = self.expect_ident()?;
            self.expect_symbol("<=")?;
            let rhs = self.expr()?;
            self.expect_symbol(";")?;
            statements.push(Statement::NonBlocking { lhs, rhs });
            if !block {
                break;
            }
        }
        Ok(())
    }

    // ----- expressions, by descending precedence -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.logical_or()?;
        if self.eat_symbol("?") {
            let then_ = self.expr()?;
            self.expect_symbol(":")?;
            let else_ = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(then_), Box::new(else_)))
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.logical_and()?;
        while self.eat_symbol("||") {
            let rhs = self.logical_and()?;
            lhs = Expr::Binary(BinaryOp::LogicalOr, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_or()?;
        while self.eat_symbol("&&") {
            let rhs = self.bit_or()?;
            lhs = Expr::Binary(BinaryOp::LogicalAnd, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_xor()?;
        while self.at_symbol("|") {
            self.pos += 1;
            let rhs = self.bit_xor()?;
            lhs = Expr::Binary(BinaryOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_and()?;
        while self.at_symbol("^") {
            self.pos += 1;
            let rhs = self.bit_and()?;
            lhs = Expr::Binary(BinaryOp::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.at_symbol("&") {
            self.pos += 1;
            let rhs = self.equality()?;
            lhs = Expr::Binary(BinaryOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational()?;
        loop {
            if self.eat_symbol("==") {
                let rhs = self.relational()?;
                lhs = Expr::Binary(BinaryOp::Eq, Box::new(lhs), Box::new(rhs));
            } else if self.eat_symbol("!=") {
                let rhs = self.relational()?;
                lhs = Expr::Binary(BinaryOp::Ne, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.shift()?;
        loop {
            let op = if self.eat_symbol("<=") {
                BinaryOp::Le
            } else if self.eat_symbol(">=") {
                BinaryOp::Ge
            } else if self.at_symbol("<") {
                self.pos += 1;
                BinaryOp::Lt
            } else if self.at_symbol(">") {
                self.pos += 1;
                BinaryOp::Gt
            } else {
                return Ok(lhs);
            };
            let rhs = self.shift()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            if self.eat_symbol("<<") {
                let rhs = self.additive()?;
                lhs = Expr::Binary(BinaryOp::Shl, Box::new(lhs), Box::new(rhs));
            } else if self.eat_symbol(">>") {
                let rhs = self.additive()?;
                lhs = Expr::Binary(BinaryOp::Shr, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            if self.at_symbol("+") {
                self.pos += 1;
                let rhs = self.multiplicative()?;
                lhs = Expr::Binary(BinaryOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.at_symbol("-") {
                self.pos += 1;
                let rhs = self.multiplicative()?;
                lhs = Expr::Binary(BinaryOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while self.at_symbol("*") {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary(BinaryOp::Mul, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = if self.at_symbol("~") {
            Some(UnaryOp::Not)
        } else if self.at_symbol("-") {
            Some(UnaryOp::Neg)
        } else if self.at_symbol("!") {
            Some(UnaryOp::LogicalNot)
        } else if self.at_symbol("&") {
            Some(UnaryOp::RedAnd)
        } else if self.at_symbol("|") {
            Some(UnaryOp::RedOr)
        } else if self.at_symbol("^") {
            Some(UnaryOp::RedXor)
        } else {
            None
        };
        if let Some(op) = op {
            self.pos += 1;
            let operand = self.unary()?;
            return Ok(Expr::Unary(op, Box::new(operand)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut base = self.primary()?;
        while self.at_symbol("[") {
            self.pos += 1;
            let index = self.expr()?;
            if self.eat_symbol(":") {
                let hi = match index {
                    Expr::Literal(ref bv) => bv.to_u64().unwrap_or(0) as u32,
                    _ => return Err(ParseError::new("part-select bounds must be constants")),
                };
                let lo = self.const_number()? as u32;
                self.expect_symbol("]")?;
                base = Expr::PartSelect(Box::new(base), hi, lo);
            } else {
                self.expect_symbol("]")?;
                base = match index {
                    Expr::Literal(ref bv) => {
                        Expr::BitSelect(Box::new(base), bv.to_u64().unwrap_or(0) as u32)
                    }
                    other => Expr::DynBitSelect(Box::new(base), Box::new(other)),
                };
            }
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(Expr::Literal(BitVec::from_u64(n, 32))),
            Some(Token::SizedLiteral(text)) => Ok(Expr::Literal(
                BitVec::parse_verilog(&text).map_err(|e| ParseError::new(e.to_string()))?,
            )),
            Some(Token::Ident(name)) => Ok(Expr::Ident(name)),
            Some(Token::Symbol(s)) if s == "(" => {
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Symbol(s)) if s == "{" => {
                let mut parts = vec![self.expr()?];
                while self.eat_symbol(",") {
                    parts.push(self.expr()?);
                }
                self.expect_symbol("}")?;
                Ok(Expr::Concat(parts))
            }
            other => Err(ParseError::new(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADD_MUL_AND: &str = r#"
// add_mul_and.v: computes (a+b)*c&d in two clock cycles.
module add_mul_and(input clk, input [15:0] a, b, c, d,
                   output reg [15:0] out);
  reg [15:0] r;
  always @(posedge clk) begin
    r <= (a+b)*c&d;
    out <= r;
  end
endmodule
"#;

    #[test]
    fn parses_the_papers_running_example() {
        let m = parse_module(ADD_MUL_AND).unwrap();
        assert_eq!(m.name, "add_mul_and");
        assert_eq!(m.outputs, vec!["out"]);
        assert_eq!(m.data_inputs().len(), 4);
        assert_eq!(m.signal("a").unwrap().width, 16);
        assert_eq!(m.signal("r").unwrap().width, 16);
        assert!(m.signal("out").unwrap().is_reg);
        assert_eq!(m.statements.len(), 2);
        assert!(matches!(m.statements[0], Statement::NonBlocking { .. }));
    }

    #[test]
    fn parses_combinational_assign() {
        let m = parse_module(
            "module f(input [7:0] a, b, output [7:0] y); assign y = (a ^ b) | 8'h0f; endmodule",
        )
        .unwrap();
        assert_eq!(m.statements.len(), 1);
        match &m.statements[0] {
            Statement::Assign { lhs, rhs } => {
                assert_eq!(lhs, "y");
                assert!(matches!(rhs, Expr::Binary(BinaryOp::Or, _, _)));
            }
            _ => panic!("expected assign"),
        }
    }

    #[test]
    fn parses_parameters_ternary_and_selects() {
        let src = r#"
module lut2(input [1:0] in, output out);
  parameter [3:0] INIT = 4'h8;
  assign out = INIT[in];
endmodule
"#;
        let m = parse_module(src).unwrap();
        let init = m.signal("INIT").unwrap();
        assert!(init.is_parameter);
        assert_eq!(init.width, 4);
        assert_eq!(init.default.as_ref().unwrap().to_u64(), Some(8));
        match &m.statements[0] {
            Statement::Assign { rhs, .. } => assert!(matches!(rhs, Expr::DynBitSelect(..))),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_part_selects_and_concat() {
        let src =
            "module s(input [15:0] x, output [15:0] y); assign y = {x[7:0], x[15:8]}; endmodule";
        let m = parse_module(src).unwrap();
        match &m.statements[0] {
            Statement::Assign { rhs: Expr::Concat(parts), .. } => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Expr::PartSelect(_, 7, 0)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn operator_precedence_mul_before_and() {
        // (a+b)*c&d must parse as ((a+b)*c) & d.
        let m = parse_module(
            "module p(input [7:0] a, b, c, d, output [7:0] y); assign y = (a+b)*c&d; endmodule",
        )
        .unwrap();
        match &m.statements[0] {
            Statement::Assign { rhs: Expr::Binary(BinaryOp::And, lhs, _), .. } => {
                assert!(matches!(**lhs, Expr::Binary(BinaryOp::Mul, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn reports_errors_with_context() {
        assert!(parse_module("module m(").is_err());
        assert!(parse_module("module m(input a); assign ; endmodule").is_err());
        assert!(parse_module("module m(input a); garbage x; endmodule").is_err());
    }
}
