//! Recursive-descent parser for the mini-HDL.

use std::fmt;

use lr_bv::BitVec;

use crate::ast::{BinaryOp, Expr, ModuleAst, PortDir, SignalDecl, Statement, UnaryOp};
use crate::lexer::{tokenize, Token};

/// A parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError { message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// The widest sized literal the subset accepts, matching the widest signal the
/// fuzz generator emits and the 64-bit fast paths throughout `lr-bv` consumers.
const MAX_LITERAL_WIDTH: u32 = 64;

/// Parses a sized literal with subset hardening on top of
/// [`BitVec::parse_verilog`]: the stated width must be `1..=64`, and the
/// digits' value must fit the stated width. `BitVec::parse_verilog` alone
/// accumulates into a width-sized vector, so `4'hFFF` would silently truncate
/// to `4'hf`; here it is a parse error instead.
fn parse_sized_literal(text: &str) -> Result<BitVec, ParseError> {
    let cleaned: String = text.trim().replace('_', "");
    let tick = cleaned
        .find('\'')
        .ok_or_else(|| ParseError::new(format!("missing ' in literal `{text}`")))?;
    let width: u32 = cleaned[..tick]
        .parse()
        .map_err(|_| ParseError::new(format!("bad width in literal `{text}`")))?;
    if width == 0 {
        return Err(ParseError::new(format!("literal `{text}` has zero width")));
    }
    if width > MAX_LITERAL_WIDTH {
        return Err(ParseError::new(format!(
            "literal `{text}` is {width} bits wide; sized literals are capped at \
             {MAX_LITERAL_WIDTH} bits in this subset"
        )));
    }
    let rest = &cleaned[tick + 1..];
    let base = rest
        .chars()
        .next()
        .ok_or_else(|| ParseError::new(format!("missing base in literal `{text}`")))?;
    let digits = &rest[base.len_utf8()..];
    if digits.len() > 256 {
        return Err(ParseError::new(format!("literal `{text}` has too many digits")));
    }
    // Upper bound on the bits the digits can carry (10^n < 16^n for decimal);
    // parsing at this width makes overflow detectable instead of silent.
    let value_bits = match base.to_ascii_lowercase() {
        'h' | 'd' => 4 * digits.len() as u32,
        _ => digits.len() as u32, // 'b'; other bases are rejected below
    }
    .max(1);
    let wide = width.max(value_bits);
    let value = BitVec::parse_verilog(&format!("{wide}'{rest}"))
        .map_err(|e| ParseError::new(e.to_string()))?;
    if wide > width && !value.extract(wide - 1, width).is_zero() {
        return Err(ParseError::new(format!(
            "literal `{text}` overflows its stated {width}-bit width"
        )));
    }
    Ok(value.extract(width - 1, 0))
}

/// Parses a single module from mini-HDL source text.
///
/// # Errors
/// Returns a [`ParseError`] describing the first syntax problem encountered.
pub fn parse_module(src: &str) -> Result<ModuleAst, ParseError> {
    let tokens = tokenize(src).map_err(ParseError::new)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.module()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Symbol(s)) if s == sym => Ok(()),
            other => Err(ParseError::new(format!("expected `{sym}`, found {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Ident(s)) if s == kw => Ok(()),
            other => Err(ParseError::new(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::new(format!("expected identifier, found {other:?}"))),
        }
    }

    fn at_symbol(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Token::Symbol(s)) if s == sym)
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if self.at_symbol(sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn module(&mut self) -> Result<ModuleAst, ParseError> {
        self.expect_keyword("module")?;
        let name = self.expect_ident()?;
        let mut signals: Vec<SignalDecl> = Vec::new();
        let mut outputs: Vec<String> = Vec::new();
        self.expect_symbol("(")?;
        if !self.at_symbol(")") {
            self.port_list(&mut signals, &mut outputs)?;
        }
        self.expect_symbol(")")?;
        self.expect_symbol(";")?;

        let mut statements = Vec::new();
        loop {
            if self.eat_keyword("endmodule") {
                break;
            }
            if self.peek().is_none() {
                return Err(ParseError::new("unexpected end of input (missing endmodule)"));
            }
            if self.at_keyword("reg") || self.at_keyword("wire") {
                self.var_decl(&mut signals)?;
            } else if self.at_keyword("parameter") {
                self.parameter_decl(&mut signals)?;
            } else if self.at_keyword("assign") {
                self.pos += 1;
                let lhs = self.expect_ident()?;
                self.expect_symbol("=")?;
                let rhs = self.expr()?;
                self.expect_symbol(";")?;
                statements.push(Statement::Assign { lhs, rhs });
            } else if self.at_keyword("always") {
                self.always_block(&mut statements)?;
            } else {
                return Err(ParseError::new(format!("unexpected token {:?}", self.peek())));
            }
        }
        Ok(ModuleAst { name, signals, statements, outputs })
    }

    fn range(&mut self) -> Result<u32, ParseError> {
        // "[" hi ":" lo "]" -> width hi - lo + 1
        self.expect_symbol("[")?;
        let hi = self.const_number()?;
        self.expect_symbol(":")?;
        let lo = self.const_number()?;
        self.expect_symbol("]")?;
        if lo != 0 {
            return Err(ParseError::new("only [N:0] ranges are supported"));
        }
        Ok((hi - lo + 1) as u32)
    }

    fn const_number(&mut self) -> Result<u64, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => Err(ParseError::new(format!("expected number, found {other:?}"))),
        }
    }

    fn port_list(
        &mut self,
        signals: &mut Vec<SignalDecl>,
        outputs: &mut Vec<String>,
    ) -> Result<(), ParseError> {
        let mut dir = PortDir::Input;
        let mut width = 1u32;
        let mut is_reg = false;
        loop {
            if self.eat_keyword("input") {
                dir = PortDir::Input;
                is_reg = false;
                width = 1;
            } else if self.eat_keyword("output") {
                dir = PortDir::Output;
                is_reg = false;
                width = 1;
            }
            if self.eat_keyword("reg") {
                is_reg = true;
            }
            if self.at_symbol("[") {
                width = self.range()?;
            }
            let name = self.expect_ident()?;
            signals.push(SignalDecl {
                name: name.clone(),
                width,
                dir: Some(dir),
                is_reg,
                is_parameter: false,
                default: None,
            });
            if dir == PortDir::Output {
                outputs.push(name);
            }
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(())
    }

    fn var_decl(&mut self, signals: &mut Vec<SignalDecl>) -> Result<(), ParseError> {
        let is_reg = self.at_keyword("reg");
        self.pos += 1; // reg or wire
        let width = if self.at_symbol("[") { self.range()? } else { 1 };
        loop {
            let name = self.expect_ident()?;
            signals.push(SignalDecl {
                name,
                width,
                dir: None,
                is_reg,
                is_parameter: false,
                default: None,
            });
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_symbol(";")?;
        Ok(())
    }

    fn parameter_decl(&mut self, signals: &mut Vec<SignalDecl>) -> Result<(), ParseError> {
        self.expect_keyword("parameter")?;
        let width = if self.at_symbol("[") { self.range()? } else { 32 };
        let name = self.expect_ident()?;
        self.expect_symbol("=")?;
        let default = match self.next() {
            Some(Token::Number(n)) => BitVec::from_u64(n, width),
            Some(Token::SizedLiteral(text)) => parse_sized_literal(&text)?.resize_zext(width),
            other => {
                return Err(ParseError::new(format!("expected parameter value, found {other:?}")))
            }
        };
        self.expect_symbol(";")?;
        signals.push(SignalDecl {
            name,
            width,
            dir: None,
            is_reg: false,
            is_parameter: true,
            default: Some(default),
        });
        Ok(())
    }

    fn always_block(&mut self, statements: &mut Vec<Statement>) -> Result<(), ParseError> {
        self.expect_keyword("always")?;
        self.expect_symbol("@")?;
        self.expect_symbol("(")?;
        self.expect_keyword("posedge")?;
        let _clk = self.expect_ident()?;
        self.expect_symbol(")")?;
        let block = self.eat_keyword("begin");
        loop {
            if block && self.eat_keyword("end") {
                break;
            }
            let lhs = self.expect_ident()?;
            self.expect_symbol("<=")?;
            let rhs = self.expr()?;
            self.expect_symbol(";")?;
            statements.push(Statement::NonBlocking { lhs, rhs });
            if !block {
                break;
            }
        }
        Ok(())
    }

    // ----- expressions, by descending precedence -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.logical_or()?;
        if self.eat_symbol("?") {
            let then_ = self.expr()?;
            self.expect_symbol(":")?;
            let else_ = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(then_), Box::new(else_)))
        } else {
            Ok(cond)
        }
    }

    fn logical_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.logical_and()?;
        while self.eat_symbol("||") {
            let rhs = self.logical_and()?;
            lhs = Expr::Binary(BinaryOp::LogicalOr, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn logical_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_or()?;
        while self.eat_symbol("&&") {
            let rhs = self.bit_or()?;
            lhs = Expr::Binary(BinaryOp::LogicalAnd, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_xor()?;
        while self.at_symbol("|") {
            self.pos += 1;
            let rhs = self.bit_xor()?;
            lhs = Expr::Binary(BinaryOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bit_and()?;
        while self.at_symbol("^") {
            self.pos += 1;
            let rhs = self.bit_and()?;
            lhs = Expr::Binary(BinaryOp::Xor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality()?;
        while self.at_symbol("&") {
            self.pos += 1;
            let rhs = self.equality()?;
            lhs = Expr::Binary(BinaryOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.relational()?;
        loop {
            if self.eat_symbol("==") {
                let rhs = self.relational()?;
                lhs = Expr::Binary(BinaryOp::Eq, Box::new(lhs), Box::new(rhs));
            } else if self.eat_symbol("!=") {
                let rhs = self.relational()?;
                lhs = Expr::Binary(BinaryOp::Ne, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.shift()?;
        loop {
            let op = if self.eat_symbol("<=") {
                BinaryOp::Le
            } else if self.eat_symbol(">=") {
                BinaryOp::Ge
            } else if self.at_symbol("<") {
                self.pos += 1;
                BinaryOp::Lt
            } else if self.at_symbol(">") {
                self.pos += 1;
                BinaryOp::Gt
            } else {
                return Ok(lhs);
            };
            let rhs = self.shift()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive()?;
        loop {
            // `<<<` / `>>>` are Verilog's arithmetic shifts. The subset has no
            // signed values, and Verilog defines arithmetic shifts of unsigned
            // operands to behave exactly like the logical ones, so both forms
            // lower to the same operators (the lexer keeps `>>>` a single
            // token, so it can no longer mis-parse as `>>` followed by `>`).
            if self.eat_symbol("<<") || self.eat_symbol("<<<") {
                let rhs = self.additive()?;
                lhs = Expr::Binary(BinaryOp::Shl, Box::new(lhs), Box::new(rhs));
            } else if self.eat_symbol(">>") || self.eat_symbol(">>>") {
                let rhs = self.additive()?;
                lhs = Expr::Binary(BinaryOp::Shr, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            if self.at_symbol("+") {
                self.pos += 1;
                let rhs = self.multiplicative()?;
                lhs = Expr::Binary(BinaryOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.at_symbol("-") {
                self.pos += 1;
                let rhs = self.multiplicative()?;
                lhs = Expr::Binary(BinaryOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while self.at_symbol("*") {
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::Binary(BinaryOp::Mul, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let op = if self.at_symbol("~") {
            Some(UnaryOp::Not)
        } else if self.at_symbol("-") {
            Some(UnaryOp::Neg)
        } else if self.at_symbol("!") {
            Some(UnaryOp::LogicalNot)
        } else if self.at_symbol("&") {
            Some(UnaryOp::RedAnd)
        } else if self.at_symbol("|") {
            Some(UnaryOp::RedOr)
        } else if self.at_symbol("^") {
            Some(UnaryOp::RedXor)
        } else {
            None
        };
        if let Some(op) = op {
            self.pos += 1;
            let operand = self.unary()?;
            return Ok(Expr::Unary(op, Box::new(operand)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut base = self.primary()?;
        while self.at_symbol("[") {
            self.pos += 1;
            let index = self.expr()?;
            if self.eat_symbol(":") {
                let hi = match index {
                    Expr::Literal(ref bv) => bv.to_u64().unwrap_or(0) as u32,
                    _ => return Err(ParseError::new("part-select bounds must be constants")),
                };
                let lo = self.const_number()? as u32;
                self.expect_symbol("]")?;
                base = Expr::PartSelect(Box::new(base), hi, lo);
            } else {
                self.expect_symbol("]")?;
                base = match index {
                    Expr::Literal(ref bv) => {
                        Expr::BitSelect(Box::new(base), bv.to_u64().unwrap_or(0) as u32)
                    }
                    other => Expr::DynBitSelect(Box::new(base), Box::new(other)),
                };
            }
        }
        Ok(base)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(Expr::Literal(BitVec::from_u64(n, 32))),
            Some(Token::SizedLiteral(text)) => Ok(Expr::Literal(parse_sized_literal(&text)?)),
            Some(Token::Ident(name)) => Ok(Expr::Ident(name)),
            Some(Token::Symbol(s)) if s == "(" => {
                let e = self.expr()?;
                self.expect_symbol(")")?;
                Ok(e)
            }
            Some(Token::Symbol(s)) if s == "{" => {
                let mut parts = vec![self.expr()?];
                while self.eat_symbol(",") {
                    parts.push(self.expr()?);
                }
                self.expect_symbol("}")?;
                Ok(Expr::Concat(parts))
            }
            other => Err(ParseError::new(format!("unexpected token {other:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ADD_MUL_AND: &str = r#"
// add_mul_and.v: computes (a+b)*c&d in two clock cycles.
module add_mul_and(input clk, input [15:0] a, b, c, d,
                   output reg [15:0] out);
  reg [15:0] r;
  always @(posedge clk) begin
    r <= (a+b)*c&d;
    out <= r;
  end
endmodule
"#;

    #[test]
    fn parses_the_papers_running_example() {
        let m = parse_module(ADD_MUL_AND).unwrap();
        assert_eq!(m.name, "add_mul_and");
        assert_eq!(m.outputs, vec!["out"]);
        assert_eq!(m.data_inputs().len(), 4);
        assert_eq!(m.signal("a").unwrap().width, 16);
        assert_eq!(m.signal("r").unwrap().width, 16);
        assert!(m.signal("out").unwrap().is_reg);
        assert_eq!(m.statements.len(), 2);
        assert!(matches!(m.statements[0], Statement::NonBlocking { .. }));
    }

    #[test]
    fn parses_combinational_assign() {
        let m = parse_module(
            "module f(input [7:0] a, b, output [7:0] y); assign y = (a ^ b) | 8'h0f; endmodule",
        )
        .unwrap();
        assert_eq!(m.statements.len(), 1);
        match &m.statements[0] {
            Statement::Assign { lhs, rhs } => {
                assert_eq!(lhs, "y");
                assert!(matches!(rhs, Expr::Binary(BinaryOp::Or, _, _)));
            }
            _ => panic!("expected assign"),
        }
    }

    #[test]
    fn parses_parameters_ternary_and_selects() {
        let src = r#"
module lut2(input [1:0] in, output out);
  parameter [3:0] INIT = 4'h8;
  assign out = INIT[in];
endmodule
"#;
        let m = parse_module(src).unwrap();
        let init = m.signal("INIT").unwrap();
        assert!(init.is_parameter);
        assert_eq!(init.width, 4);
        assert_eq!(init.default.as_ref().unwrap().to_u64(), Some(8));
        match &m.statements[0] {
            Statement::Assign { rhs, .. } => assert!(matches!(rhs, Expr::DynBitSelect(..))),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_part_selects_and_concat() {
        let src =
            "module s(input [15:0] x, output [15:0] y); assign y = {x[7:0], x[15:8]}; endmodule";
        let m = parse_module(src).unwrap();
        match &m.statements[0] {
            Statement::Assign { rhs: Expr::Concat(parts), .. } => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], Expr::PartSelect(_, 7, 0)));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn operator_precedence_mul_before_and() {
        // (a+b)*c&d must parse as ((a+b)*c) & d.
        let m = parse_module(
            "module p(input [7:0] a, b, c, d, output [7:0] y); assign y = (a+b)*c&d; endmodule",
        )
        .unwrap();
        match &m.statements[0] {
            Statement::Assign { rhs: Expr::Binary(BinaryOp::And, lhs, _), .. } => {
                assert!(matches!(**lhs, Expr::Binary(BinaryOp::Mul, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn reports_errors_with_context() {
        assert!(parse_module("module m(").is_err());
        assert!(parse_module("module m(input a); assign ; endmodule").is_err());
        assert!(parse_module("module m(input a); garbage x; endmodule").is_err());
    }

    fn expr_module(expr: &str) -> String {
        format!("module m(input [7:0] a, b, output [7:0] y); assign y = {expr}; endmodule")
    }

    #[test]
    fn sized_literals_reject_overflow_and_wide_widths() {
        // Value overflowing the stated width: a parse error, not silent truncation.
        for bad in ["4'hFFF", "4'd16", "2'b111", "64'd18446744073709551616", "8'hABC"] {
            let err = parse_module(&expr_module(bad)).unwrap_err();
            assert!(
                err.to_string().contains("overflow"),
                "`{bad}` should report overflow, got: {err}"
            );
        }
        // Stated width beyond the 64-bit subset cap.
        for bad in ["65'd1", "128'd1", "4294967295'h0"] {
            let err = parse_module(&expr_module(bad)).unwrap_err();
            assert!(err.to_string().contains("64"), "`{bad}` should report the cap, got: {err}");
        }
    }

    #[test]
    fn sized_literals_accept_the_boundary() {
        // The same magnitudes one notch inside the limits parse fine.
        for (ok, value) in [
            ("4'hF", 0xF),
            ("4'd15", 15),
            ("2'b11", 3),
            ("8'h0FF", 0xFF), // leading zero digits are not overflow
            ("64'hFFFFFFFFFFFFFFFF", u64::MAX),
            ("64'd18446744073709551615", u64::MAX),
        ] {
            let m = parse_module(&expr_module(ok)).unwrap();
            match &m.statements[0] {
                Statement::Assign { rhs: Expr::Literal(bv), .. } => {
                    assert_eq!(bv.to_u64(), Some(value), "literal `{ok}`");
                }
                other => panic!("unexpected parse of `{ok}`: {other:?}"),
            }
        }
    }

    #[test]
    fn arithmetic_shifts_lower_to_logical_ones() {
        // `>>>` used to lex as `>>` `>` and die with a confusing "unexpected
        // token" error; it now parses and, with only unsigned values in the
        // subset, means exactly `>>` (same for `<<<` and `<<`).
        let m = parse_module(&expr_module("a >>> b")).unwrap();
        match &m.statements[0] {
            Statement::Assign { rhs, .. } => {
                assert!(matches!(rhs, Expr::Binary(BinaryOp::Shr, _, _)))
            }
            _ => panic!(),
        }
        let m = parse_module(&expr_module("a <<< 2")).unwrap();
        match &m.statements[0] {
            Statement::Assign { rhs, .. } => {
                assert!(matches!(rhs, Expr::Binary(BinaryOp::Shl, _, _)))
            }
            _ => panic!(),
        }
        // Precedence unchanged: a >>> b > c is (a >>> b) > c.
        let m = parse_module(&expr_module("a >>> b > c ? a : b")).unwrap();
        match &m.statements[0] {
            Statement::Assign { rhs: Expr::Ternary(cond, _, _), .. } => {
                assert!(matches!(**cond, Expr::Binary(BinaryOp::Gt, _, _)));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }
}
