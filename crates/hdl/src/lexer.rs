//! Tokenizer for the mini-HDL.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier or keyword.
    Ident(String),
    /// An unsized decimal number.
    Number(u64),
    /// A sized literal such as `8'hff` (kept as text; parsed by `lr-bv`).
    SizedLiteral(String),
    /// Any punctuation or operator symbol.
    Symbol(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::SizedLiteral(s) => write!(f, "{s}"),
            Token::Symbol(s) => write!(f, "{s}"),
        }
    }
}

/// Tokenizes mini-HDL source text. Comments (`//` and `/* */`) are skipped.
pub fn tokenize(src: &str) -> Result<Vec<Token>, String> {
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && bytes[i + 1] == '/' {
            while i < n && bytes[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < n && bytes[i + 1] == '*' {
            i += 2;
            while i + 1 < n && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                i += 1;
            }
            i = (i + 2).min(n);
            continue;
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' || c == '\\' || c == '$' {
            let start = i;
            i += 1;
            while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '$')
            {
                i += 1;
            }
            out.push(Token::Ident(bytes[start..i].iter().collect()));
            continue;
        }
        // Numbers and sized literals.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && (bytes[i].is_ascii_digit() || bytes[i] == '_') {
                i += 1;
            }
            if i < n && bytes[i] == '\'' {
                // Sized literal: width ' base digits
                i += 1; // consume '
                if i < n {
                    i += 1; // consume base char
                }
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::SizedLiteral(bytes[start..i].iter().collect()));
            } else {
                let text: String = bytes[start..i].iter().filter(|c| **c != '_').collect();
                let value: u64 =
                    text.parse().map_err(|_| format!("bad number literal `{text}`"))?;
                out.push(Token::Number(value));
            }
            continue;
        }
        // Multi-character symbols. Three-character shifts come first so that
        // `>>>` / `<<<` lex as one arithmetic-shift token instead of `>>` + `>`
        // (which would mis-parse downstream as a shift followed by a compare).
        let three: String = bytes[i..n.min(i + 3)].iter().collect();
        if [">>>", "<<<"].contains(&three.as_str()) {
            out.push(Token::Symbol(three));
            i += 3;
            continue;
        }
        let two: String = bytes[i..n.min(i + 2)].iter().collect();
        if ["<=", ">=", "==", "!=", "&&", "||", "<<", ">>"].contains(&two.as_str()) {
            out.push(Token::Symbol(two));
            i += 2;
            continue;
        }
        // Single-character symbols.
        if "()[]{}:;,.=+-*&|^~?!<>#@".contains(c) {
            out.push(Token::Symbol(c.to_string()));
            i += 1;
            continue;
        }
        return Err(format!("unexpected character `{c}` at offset {i}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_module_header() {
        let toks = tokenize("module m(input [7:0] a, output out);").unwrap();
        assert_eq!(toks[0], Token::Ident("module".into()));
        assert_eq!(toks[1], Token::Ident("m".into()));
        assert!(toks.contains(&Token::Symbol("[".into())));
        assert!(toks.contains(&Token::Number(7)));
    }

    #[test]
    fn tokenizes_sized_literals_and_operators() {
        let toks = tokenize("assign x = a + 8'hff - 4'b1010 << 2;").unwrap();
        assert!(toks.contains(&Token::SizedLiteral("8'hff".into())));
        assert!(toks.contains(&Token::SizedLiteral("4'b1010".into())));
        assert!(toks.contains(&Token::Symbol("<<".into())));
    }

    #[test]
    fn skips_comments() {
        let toks = tokenize("a // comment\n /* block \n comment */ b").unwrap();
        assert_eq!(toks, vec![Token::Ident("a".into()), Token::Ident("b".into())]);
    }

    #[test]
    fn arithmetic_shifts_are_single_tokens() {
        let toks = tokenize("a >>> 2").unwrap();
        assert_eq!(toks[1], Token::Symbol(">>>".into()), "`>>>` must not split into `>>` `>`");
        let toks = tokenize("a <<< 2").unwrap();
        assert_eq!(toks[1], Token::Symbol("<<<".into()));
        // Adjacent logical shift + compare still needs whitespace to lex as such.
        let toks = tokenize("a >> b > c").unwrap();
        assert_eq!(toks[1], Token::Symbol(">>".into()));
        assert_eq!(toks[3], Token::Symbol(">".into()));
    }

    #[test]
    fn nonblocking_operator_is_one_token() {
        let toks = tokenize("r <= a;").unwrap();
        assert_eq!(toks[1], Token::Symbol("<=".into()));
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(tokenize("a ` b").is_err());
    }
}
