//! Built-in primitive models written in the mini-HDL, standing in for the
//! vendor-provided Verilog simulation models the paper imports (Table 1).
//!
//! Licensing forbids shipping the vendor sources, so each model here re-implements
//! the documented behaviour of its primitive (UG574/UG579 for Xilinx, the ECP5 and
//! Cyclone 10 LP handbooks, and the SOFA repository for `frac_lut4`). The models are
//! deliberately written in the *style* of vendor simulation models — parameters for
//! configuration bits, registers guarded by parameters — so that the semantics
//! extraction pass ([`crate::extract_semantics`]) exercises the same code path the
//! paper describes: parameters are converted to ports and become solver-visible
//! symbols.
//!
//! The two largest DSP models (Xilinx `DSP48E2`, Lattice `ALU54A`) are built
//! programmatically in `lr-arch::primitives` instead of as mini-HDL text; the
//! experiment binary for Table 1 reports both kinds.

/// A built-in primitive model: its architecture, module name, and mini-HDL source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuiltinModel {
    /// FPGA architecture family the primitive belongs to.
    pub architecture: &'static str,
    /// Module name (matches the vendor primitive name).
    pub name: &'static str,
    /// Mini-HDL source text.
    pub source: &'static str,
}

/// Xilinx UltraScale+ LUT6 (UG574): 6-input LUT with a 64-bit truth table.
pub const LUT6: &str = r#"
// LUT6: 6-input look-up table. O = INIT[{I5,I4,I3,I2,I1,I0}].
module LUT6(input I0, input I1, input I2, input I3, input I4, input I5, output O);
  parameter [63:0] INIT = 64'h0000000000000000;
  wire [5:0] sel;
  assign sel = {I5, I4, I3, I2, I1, I0};
  assign O = INIT[sel];
endmodule
"#;

/// Xilinx UltraScale+ CARRY8 (UG574): 8-bit carry chain, sum outputs only.
pub const CARRY8: &str = r#"
// CARRY8: 8-bit carry chain. O[i] = S[i] ^ C[i]; C[i+1] = S[i] ? C[i] : DI[i].
module CARRY8(input [7:0] S, input [7:0] DI, input CI, output [8:0] O);
  wire c0, c1, c2, c3, c4, c5, c6, c7, c8;
  assign c0 = CI;
  wire [7:0] sum;
  assign c1 = S[0] ? c0 : DI[0];
  assign c2 = S[1] ? c1 : DI[1];
  assign c3 = S[2] ? c2 : DI[2];
  assign c4 = S[3] ? c3 : DI[3];
  assign c5 = S[4] ? c4 : DI[4];
  assign c6 = S[5] ? c5 : DI[5];
  assign c7 = S[6] ? c6 : DI[6];
  assign c8 = S[7] ? c7 : DI[7];
  assign sum = S ^ {c7, c6, c5, c4, c3, c2, c1, c0};
  assign O = {c8, sum};
endmodule
"#;

/// Lattice ECP5 LUT2: 2-input LUT.
pub const LUT2: &str = r#"
// LUT2: 2-input look-up table.
module LUT2(input A, input B, output Z);
  parameter [3:0] INIT = 4'h0;
  wire [1:0] sel;
  assign sel = {B, A};
  assign Z = INIT[sel];
endmodule
"#;

/// Lattice ECP5 LUT4: 4-input LUT.
pub const LUT4: &str = r#"
// LUT4: 4-input look-up table.
module LUT4(input A, input B, input C, input D, output Z);
  parameter [15:0] INIT = 16'h0000;
  wire [3:0] sel;
  assign sel = {D, C, B, A};
  assign Z = INIT[sel];
endmodule
"#;

/// Lattice ECP5 CCU2C: 2-bit carry slice built from two LUT4 functions plus carry.
pub const CCU2C: &str = r#"
// CCU2C: two-bit carry-chain element (simplified to ADD/SUB style propagate-generate).
module CCU2C(input CIN, input A0, input B0, input A1, input B1, output [2:0] S);
  parameter [15:0] INIT0 = 16'h0000;
  parameter [15:0] INIT1 = 16'h0000;
  parameter [0:0] INJECT1_0 = 1'b0;
  parameter [0:0] INJECT1_1 = 1'b0;
  wire p0, p1, g0, g1, c1, c2, s0, s1;
  wire [1:0] sel0, sel1;
  assign sel0 = {B0, A0};
  assign sel1 = {B1, A1};
  assign p0 = INIT0[sel0];
  assign p1 = INIT1[sel1];
  assign g0 = A0 & B0 & ~INJECT1_0;
  assign g1 = A1 & B1 & ~INJECT1_1;
  assign c1 = p0 ? CIN : g0;
  assign c2 = p1 ? c1 : g1;
  assign s0 = p0 ^ CIN;
  assign s1 = p1 ^ c1;
  assign S = {c2, s1, s0};
endmodule
"#;

/// Lattice ECP5 MULT18X18C: 18×18 multiplier with optional input/output registers.
pub const MULT18X18C: &str = r#"
// MULT18X18C: 18x18 multiplier; REG_INPUT/REG_OUTPUT select pipeline registers.
module MULT18X18C(input clk, input [17:0] A, input [17:0] B, output [35:0] P);
  parameter [0:0] REG_INPUT = 1'b0;
  parameter [0:0] REG_OUTPUT = 1'b0;
  reg [17:0] a_q;
  reg [17:0] b_q;
  reg [35:0] p_q;
  wire [17:0] a_mux;
  wire [17:0] b_mux;
  wire [35:0] product;
  always @(posedge clk) begin
    a_q <= A;
    b_q <= B;
  end
  assign a_mux = REG_INPUT ? a_q : A;
  assign b_mux = REG_INPUT ? b_q : B;
  assign product = {18'd0, a_mux} * {18'd0, b_mux};
  always @(posedge clk) p_q <= product;
  assign P = REG_OUTPUT ? p_q : product;
endmodule
"#;

/// Intel Cyclone 10 LP embedded multiplier (`cyclone10lp_mac_mult`).
pub const CYCLONE10LP_MAC_MULT: &str = r#"
// cyclone10lp_mac_mult: 18x18 embedded multiplier with optional register stages.
module cyclone10lp_mac_mult(input clk, input [17:0] dataa, input [17:0] datab,
                            output [35:0] dataout);
  parameter [0:0] REGISTER_A = 1'b0;
  parameter [0:0] REGISTER_B = 1'b0;
  parameter [0:0] REGISTER_OUT = 1'b0;
  reg [17:0] a_q;
  reg [17:0] b_q;
  reg [35:0] out_q;
  wire [17:0] a_mux;
  wire [17:0] b_mux;
  wire [35:0] product;
  always @(posedge clk) begin
    a_q <= dataa;
    b_q <= datab;
  end
  assign a_mux = REGISTER_A ? a_q : dataa;
  assign b_mux = REGISTER_B ? b_q : datab;
  assign product = {18'd0, a_mux} * {18'd0, b_mux};
  always @(posedge clk) out_q <= product;
  assign dataout = REGISTER_OUT ? out_q : product;
endmodule
"#;

/// SOFA `frac_lut4`: the open-source FPGA's fracturable LUT4 (simplified to its
/// whole-LUT mode, as in the paper's Figure 5 architecture description).
pub const FRAC_LUT4: &str = r#"
// frac_lut4: SOFA fracturable 4-input LUT (whole-LUT mode).
module frac_lut4(input [3:0] in, input mode, output lut4_out);
  parameter [15:0] sram = 16'h0000;
  assign lut4_out = sram[in];
endmodule
"#;

/// All built-in mini-HDL primitive models, in Table 1 order.
pub fn builtin_models() -> Vec<BuiltinModel> {
    vec![
        BuiltinModel { architecture: "Xilinx UltraScale+", name: "LUT6", source: LUT6 },
        BuiltinModel { architecture: "Xilinx UltraScale+", name: "CARRY8", source: CARRY8 },
        BuiltinModel { architecture: "Lattice ECP5", name: "LUT2", source: LUT2 },
        BuiltinModel { architecture: "Lattice ECP5", name: "LUT4", source: LUT4 },
        BuiltinModel { architecture: "Lattice ECP5", name: "CCU2C", source: CCU2C },
        BuiltinModel { architecture: "Lattice ECP5", name: "MULT18X18C", source: MULT18X18C },
        BuiltinModel {
            architecture: "Intel Cyclone 10 LP",
            name: "cyclone10lp_mac_mult",
            source: CYCLONE10LP_MAC_MULT,
        },
        BuiltinModel { architecture: "SOFA", name: "frac_lut4", source: FRAC_LUT4 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::extract_semantics;
    use lr_bv::BitVec;
    use lr_ir::StreamInputs;

    fn env(pairs: &[(&str, u64, u32)]) -> StreamInputs {
        StreamInputs::from_constants(
            pairs.iter().map(|&(n, v, w)| (n.to_string(), BitVec::from_u64(v, w))),
        )
    }

    #[test]
    fn every_builtin_model_extracts() {
        for model in builtin_models() {
            let prog = extract_semantics(model.source)
                .unwrap_or_else(|e| panic!("{} failed to extract: {e}", model.name));
            assert!(prog.well_formed().is_ok(), "{} not well-formed", model.name);
            // Parameters must have become free inputs.
            assert!(
                !prog.free_vars().is_empty(),
                "{} should expose at least one symbol",
                model.name
            );
        }
    }

    #[test]
    fn lut6_reads_its_truth_table() {
        let prog = extract_semantics(LUT6).unwrap();
        // INIT = bit 37 set only; inputs select index 37 = 0b100101.
        let init = 1u64 << 37;
        let e = env(&[
            ("I0", 1, 1),
            ("I1", 0, 1),
            ("I2", 1, 1),
            ("I3", 0, 1),
            ("I4", 0, 1),
            ("I5", 1, 1),
            ("INIT", init, 64),
        ]);
        assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::from_bool(true));
        let e = env(&[
            ("I0", 0, 1),
            ("I1", 0, 1),
            ("I2", 1, 1),
            ("I3", 0, 1),
            ("I4", 0, 1),
            ("I5", 1, 1),
            ("INIT", init, 64),
        ]);
        assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::from_bool(false));
    }

    #[test]
    fn carry8_adds_correctly() {
        // Configure the chain as an adder: S = a ^ b, DI = a (the standard pattern).
        let prog = extract_semantics(CARRY8).unwrap();
        let a = 0b1011_0110u64;
        let b = 0b0110_1011u64;
        let e = env(&[("S", a ^ b, 8), ("DI", a, 8), ("CI", 0, 1)]);
        let out = prog.interp(&e, 0).unwrap();
        assert_eq!(out.extract(7, 0), BitVec::from_u64((a + b) & 0xFF, 8));
        assert_eq!(out.bit(8), (a + b) > 0xFF);
    }

    #[test]
    fn frac_lut4_matches_lut4_semantics() {
        let prog = extract_semantics(FRAC_LUT4).unwrap();
        let e = env(&[("in", 5, 4), ("mode", 0, 1), ("sram", 1 << 5, 16)]);
        assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::from_bool(true));
    }

    #[test]
    fn mac_mult_registers_are_parameter_controlled() {
        let prog = extract_semantics(CYCLONE10LP_MAC_MULT).unwrap();
        // Unregistered: product visible at cycle 0.
        let e = env(&[
            ("dataa", 100, 18),
            ("datab", 200, 18),
            ("REGISTER_A", 0, 1),
            ("REGISTER_B", 0, 1),
            ("REGISTER_OUT", 0, 1),
        ]);
        assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::from_u64(20000, 36));
        // Fully registered: product appears two cycles later.
        let e = env(&[
            ("dataa", 100, 18),
            ("datab", 200, 18),
            ("REGISTER_A", 1, 1),
            ("REGISTER_B", 1, 1),
            ("REGISTER_OUT", 1, 1),
        ]);
        assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::zeros(36));
        assert_eq!(prog.interp(&e, 2).unwrap(), BitVec::from_u64(20000, 36));
    }

    #[test]
    fn mult18x18c_multiplies() {
        let prog = extract_semantics(MULT18X18C).unwrap();
        let e = env(&[("A", 3000, 18), ("B", 1234, 18), ("REG_INPUT", 0, 1), ("REG_OUTPUT", 0, 1)]);
        assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::from_u64(3000 * 1234, 36));
    }

    #[test]
    fn ccu2c_propagates_carry() {
        let prog = extract_semantics(CCU2C).unwrap();
        // Adder configuration: INIT = XOR truth table (0110 per bit pair = 0x6666).
        let e = env(&[
            ("CIN", 1, 1),
            ("A0", 1, 1),
            ("B0", 0, 1),
            ("A1", 0, 1),
            ("B1", 0, 1),
            ("INIT0", 0x6666, 16),
            ("INIT1", 0x6666, 16),
            ("INJECT1_0", 0, 1),
            ("INJECT1_1", 0, 1),
        ]);
        let out = prog.interp(&e, 0).unwrap();
        // 1 + 0 + carry-in 1 = 0b10: s0 = 0, s1 = 1 (carry into bit 1).
        assert!(!out.bit(0));
        assert!(out.bit(1));
    }

    #[test]
    fn table1_sloc_counts_are_positive() {
        for model in builtin_models() {
            assert!(crate::count_sloc(model.source) >= 4, "{} too small", model.name);
        }
    }
}
