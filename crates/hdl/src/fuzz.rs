//! Differential fuzzing of the HDL frontend.
//!
//! From a single `u64` seed, [`generate_module`] emits a well-formed module in
//! the mini-HDL subset that deliberately spans the parser's grammar: mixed
//! signal widths (1..=64), every binary and unary operator (including shifts,
//! comparisons and the arithmetic-shift spellings), ternaries, concats,
//! bit/part/dynamic selects, sized literals in all three bases, and registers
//! with default (zero) initialisation.
//!
//! [`check_seed`] then runs the differential oracle over that module:
//!
//! 1. **Frontend closure** — the generated source must tokenize, parse and
//!    elaborate.
//! 2. **Round-trip closure** — `emit_verilog` of the elaborated program must
//!    re-parse and re-elaborate to an *interpretation-equivalent* program
//!    (checked by [`interp_equivalent`] over many random input environments
//!    across several cycles).
//!
//! A third layer — agreement between the elaborated spec and a technology-mapped
//! implementation — needs the mapping engine and therefore lives upstream in
//! `lr_bench` (`exp_fuzz`), reusing [`interp_equivalent`] from here.
//!
//! The generator is deterministic: the same seed always yields byte-identical
//! source, so any failing seed is a one-line reproducer. Counterexamples this
//! firehose shakes out are frozen as named fixtures under `tests/fixtures/`.

use lr_bv::BitVec;
use lr_ir::{Prog, StreamInputs};

use crate::elaborate::elaborate;
use crate::emit::emit_verilog;
use crate::parser::parse_module;

/// xorshift64* generator, the same dependency-free idiom as
/// `lr_serve::scenario::Rng` (this crate sits below `lr_serve`, so the type is
/// duplicated rather than imported).
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a generator from a seed (zero is remapped to a fixed odd constant).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut s = self.state;
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        self.state = s;
        s.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..bound` via a widening multiply (no modulo bias).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `lo..=hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo + 1)
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// A signal visible to the expression generator.
#[derive(Debug, Clone)]
struct Sig {
    name: String,
    width: u32,
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Widths biased toward the narrow end but covering the full 1..=64 range.
fn pick_width(rng: &mut FuzzRng) -> u32 {
    match rng.below(10) {
        0..=4 => rng.range(1, 8) as u32,
        5..=7 => rng.range(9, 16) as u32,
        _ => rng.range(17, 64) as u32,
    }
}

/// A random literal that fits its stated width (the parser rejects overflow).
fn gen_literal(rng: &mut FuzzRng) -> (String, u32) {
    if rng.chance(15) {
        // Unsized decimal: 32 bits in the subset.
        return (format!("{}", rng.below(1024)), 32);
    }
    let w = pick_width(rng);
    let v = rng.next_u64() & mask(w);
    let text = match rng.below(3) {
        0 => format!("{w}'h{v:x}"),
        1 => format!("{w}'d{v}"),
        _ => format!("{w}'b{v:b}"),
    };
    (text, w)
}

/// Generates an expression over `avail`, returning its text and the width the
/// elaborator will compute for it (bottom-up subset rules: arithmetic/bitwise
/// take the max operand width, shifts keep the left operand's width,
/// comparisons and reductions are 1 bit, concats sum).
fn gen_expr(rng: &mut FuzzRng, avail: &[Sig], depth: u32) -> (String, u32) {
    let leaf = |rng: &mut FuzzRng| -> (String, u32) {
        if rng.chance(55) {
            let s = &avail[rng.below(avail.len() as u64) as usize];
            (s.name.clone(), s.width)
        } else {
            gen_literal(rng)
        }
    };
    if depth == 0 {
        return leaf(rng);
    }
    match rng.below(100) {
        // Leaves keep trees from exploding.
        0..=19 => leaf(rng),
        // Unary operators.
        20..=33 => {
            let (inner, w) = gen_expr(rng, avail, depth - 1);
            match rng.below(6) {
                0 => (format!("(~{inner})"), w),
                1 => (format!("(-{inner})"), w),
                2 => (format!("(!{inner})"), 1),
                3 => (format!("(&{inner})"), 1),
                4 => (format!("(|{inner})"), 1),
                _ => (format!("(^{inner})"), 1),
            }
        }
        // Binary operators.
        34..=68 => {
            let (l, wl) = gen_expr(rng, avail, depth - 1);
            let (r, wr) = gen_expr(rng, avail, depth - 1);
            const ARITH: [&str; 6] = ["+", "-", "*", "&", "|", "^"];
            const SHIFT: [&str; 4] = ["<<", ">>", "<<<", ">>>"];
            const COMPARE: [&str; 8] = ["==", "!=", "<", "<=", ">", ">=", "&&", "||"];
            match rng.below(10) {
                0..=4 => {
                    let op = ARITH[rng.below(ARITH.len() as u64) as usize];
                    (format!("({l} {op} {r})"), wl.max(wr))
                }
                5..=6 => {
                    let op = SHIFT[rng.below(SHIFT.len() as u64) as usize];
                    (format!("({l} {op} {r})"), wl)
                }
                _ => {
                    let op = COMPARE[rng.below(COMPARE.len() as u64) as usize];
                    (format!("({l} {op} {r})"), 1)
                }
            }
        }
        // Ternary.
        69..=78 => {
            let (c, _) = gen_expr(rng, avail, depth - 1);
            let (t, wt) = gen_expr(rng, avail, depth - 1);
            let (e, we) = gen_expr(rng, avail, depth - 1);
            (format!("({c} ? {t} : {e})"), wt.max(we))
        }
        // Concat of 2..=3 parts.
        79..=88 => {
            let n = rng.range(2, 3);
            let mut parts = Vec::new();
            let mut total = 0;
            for _ in 0..n {
                let (p, w) = gen_expr(rng, avail, depth - 1);
                total += w;
                parts.push(p);
            }
            (format!("{{{}}}", parts.join(", ")), total)
        }
        // Bit / part / dynamic selects on a named signal.
        _ => {
            let s = avail[rng.below(avail.len() as u64) as usize].clone();
            match rng.below(10) {
                0..=4 => {
                    let i = rng.below(u64::from(s.width));
                    (format!("{}[{i}]", s.name), 1)
                }
                5..=7 => {
                    let hi = rng.below(u64::from(s.width)) as u32;
                    let lo = rng.below(u64::from(hi) + 1) as u32;
                    (format!("{}[{hi}:{lo}]", s.name), hi - lo + 1)
                }
                _ => {
                    // Dynamic index: must not be a bare literal (the parser
                    // folds those into constant bit-selects, whose bound we
                    // could not control here), so index through an addition.
                    let idx = &avail[rng.below(avail.len() as u64) as usize];
                    let off = rng.below(8);
                    (format!("{}[({} + {off})]", s.name, idx.name), 1)
                }
            }
        }
    }
}

fn decl(kind: &str, sig: &Sig) -> String {
    if sig.width == 1 {
        format!("  {kind} {};", sig.name)
    } else {
        format!("  {kind} [{}:0] {};", sig.width - 1, sig.name)
    }
}

/// Emits a deterministic, well-formed module for `seed`.
///
/// The module is named `fuzz_<seed hex>`; its output is `y`. Sequential
/// designs gain a `clk` input and drive their registers from a single
/// `always @(posedge clk)` block placed after all wire assigns, so elaboration
/// order constraints (combinational use-before-def) hold by construction.
#[must_use]
pub fn generate_module(seed: u64) -> String {
    let mut rng = FuzzRng::new(seed);
    let n_inputs = rng.range(2, 4);
    let inputs: Vec<Sig> =
        (0..n_inputs).map(|k| Sig { name: format!("i{k}"), width: pick_width(&mut rng) }).collect();
    let n_regs = if rng.chance(50) { rng.range(1, 2) } else { 0 };
    let sequential = n_regs > 0;
    let out = Sig { name: "y".to_string(), width: pick_width(&mut rng) };
    let out_is_reg = sequential && rng.chance(50);
    let n_wires = rng.below(4);
    let wires: Vec<Sig> =
        (0..n_wires).map(|k| Sig { name: format!("w{k}"), width: pick_width(&mut rng) }).collect();
    let regs: Vec<Sig> =
        (0..n_regs).map(|k| Sig { name: format!("r{k}"), width: pick_width(&mut rng) }).collect();

    let mut ports = Vec::new();
    if sequential {
        ports.push("input clk".to_string());
    }
    for s in &inputs {
        if s.width == 1 {
            ports.push(format!("input {}", s.name));
        } else {
            ports.push(format!("input [{}:0] {}", s.width - 1, s.name));
        }
    }
    let out_kind = if out_is_reg { "output reg" } else { "output" };
    if out.width == 1 {
        ports.push(format!("{out_kind} {}", out.name));
    } else {
        ports.push(format!("{out_kind} [{}:0] {}", out.width - 1, out.name));
    }

    let mut body = Vec::new();
    let depth = rng.range(2, 3) as u32;

    // Wires, in dependency order: wire k may read inputs, wires 0..k, and any
    // register (registers get placeholders before statement elaboration).
    let mut wire_avail: Vec<Sig> = inputs.clone();
    wire_avail.extend(regs.iter().cloned());
    if out_is_reg {
        wire_avail.push(out.clone());
    }
    for (k, w) in wires.iter().enumerate() {
        body.push(decl("wire", w));
        let avail: Vec<Sig> =
            wire_avail.iter().cloned().chain(wires[..k].iter().cloned()).collect();
        let (rhs, _) = gen_expr(&mut rng, &avail, depth);
        body.push(format!("  assign {} = {rhs};", w.name));
    }

    // Register declarations, then one always block driving every register.
    for r in &regs {
        body.push(decl("reg", r));
    }
    let mut everything: Vec<Sig> = inputs.clone();
    everything.extend(wires.iter().cloned());
    everything.extend(regs.iter().cloned());
    if out_is_reg {
        everything.push(out.clone());
    }
    if sequential {
        body.push("  always @(posedge clk) begin".to_string());
        for r in &regs {
            let (rhs, _) = gen_expr(&mut rng, &everything, depth);
            body.push(format!("    {} <= {rhs};", r.name));
        }
        if out_is_reg {
            let (rhs, _) = gen_expr(&mut rng, &everything, depth);
            body.push(format!("    {} <= {rhs};", out.name));
        }
        body.push("  end".to_string());
    }
    if !out_is_reg {
        let (rhs, _) = gen_expr(&mut rng, &everything, depth);
        body.push(format!("  assign {} = {rhs};", out.name));
    }

    format!("module fuzz_{seed:016x}({});\n{}\nendmodule\n", ports.join(", "), body.join("\n"))
}

/// Checks that two programs agree under interpretation: `envs` random input
/// environments (drawn deterministically from `seed`, over `spec`'s free
/// variables), each evaluated at every cycle in `first_cycle..=last_cycle`.
///
/// This is the equivalence notion shared by the round-trip oracle here and the
/// mapped-implementation oracle in `lr_bench` (which compares from the
/// pipeline depth through the BMC window, per the cache-replay convention).
///
/// # Errors
/// Returns a human-readable description of the first disagreement or
/// interpreter error.
pub fn interp_equivalent(
    spec: &Prog,
    candidate: &Prog,
    seed: u64,
    envs: usize,
    first_cycle: u32,
    last_cycle: u32,
) -> Result<(), String> {
    let vars = spec.free_vars();
    let mut rng = FuzzRng::new(seed ^ 0xD1FF_F00D_5EED_5EED);
    for round in 0..envs {
        let env = StreamInputs::from_constants(vars.iter().map(|(name, width)| {
            (name.clone(), BitVec::from_u64(rng.next_u64() & mask(*width), *width))
        }));
        for t in first_cycle..=last_cycle {
            let a = spec
                .interp(&env, t)
                .map_err(|e| format!("round {round} cycle {t}: spec interp failed: {e}"))?;
            let b = candidate
                .interp(&env, t)
                .map_err(|e| format!("round {round} cycle {t}: candidate interp failed: {e}"))?;
            if a != b {
                return Err(format!(
                    "round {round} cycle {t}: spec = {a}, candidate = {b} (inputs: {})",
                    vars.iter()
                        .map(|(n, _)| format!("{n}={}", env_value(&env, n)))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
    }
    Ok(())
}

fn env_value(env: &StreamInputs, name: &str) -> String {
    use lr_ir::Inputs as _;
    env.get(name, 0).map_or_else(|| "?".to_string(), |bv| bv.to_verilog_literal())
}

/// The outcome of running the differential oracle on one seed.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// The seed that produced this module.
    pub seed: u64,
    /// The generated source (kept so failures can be frozen as fixtures).
    pub source: String,
    /// The elaborated program, when layer 1 passed (callers feed this to the
    /// mapping oracle).
    pub spec: Option<Prog>,
    /// Layer 1a: generated source parses.
    pub parse_ok: bool,
    /// Layer 1b: parsed module elaborates.
    pub elaborate_ok: bool,
    /// Layer 2: emit → re-parse → re-elaborate is interpretation-equivalent.
    pub roundtrip_ok: bool,
    /// Description of the first failure, if any.
    pub failure: Option<String>,
}

impl FuzzOutcome {
    /// True when every oracle layer passed.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs oracle layers 1 and 2 on one seed: generate, parse, elaborate, then
/// round-trip the emitted Verilog and check interpretation equivalence over
/// `envs` random environments across cycles `0..=cycles`.
#[must_use]
pub fn check_seed(seed: u64, envs: usize, cycles: u32) -> FuzzOutcome {
    let source = generate_module(seed);
    let mut out = FuzzOutcome {
        seed,
        source,
        spec: None,
        parse_ok: false,
        elaborate_ok: false,
        roundtrip_ok: false,
        failure: None,
    };
    let ast = match parse_module(&out.source) {
        Ok(ast) => ast,
        Err(e) => {
            out.failure = Some(format!("seed {seed}: generated source failed to parse: {e}"));
            return out;
        }
    };
    out.parse_ok = true;
    let spec = match elaborate(&ast, false) {
        Ok(p) => p,
        Err(e) => {
            out.failure = Some(format!("seed {seed}: generated source failed to elaborate: {e}"));
            return out;
        }
    };
    out.elaborate_ok = true;
    let emitted = emit_verilog(&spec);
    let reparsed = match parse_module(&emitted)
        .map_err(|e| e.to_string())
        .and_then(|ast| elaborate(&ast, false).map_err(|e| e.to_string()))
    {
        Ok(p) => p,
        Err(e) => {
            out.failure = Some(format!("seed {seed}: emitted Verilog failed to re-elaborate: {e}"));
            out.spec = Some(spec);
            return out;
        }
    };
    if let Err(e) = interp_equivalent(&spec, &reparsed, seed, envs, 0, cycles) {
        out.failure = Some(format!("seed {seed}: round-trip mismatch: {e}"));
        out.spec = Some(spec);
        return out;
    }
    out.roundtrip_ok = true;
    out.spec = Some(spec);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        assert_eq!(generate_module(42), generate_module(42));
        assert_ne!(generate_module(1), generate_module(2));
        assert!(generate_module(7).starts_with("module fuzz_0000000000000007("));
    }

    #[test]
    fn below_is_unbiased_and_in_range() {
        let mut rng = FuzzRng::new(99);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            let v = rng.below(3);
            assert!(v < 3);
            counts[v as usize] += 1;
        }
        for c in counts {
            // Loose uniformity bound: each bucket within ±30% of the mean.
            assert!((700..=1300).contains(&c), "skewed bucket counts {counts:?}");
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        assert_ne!(FuzzRng::new(0).next_u64(), 0);
    }

    #[test]
    fn early_seeds_survive_the_full_oracle() {
        for seed in 0..50 {
            let outcome = check_seed(seed, 8, 4);
            assert!(
                outcome.ok(),
                "seed {seed} failed: {}\nsource:\n{}",
                outcome.failure.unwrap(),
                outcome.source
            );
        }
    }

    #[test]
    fn the_grammar_gets_exercised() {
        // Over a modest seed range the generator should hit every construct
        // class at least once; this guards against weight-table rot.
        let all: String = (0..200).map(generate_module).collect();
        for needle in
            ["<<", ">>", "<<<", ">>>", "?", "{", "always @(posedge clk)", "'h", "'d", "'b", "=="]
        {
            assert!(all.contains(needle), "200 seeds never produced `{needle}`");
        }
    }
}
