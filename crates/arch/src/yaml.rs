//! A minimal YAML-subset parser for architecture descriptions.
//!
//! Lakeroad's architecture descriptions are short YAML files (paper §4.2, Fig. 5).
//! Rather than pull in a serialization dependency, this module parses the subset
//! those files actually need: nested mappings by indentation, block sequences
//! (`- item`), inline flow mappings (`{ a: b, c: d }`) and sequences (`[x, y]`),
//! and plain scalars (strings, integers, booleans).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed YAML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Yaml {
    /// A scalar (string form; use the accessors to interpret).
    Scalar(String),
    /// A sequence of values.
    List(Vec<Yaml>),
    /// A mapping from string keys to values (insertion order not preserved).
    Map(BTreeMap<String, Yaml>),
}

impl Yaml {
    /// The value as a string scalar.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Yaml::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an integer.
    pub fn as_int(&self) -> Option<i64> {
        self.as_str().and_then(|s| s.parse().ok())
    }

    /// The value as a boolean (`true`/`false`).
    pub fn as_bool(&self) -> Option<bool> {
        match self.as_str()? {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        }
    }

    /// The value as a list.
    pub fn as_list(&self) -> Option<&[Yaml]> {
        match self {
            Yaml::List(l) => Some(l),
            _ => None,
        }
    }

    /// The value as a map.
    pub fn as_map(&self) -> Option<&BTreeMap<String, Yaml>> {
        match self {
            Yaml::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Yaml> {
        self.as_map()?.get(key)
    }
}

/// A YAML parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YamlError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for YamlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "YAML error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for YamlError {}

struct Line {
    number: usize,
    indent: usize,
    text: String,
}

/// Parses a YAML document (the supported subset).
///
/// # Errors
/// Returns a [`YamlError`] pointing at the offending line.
pub fn parse_yaml(src: &str) -> Result<Yaml, YamlError> {
    let lines: Vec<Line> = src
        .lines()
        .enumerate()
        .map(|(i, raw)| {
            let without_comment = strip_comment(raw);
            let indent = without_comment.len() - without_comment.trim_start().len();
            Line { number: i + 1, indent, text: without_comment.trim().to_string() }
        })
        .filter(|l| !l.text.is_empty())
        .collect();
    let mut pos = 0;
    let value = parse_block(&lines, &mut pos, 0)?;
    Ok(value)
}

fn strip_comment(line: &str) -> &str {
    // A comment starts at a '#' that is not inside a quoted string.
    let mut in_quote = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' | '\'' => in_quote = !in_quote,
            '#' if !in_quote => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_block(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Yaml, YamlError> {
    if *pos >= lines.len() {
        return Ok(Yaml::Map(BTreeMap::new()));
    }
    if lines[*pos].text.starts_with("- ") || lines[*pos].text == "-" {
        parse_sequence(lines, pos, indent)
    } else {
        parse_mapping(lines, pos, indent)
    }
}

fn parse_sequence(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Yaml, YamlError> {
    let mut items = Vec::new();
    while *pos < lines.len() && lines[*pos].indent >= indent {
        let line = &lines[*pos];
        if line.indent != indent || !(line.text.starts_with("- ") || line.text == "-") {
            break;
        }
        let rest = line.text.trim_start_matches('-').trim().to_string();
        let number = line.number;
        *pos += 1;
        if rest.is_empty() {
            // The item is a nested block.
            items.push(parse_block(lines, pos, next_indent(lines, *pos, indent)?)?);
        } else if rest.contains(':') && !is_flow(&rest) {
            // The item is a mapping whose first key is inline with the dash.
            let mut map = BTreeMap::new();
            insert_key_value(&mut map, &rest, lines, pos, number, indent + 2)?;
            while *pos < lines.len() && lines[*pos].indent > indent {
                let l = &lines[*pos];
                let text = l.text.clone();
                let num = l.number;
                let ind = l.indent;
                *pos += 1;
                insert_key_value(&mut map, &text, lines, pos, num, ind)?;
            }
            items.push(Yaml::Map(map));
        } else {
            items.push(parse_scalar_or_flow(&rest, number)?);
        }
    }
    Ok(Yaml::List(items))
}

fn parse_mapping(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Yaml, YamlError> {
    let mut map = BTreeMap::new();
    while *pos < lines.len() && lines[*pos].indent >= indent {
        let line = &lines[*pos];
        if line.indent != indent || line.text.starts_with("- ") {
            break;
        }
        let text = line.text.clone();
        let number = line.number;
        *pos += 1;
        insert_key_value(&mut map, &text, lines, pos, number, indent)?;
    }
    Ok(Yaml::Map(map))
}

fn insert_key_value(
    map: &mut BTreeMap<String, Yaml>,
    text: &str,
    lines: &[Line],
    pos: &mut usize,
    number: usize,
    indent: usize,
) -> Result<(), YamlError> {
    let Some(colon) = find_key_colon(text) else {
        return Err(YamlError {
            line: number,
            message: format!("expected `key: value`, got `{text}`"),
        });
    };
    let key = unquote(text[..colon].trim());
    let rest = text[colon + 1..].trim();
    let value = if rest.is_empty() {
        // Nested block (mapping or sequence) at greater indentation.
        if *pos < lines.len() && lines[*pos].indent > indent {
            let child_indent = lines[*pos].indent;
            parse_block(lines, pos, child_indent)?
        } else {
            Yaml::Scalar(String::new())
        }
    } else {
        parse_scalar_or_flow(rest, number)?
    };
    map.insert(key, value);
    Ok(())
}

fn next_indent(lines: &[Line], pos: usize, fallback: usize) -> Result<usize, YamlError> {
    Ok(lines.get(pos).map(|l| l.indent).unwrap_or(fallback))
}

fn is_flow(text: &str) -> bool {
    text.starts_with('{') || text.starts_with('[')
}

fn find_key_colon(text: &str) -> Option<usize> {
    let mut depth = 0i32;
    for (i, c) in text.char_indices() {
        match c {
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            ':' if depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_scalar_or_flow(text: &str, line: usize) -> Result<Yaml, YamlError> {
    let text = text.trim();
    if let Some(inner) = text.strip_prefix('{') {
        let inner = inner
            .strip_suffix('}')
            .ok_or(YamlError { line, message: "unterminated flow mapping".to_string() })?;
        let mut map = BTreeMap::new();
        for part in split_flow(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let colon = find_key_colon(part).ok_or(YamlError {
                line,
                message: format!("expected `key: value` in flow mapping, got `{part}`"),
            })?;
            let key = unquote(part[..colon].trim());
            let value = parse_scalar_or_flow(part[colon + 1..].trim(), line)?;
            map.insert(key, value);
        }
        return Ok(Yaml::Map(map));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or(YamlError { line, message: "unterminated flow sequence".to_string() })?;
        let items: Result<Vec<Yaml>, YamlError> = split_flow(inner)
            .into_iter()
            .filter(|p| !p.trim().is_empty())
            .map(|p| parse_scalar_or_flow(p.trim(), line))
            .collect();
        return Ok(Yaml::List(items?));
    }
    Ok(Yaml::Scalar(unquote(text)))
}

fn split_flow(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for c in text.chars() {
        match c {
            '{' | '[' => {
                depth += 1;
                current.push(c);
            }
            '}' | ']' => {
                depth -= 1;
                current.push(c);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        out.push(current);
    }
    out
}

fn unquote(s: &str) -> String {
    let s = s.trim();
    if (s.starts_with('"') && s.ends_with('"') && s.len() >= 2)
        || (s.starts_with('\'') && s.ends_with('\'') && s.len() >= 2)
    {
        s[1..s.len() - 1].to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nested_maps() {
        let doc = "name: xilinx\nfamily:\n  vendor: amd\n  lut_size: 6\n  has_dsp: true\n";
        let y = parse_yaml(doc).unwrap();
        assert_eq!(y.get("name").unwrap().as_str(), Some("xilinx"));
        let family = y.get("family").unwrap();
        assert_eq!(family.get("lut_size").unwrap().as_int(), Some(6));
        assert_eq!(family.get("has_dsp").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn parses_sequences_of_maps() {
        let doc = r#"
implementations:
  - interface: { name: DSP, out-width: 48 }
    module: DSP48E2
    holes: [ACASCREG, ADREG, ALUMODEREG]
  - interface: { name: LUT, num_inputs: 6 }
    module: LUT6
"#;
        let y = parse_yaml(doc).unwrap();
        let impls = y.get("implementations").unwrap().as_list().unwrap();
        assert_eq!(impls.len(), 2);
        assert_eq!(impls[0].get("module").unwrap().as_str(), Some("DSP48E2"));
        let iface = impls[0].get("interface").unwrap();
        assert_eq!(iface.get("name").unwrap().as_str(), Some("DSP"));
        assert_eq!(iface.get("out-width").unwrap().as_int(), Some(48));
        let holes = impls[0].get("holes").unwrap().as_list().unwrap();
        assert_eq!(holes.len(), 3);
        assert_eq!(holes[1].as_str(), Some("ADREG"));
    }

    #[test]
    fn parses_the_papers_sofa_example() {
        // Figure 5 of the paper, lightly reformatted to the supported subset.
        let doc = r#"
implementations:
  - interface: { name: LUT, num_inputs: 4 }
    internal_data: { sram: 16 }
    modules:
      - module_name: frac_lut4
        filepath: SOFA/frac_lut4.v
        ports:
          - { name: in, direction: in, width: 4, value: "(concat I3 I2 I1 I0)" }
          - { name: mode, direction: in, width: 1, value: "(bv 0 1)" }
          - { name: lut4_out, direction: out, width: 1 }
        parameters: [{ name: sram, value: sram }]
        outputs: { O: lut4_out }
"#;
        let y = parse_yaml(doc).unwrap();
        let impls = y.get("implementations").unwrap().as_list().unwrap();
        let modules = impls[0].get("modules").unwrap().as_list().unwrap();
        assert_eq!(modules[0].get("module_name").unwrap().as_str(), Some("frac_lut4"));
        let ports = modules[0].get("ports").unwrap().as_list().unwrap();
        assert_eq!(ports.len(), 3);
        assert_eq!(ports[0].get("width").unwrap().as_int(), Some(4));
        assert_eq!(impls[0].get("internal_data").unwrap().get("sram").unwrap().as_int(), Some(16));
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let doc = "# header\nname: ecp5   # trailing comment\n\nlut_size: 4\n";
        let y = parse_yaml(doc).unwrap();
        assert_eq!(y.get("name").unwrap().as_str(), Some("ecp5"));
        assert_eq!(y.get("lut_size").unwrap().as_int(), Some(4));
    }

    #[test]
    fn quoted_strings_keep_special_characters() {
        let doc = "expr: \"(concat I3 I2: I1 I0)\"\n";
        let y = parse_yaml(doc).unwrap();
        assert_eq!(y.get("expr").unwrap().as_str(), Some("(concat I3 I2: I1 I0)"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let doc = "ok: 1\nnot a key value\n";
        let err = parse_yaml(doc).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn flow_errors_are_reported() {
        assert!(parse_yaml("x: { unterminated: 1\n").is_err());
        assert!(parse_yaml("x: [1, 2\n").is_err());
    }
}
