//! # lr-arch: primitive interfaces, architecture descriptions, and primitive models
//!
//! This crate is Lakeroad's "input 2 and input 3" (Figure 1 of the paper): the short
//! per-architecture description that lists which primitives an FPGA family provides,
//! and the solver-ready semantics of those primitives.
//!
//! * [`Architecture`] wraps one of the four shipped architecture descriptions
//!   (Xilinx UltraScale+, Lattice ECP5, Intel Cyclone 10 LP, SOFA), parsed from YAML
//!   by the in-tree [`yaml`] parser.
//! * [`primitives`] holds the primitive semantic models; simple primitives are
//!   extracted from mini-HDL models via `lr-hdl`, the two big DSPs are built
//!   programmatically.
//! * [`Architecture::instantiate_dsp`] / [`Architecture::instantiate_lut`] are the
//!   hooks the sketch generator (`lr-sketch`) uses to specialize its
//!   architecture-independent templates: they create the primitive instance, its
//!   holes, and the port-selection logic, and return the resulting node.

pub mod descriptions;
pub mod primitives;
pub mod yaml;

use lr_bv::BitVec;
use lr_ir::{BvOp, HoleDomain, NodeId, PrimInstance, ProgBuilder};

use yaml::{parse_yaml, Yaml};

/// The FPGA architectures shipped with the tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchName {
    /// Xilinx UltraScale+ (DSP48E2, LUT6, CARRY8).
    XilinxUltraScalePlus,
    /// Lattice ECP5 (MULT18X18C + ALU54A, LUT4/LUT2, CCU2C).
    LatticeEcp5,
    /// Intel Cyclone 10 LP (cyclone10lp_mac_mult, LUT4).
    IntelCyclone10Lp,
    /// SOFA, the open-source FPGA (frac_lut4 only; no DSP).
    Sofa,
}

impl std::fmt::Display for ArchName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ArchName::XilinxUltraScalePlus => "Xilinx UltraScale+",
            ArchName::LatticeEcp5 => "Lattice ECP5",
            ArchName::IntelCyclone10Lp => "Intel Cyclone 10 LP",
            ArchName::Sofa => "SOFA",
        };
        write!(f, "{s}")
    }
}

/// The result of instantiating a DSP primitive interface into a sketch under
/// construction.
#[derive(Debug, Clone)]
pub struct DspInstantiation {
    /// The primitive node (its value is the DSP's full-width output).
    pub node: NodeId,
    /// Width of the DSP's output port.
    pub output_width: u32,
    /// Names of the holes created for this instance.
    pub holes: Vec<String>,
    /// The concrete module name instantiated (for reports and emission).
    pub module: String,
}

/// An FPGA architecture: its description plus programmatic access to its primitives.
#[derive(Debug, Clone)]
pub struct Architecture {
    name: ArchName,
    description: &'static str,
    parsed: Yaml,
}

impl Architecture {
    /// Loads the Xilinx UltraScale+ architecture.
    pub fn xilinx_ultrascale_plus() -> Self {
        Self::load(ArchName::XilinxUltraScalePlus)
    }

    /// Loads the Lattice ECP5 architecture.
    pub fn lattice_ecp5() -> Self {
        Self::load(ArchName::LatticeEcp5)
    }

    /// Loads the Intel Cyclone 10 LP architecture.
    pub fn intel_cyclone10lp() -> Self {
        Self::load(ArchName::IntelCyclone10Lp)
    }

    /// Loads the SOFA architecture.
    pub fn sofa() -> Self {
        Self::load(ArchName::Sofa)
    }

    /// Loads an architecture by name.
    pub fn load(name: ArchName) -> Self {
        let description = match name {
            ArchName::XilinxUltraScalePlus => descriptions::XILINX_ULTRASCALE_PLUS,
            ArchName::LatticeEcp5 => descriptions::LATTICE_ECP5,
            ArchName::IntelCyclone10Lp => descriptions::INTEL_CYCLONE10LP,
            ArchName::Sofa => descriptions::SOFA,
        };
        let parsed = parse_yaml(description).expect("shipped architecture descriptions parse");
        Architecture { name, description, parsed }
    }

    /// All four shipped architectures.
    pub fn all() -> Vec<Architecture> {
        vec![
            Self::xilinx_ultrascale_plus(),
            Self::lattice_ecp5(),
            Self::intel_cyclone10lp(),
            Self::sofa(),
        ]
    }

    /// The three architectures with a DSP (used by the completeness experiment).
    pub fn with_dsps() -> Vec<Architecture> {
        vec![Self::xilinx_ultrascale_plus(), Self::lattice_ecp5(), Self::intel_cyclone10lp()]
    }

    /// The architecture's name.
    pub fn name(&self) -> ArchName {
        self.name
    }

    /// The raw YAML architecture description text.
    pub fn description_text(&self) -> &str {
        self.description
    }

    /// Source lines of code of the architecture description (the §5.2 metric).
    pub fn description_sloc(&self) -> usize {
        lr_hdl::count_sloc(self.description)
    }

    /// The parsed YAML document.
    pub fn description_yaml(&self) -> &Yaml {
        &self.parsed
    }

    /// The interface implementations listed in the description.
    pub fn implementations(&self) -> &[Yaml] {
        self.parsed.get("implementations").and_then(Yaml::as_list).unwrap_or(&[])
    }

    /// The LUT size this architecture provides.
    pub fn lut_size(&self) -> u32 {
        self.parsed.get("lut_size").and_then(Yaml::as_int).unwrap_or(4) as u32
    }

    /// Whether the architecture provides a DSP.
    pub fn has_dsp(&self) -> bool {
        self.dsp_module().is_some()
    }

    /// The concrete module name of the architecture's DSP, if any.
    pub fn dsp_module(&self) -> Option<&'static str> {
        match self.name {
            ArchName::XilinxUltraScalePlus => Some("DSP48E2"),
            ArchName::LatticeEcp5 => Some("MULT18X18C_ALU54A"),
            ArchName::IntelCyclone10Lp => Some("cyclone10lp_mac_mult"),
            ArchName::Sofa => None,
        }
    }

    /// The DSP output width, if the architecture has a DSP.
    pub fn dsp_output_width(&self) -> Option<u32> {
        match self.name {
            ArchName::XilinxUltraScalePlus => Some(primitives::DSP48E2_OUT_WIDTH),
            ArchName::LatticeEcp5 => Some(primitives::ECP5_DSP_OUT_WIDTH),
            ArchName::IntelCyclone10Lp => Some(primitives::CYCLONE10_OUT_WIDTH),
            ArchName::Sofa => None,
        }
    }

    /// The widest data operand the DSP's multiplier accepts (18 bits on all three
    /// DSP-bearing architectures; the paper's microbenchmarks stop at 18 bits for the
    /// same reason).
    pub fn dsp_max_operand_width(&self) -> Option<u32> {
        if self.has_dsp() {
            Some(18)
        } else {
            None
        }
    }

    /// Whether the DSP has a pre-adder (only the DSP48E2 does), i.e. whether designs
    /// of the form `(a ± b) * c` fit in one DSP.
    pub fn dsp_has_preadder(&self) -> bool {
        self.name == ArchName::XilinxUltraScalePlus
    }

    /// Whether the DSP has a post-ALU (DSP48E2 and ECP5), i.e. whether designs of the
    /// form `(a * b) ⊙ c` fit in one DSP.
    pub fn dsp_has_post_alu(&self) -> bool {
        matches!(self.name, ArchName::XilinxUltraScalePlus | ArchName::LatticeEcp5)
    }

    /// Instantiates the architecture's DSP into a sketch under construction.
    ///
    /// `design_inputs` are the design's input nodes (already created in `builder`);
    /// each DSP data port is driven by a hole-selected multiplexer over those inputs
    /// (or zero), so the solver chooses the port assignment. Returns `None` if the
    /// architecture has no DSP.
    ///
    /// `instance_index` must be unique per primitive instance within one sketch; it
    /// is used both for hole-name prefixes and to keep semantics node ids disjoint.
    pub fn instantiate_dsp(
        &self,
        builder: &mut ProgBuilder,
        design_inputs: &[(String, NodeId, u32)],
        instance_index: usize,
    ) -> Option<DspInstantiation> {
        let prefix = format!("dsp{instance_index}");
        let offset = semantics_id_offset(instance_index);
        let mut holes = Vec::new();
        match self.name {
            ArchName::XilinxUltraScalePlus => {
                let semantics = primitives::dsp48e2_semantics().with_id_offset(offset);
                let a = select_input(builder, design_inputs, 30, &prefix, "A_SEL", &mut holes);
                let b = select_input(builder, design_inputs, 18, &prefix, "B_SEL", &mut holes);
                let c = select_input(builder, design_inputs, 48, &prefix, "C_SEL", &mut holes);
                let d = select_input(builder, design_inputs, 27, &prefix, "D_SEL", &mut holes);
                let mut bindings = std::collections::BTreeMap::new();
                bindings.insert("A".to_string(), a);
                bindings.insert("B".to_string(), b);
                bindings.insert("C".to_string(), c);
                bindings.insert("D".to_string(), d);
                for (name, width) in [
                    ("CARRYIN", 1),
                    ("INMODE", 5),
                    ("OPMODE", 9),
                    ("ALUMODE", 4),
                    ("AREG", 1),
                    ("BREG", 1),
                    ("CREG", 1),
                    ("DREG", 1),
                    ("ADREG", 1),
                    ("MREG", 1),
                    ("PREG", 1),
                    ("AMULTSEL", 1),
                ] {
                    let hole_name = format!("{prefix}.{name}");
                    let h = builder.hole(&hole_name, width, HoleDomain::AnyConstant);
                    bindings.insert(name.to_string(), h);
                    holes.push(hole_name);
                }
                let prim = PrimInstance {
                    module: "DSP48E2".to_string(),
                    interface: "DSP".to_string(),
                    bindings,
                    semantics,
                    param_names: vec![
                        "AREG".into(),
                        "BREG".into(),
                        "CREG".into(),
                        "DREG".into(),
                        "ADREG".into(),
                        "MREG".into(),
                        "PREG".into(),
                        "AMULTSEL".into(),
                    ],
                    output_port: "P".to_string(),
                };
                let node = builder.prim(prim);
                Some(DspInstantiation {
                    node,
                    output_width: primitives::DSP48E2_OUT_WIDTH,
                    holes,
                    module: "DSP48E2".to_string(),
                })
            }
            ArchName::LatticeEcp5 => {
                let semantics = primitives::ecp5_dsp_semantics().with_id_offset(offset);
                let a = select_input(builder, design_inputs, 18, &prefix, "A_SEL", &mut holes);
                let b = select_input(builder, design_inputs, 18, &prefix, "B_SEL", &mut holes);
                let c = select_input(builder, design_inputs, 54, &prefix, "C_SEL", &mut holes);
                let mut bindings = std::collections::BTreeMap::new();
                bindings.insert("A".to_string(), a);
                bindings.insert("B".to_string(), b);
                bindings.insert("C".to_string(), c);
                for (name, width, domain) in [
                    ("REG_INPUT", 1, HoleDomain::AnyConstant),
                    ("REG_C", 1, HoleDomain::AnyConstant),
                    ("REG_PIPE", 1, HoleDomain::AnyConstant),
                    ("REG_OUTPUT", 1, HoleDomain::AnyConstant),
                    ("ALU_OP", 3, HoleDomain::LessThan(BitVec::from_u64(7, 3))),
                ] {
                    let hole_name = format!("{prefix}.{name}");
                    let h = builder.hole(&hole_name, width, domain);
                    bindings.insert(name.to_string(), h);
                    holes.push(hole_name);
                }
                let prim = PrimInstance {
                    module: "MULT18X18C_ALU54A".to_string(),
                    interface: "DSP".to_string(),
                    bindings,
                    semantics,
                    param_names: vec![
                        "REG_INPUT".into(),
                        "REG_C".into(),
                        "REG_PIPE".into(),
                        "REG_OUTPUT".into(),
                        "ALU_OP".into(),
                    ],
                    output_port: "R".to_string(),
                };
                let node = builder.prim(prim);
                Some(DspInstantiation {
                    node,
                    output_width: primitives::ECP5_DSP_OUT_WIDTH,
                    holes,
                    module: "MULT18X18C_ALU54A".to_string(),
                })
            }
            ArchName::IntelCyclone10Lp => {
                let semantics = primitives::cyclone10_mac_mult_semantics().with_id_offset(offset);
                let a = select_input(builder, design_inputs, 18, &prefix, "A_SEL", &mut holes);
                let b = select_input(builder, design_inputs, 18, &prefix, "B_SEL", &mut holes);
                let mut bindings = std::collections::BTreeMap::new();
                bindings.insert("dataa".to_string(), a);
                bindings.insert("datab".to_string(), b);
                for name in ["REGISTER_A", "REGISTER_B", "REGISTER_OUT"] {
                    let hole_name = format!("{prefix}.{name}");
                    let h = builder.hole(&hole_name, 1, HoleDomain::AnyConstant);
                    bindings.insert(name.to_string(), h);
                    holes.push(hole_name);
                }
                let prim = PrimInstance {
                    module: "cyclone10lp_mac_mult".to_string(),
                    interface: "DSP".to_string(),
                    bindings,
                    semantics,
                    param_names: vec![
                        "REGISTER_A".into(),
                        "REGISTER_B".into(),
                        "REGISTER_OUT".into(),
                    ],
                    output_port: "dataout".to_string(),
                };
                let node = builder.prim(prim);
                Some(DspInstantiation {
                    node,
                    output_width: primitives::CYCLONE10_OUT_WIDTH,
                    holes,
                    module: "cyclone10lp_mac_mult".to_string(),
                })
            }
            ArchName::Sofa => None,
        }
    }

    /// Instantiates one LUT of this architecture, driven by the given 1-bit input
    /// nodes (missing inputs are tied to zero). Creates a fresh `INIT`/`sram` hole and
    /// returns the LUT's 1-bit output node.
    pub fn instantiate_lut(
        &self,
        builder: &mut ProgBuilder,
        inputs: &[NodeId],
        instance_index: usize,
    ) -> NodeId {
        let size = self.lut_size();
        assert!(
            inputs.len() as u32 <= size,
            "LUT{size} cannot take {} inputs on {}",
            inputs.len(),
            self.name
        );
        let offset = semantics_id_offset(instance_index);
        let zero1 = builder.constant_u64(0, 1);
        let padded: Vec<NodeId> =
            (0..size as usize).map(|i| inputs.get(i).copied().unwrap_or(zero1)).collect();
        let init_width = 1u32 << size;
        let hole_name = format!("lut{instance_index}.INIT");
        let init = builder.hole(&hole_name, init_width, HoleDomain::AnyConstant);

        let mut bindings = std::collections::BTreeMap::new();
        let (module, semantics, output_port, param_name) = match self.name {
            ArchName::XilinxUltraScalePlus => {
                let sem = primitives::lut_semantics(6).with_id_offset(offset);
                for (i, &node) in padded.iter().enumerate() {
                    bindings.insert(format!("I{i}"), node);
                }
                ("LUT6", sem, "O", "INIT")
            }
            ArchName::LatticeEcp5 | ArchName::IntelCyclone10Lp => {
                let sem = primitives::lut_semantics(4).with_id_offset(offset);
                for (name, &node) in ["A", "B", "C", "D"].iter().zip(&padded) {
                    bindings.insert(name.to_string(), node);
                }
                ("LUT4", sem, "Z", "INIT")
            }
            ArchName::Sofa => {
                let sem = primitives::frac_lut4_semantics().with_id_offset(offset);
                // frac_lut4 takes its four inputs as a single 4-bit bus plus a mode pin.
                let i10 = builder.op2(BvOp::Concat, padded[1], padded[0]);
                let i32_ = builder.op2(BvOp::Concat, padded[3], padded[2]);
                let bus = builder.op2(BvOp::Concat, i32_, i10);
                bindings.insert("in".to_string(), bus);
                bindings.insert("mode".to_string(), zero1);
                ("frac_lut4", sem, "lut4_out", "sram")
            }
        };
        bindings.insert(param_name.to_string(), init);
        let prim = PrimInstance {
            module: module.to_string(),
            interface: format!("LUT{size}"),
            bindings,
            semantics,
            param_names: vec![param_name.to_string()],
            output_port: output_port.to_string(),
        };
        builder.prim(prim)
    }
}

/// Reserves a disjoint node-id region for the semantics sub-program of the
/// `instance_index`-th primitive in a sketch. Outer sketch programs are tiny
/// (well under a million nodes), so regions starting at one million never collide.
fn semantics_id_offset(instance_index: usize) -> u32 {
    1_000_000 + (instance_index as u32) * 100_000
}

/// Builds a hole-selected multiplexer that drives a primitive data port from one of
/// the design's inputs (or constant zero), zero-extended to the port width.
fn select_input(
    builder: &mut ProgBuilder,
    design_inputs: &[(String, NodeId, u32)],
    port_width: u32,
    prefix: &str,
    hole_suffix: &str,
    holes: &mut Vec<String>,
) -> NodeId {
    let mut options: Vec<NodeId> = vec![builder.constant_u64(0, port_width)];
    for (_, node, width) in design_inputs {
        let resized = if *width == port_width {
            *node
        } else if *width < port_width {
            builder.zext(*node, port_width)
        } else {
            builder.extract(*node, port_width - 1, 0)
        };
        options.push(resized);
    }
    if options.len() == 1 {
        return options[0];
    }
    let bits = (usize::BITS - (options.len() - 1).leading_zeros()).max(1);
    let hole_name = format!("{prefix}.{hole_suffix}");
    // When the option count fills the selector width exactly, every selector value is
    // legal; otherwise restrict to the populated range (the bound fits in `bits`
    // because the count is then strictly below 2^bits).
    let domain = if options.len() == (1usize << bits) {
        HoleDomain::AnyConstant
    } else {
        HoleDomain::LessThan(BitVec::from_u64(options.len() as u64, bits))
    };
    let sel = builder.hole(&hole_name, bits, domain);
    holes.push(hole_name);
    // options[k] selected when sel == k; nested if-then-else chain.
    let mut result = options[0];
    for (k, &opt) in options.iter().enumerate().skip(1) {
        let kc = builder.constant_u64(k as u64, bits);
        let is_k = builder.op2(BvOp::Eq, sel, kc);
        result = builder.mux(is_k, opt, result);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_ir::StreamInputs;
    use std::collections::BTreeMap;

    #[test]
    fn all_architecture_descriptions_parse_and_report_sloc() {
        let archs = Architecture::all();
        assert_eq!(archs.len(), 4);
        for arch in &archs {
            assert!(arch.description_sloc() > 5, "{} description too small", arch.name());
            assert!(!arch.implementations().is_empty(), "{} lists no implementations", arch.name());
        }
        // SOFA is the smallest description, as in the paper.
        let sofa = Architecture::sofa();
        for other in Architecture::with_dsps() {
            assert!(sofa.description_sloc() < other.description_sloc());
        }
    }

    #[test]
    fn dsp_capability_matrix_matches_the_paper() {
        assert!(Architecture::xilinx_ultrascale_plus().has_dsp());
        assert!(Architecture::lattice_ecp5().has_dsp());
        assert!(Architecture::intel_cyclone10lp().has_dsp());
        assert!(!Architecture::sofa().has_dsp());
        assert!(Architecture::xilinx_ultrascale_plus().dsp_has_preadder());
        assert!(!Architecture::lattice_ecp5().dsp_has_preadder());
        assert!(Architecture::lattice_ecp5().dsp_has_post_alu());
        assert!(!Architecture::intel_cyclone10lp().dsp_has_post_alu());
        assert_eq!(Architecture::xilinx_ultrascale_plus().lut_size(), 6);
        assert_eq!(Architecture::sofa().lut_size(), 4);
    }

    #[test]
    fn dsp_instantiation_produces_a_well_formed_sketch() {
        for arch in Architecture::with_dsps() {
            let mut b = ProgBuilder::new("sketch");
            let mut inputs = Vec::new();
            for name in ["a", "b", "c", "d"] {
                let id = b.input(name, 8);
                inputs.push((name.to_string(), id, 8));
            }
            let dsp = arch.instantiate_dsp(&mut b, &inputs, 0).expect("has a DSP");
            let out = b.extract(dsp.node, 7, 0);
            let sketch = b.finish(out);
            assert!(sketch.well_formed().is_ok(), "{}: {:?}", arch.name(), sketch.well_formed());
            assert!(sketch.has_holes(), "{} sketch should carry holes", arch.name());
            assert!(!dsp.holes.is_empty());
            assert!(sketch.holes().len() >= dsp.holes.len());
        }
    }

    #[test]
    fn xilinx_dsp_sketch_can_express_the_running_example_when_filled() {
        // Fill the holes by hand with the configuration computing ((a+b)*c)&d and
        // check it against direct evaluation. Port muxes: D <- a (sel 1), A <- b
        // (sel 2), B <- c (sel 3), C <- d (sel 4).
        let arch = Architecture::xilinx_ultrascale_plus();
        let mut b = ProgBuilder::new("sketch");
        let mut inputs = Vec::new();
        for name in ["a", "b", "c", "d"] {
            let id = b.input(name, 8);
            inputs.push((name.to_string(), id, 8));
        }
        let dsp = arch.instantiate_dsp(&mut b, &inputs, 0).unwrap();
        let out = b.extract(dsp.node, 7, 0);
        let sketch = b.finish(out);

        let mut asg: BTreeMap<String, BitVec> = BTreeMap::new();
        asg.insert("dsp0.D_SEL".into(), BitVec::from_u64(1, 3));
        asg.insert("dsp0.A_SEL".into(), BitVec::from_u64(2, 3));
        asg.insert("dsp0.B_SEL".into(), BitVec::from_u64(3, 3));
        asg.insert("dsp0.C_SEL".into(), BitVec::from_u64(4, 3));
        asg.insert("dsp0.CARRYIN".into(), BitVec::from_u64(0, 1));
        asg.insert("dsp0.INMODE".into(), BitVec::from_u64(0, 5));
        // X = M, Y = 0, Z = C; ALU logic mode AND (ALUMODE = 0b0100).
        asg.insert("dsp0.OPMODE".into(), BitVec::from_u64(0b0_011_00_01, 9));
        asg.insert("dsp0.ALUMODE".into(), BitVec::from_u64(0b0100, 4));
        for reg in ["AREG", "BREG", "CREG", "DREG", "ADREG", "MREG", "PREG"] {
            asg.insert(format!("dsp0.{reg}"), BitVec::from_u64(0, 1));
        }
        asg.insert("dsp0.AMULTSEL".into(), BitVec::from_u64(1, 1));
        let filled = sketch.fill_holes(&asg).unwrap().simplified();
        assert!(filled.is_structural());

        let env = StreamInputs::from_constants(
            [("a", 3u64), ("b", 5), ("c", 7), ("d", 0x3F)]
                .into_iter()
                .map(|(n, v)| (n.to_string(), BitVec::from_u64(v, 8))),
        );
        let expected = ((3 + 5) * 7) & 0x3F;
        assert_eq!(filled.interp(&env, 0).unwrap(), BitVec::from_u64(expected, 8));
    }

    #[test]
    fn lut_instantiation_works_on_every_architecture() {
        for arch in Architecture::all() {
            let mut b = ProgBuilder::new("lut_sketch");
            let x = b.input("x", 1);
            let y = b.input("y", 1);
            let lut = arch.instantiate_lut(&mut b, &[x, y], 0);
            let prog = b.finish(lut);
            assert!(prog.well_formed().is_ok(), "{}", arch.name());
            assert_eq!(prog.width(prog.root()), 1);
            assert_eq!(prog.holes().len(), 1);
            // Fill the LUT with an XOR truth table and check it behaves as XOR.
            let init_width = 1 << arch.lut_size();
            let hole = &prog.holes()[0];
            let mut truth = BitVec::zeros(init_width);
            // Entries where exactly one of the two low address bits is set.
            truth = truth.with_bit(1, true).with_bit(2, true);
            let mut asg = BTreeMap::new();
            asg.insert(hole.name.clone(), truth);
            let filled = prog.fill_holes(&asg).unwrap();
            for (xv, yv) in [(0u64, 0u64), (0, 1), (1, 0), (1, 1)] {
                let env = StreamInputs::from_constants([
                    ("x".to_string(), BitVec::from_u64(xv, 1)),
                    ("y".to_string(), BitVec::from_u64(yv, 1)),
                ]);
                assert_eq!(
                    filled.interp(&env, 0).unwrap(),
                    BitVec::from_bool((xv ^ yv) == 1),
                    "{} x={xv} y={yv}",
                    arch.name()
                );
            }
        }
    }

    #[test]
    fn description_sizes_track_the_papers_ordering() {
        // Paper §5.2: SOFA (20) < Intel (178) < Xilinx (185) < Lattice (240).
        // Our descriptions are smaller but must preserve SOFA < Intel < {Xilinx, Lattice}.
        let sofa = Architecture::sofa().description_sloc();
        let intel = Architecture::intel_cyclone10lp().description_sloc();
        let xilinx = Architecture::xilinx_ultrascale_plus().description_sloc();
        let lattice = Architecture::lattice_ecp5().description_sloc();
        assert!(sofa < intel);
        assert!(intel < xilinx);
        assert!(intel < lattice);
    }
}
