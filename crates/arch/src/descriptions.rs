//! The architecture descriptions shipped with the tool (paper §4.2).
//!
//! One YAML document per supported FPGA family, listing the primitive-interface
//! implementations the architecture provides, their port/parameter structure, and
//! which of those become holes during sketch generation. These files are the only
//! per-architecture input a user has to provide; their size (SLoC) is what the
//! extensibility experiment (§5.2) measures.

/// Xilinx UltraScale+ architecture description.
pub const XILINX_ULTRASCALE_PLUS: &str = r#"
# Architecture description: Xilinx UltraScale+
name: xilinx-ultrascale-plus
vendor: xilinx
lut_size: 6
implementations:
  - interface: { name: DSP, out-width: 48, a-width: 30, b-width: 18, c-width: 48, d-width: 27 }
    holes: [INMODE, OPMODE, ALUMODE, CARRYIN, AREG, BREG, CREG, DREG, ADREG, MREG, PREG, AMULTSEL]
    implementation:
      module: DSP48E2
      ports:
        - { name: A, bitwidth: 30, value: A }
        - { name: B, bitwidth: 18, value: B }
        - { name: C, bitwidth: 48, value: C }
        - { name: D, bitwidth: 27, value: D }
        - { name: CARRYIN, bitwidth: 1, value: "?CARRYIN" }
        - { name: INMODE, bitwidth: 5, value: "?INMODE" }
        - { name: OPMODE, bitwidth: 9, value: "?OPMODE" }
        - { name: ALUMODE, bitwidth: 4, value: "?ALUMODE" }
      parameters:
        - { name: AREG, value: "?AREG" }
        - { name: BREG, value: "?BREG" }
        - { name: CREG, value: "?CREG" }
        - { name: DREG, value: "?DREG" }
        - { name: ADREG, value: "?ADREG" }
        - { name: MREG, value: "?MREG" }
        - { name: PREG, value: "?PREG" }
        - { name: AMULTSEL, value: "?AMULTSEL" }
      outputs: { O: P }
  - interface: { name: LUT, num_inputs: 6 }
    internal_data: { INIT: 64 }
    implementation:
      module: LUT6
      ports:
        - { name: I0, bitwidth: 1, value: I0 }
        - { name: I1, bitwidth: 1, value: I1 }
        - { name: I2, bitwidth: 1, value: I2 }
        - { name: I3, bitwidth: 1, value: I3 }
        - { name: I4, bitwidth: 1, value: I4 }
        - { name: I5, bitwidth: 1, value: I5 }
      parameters: [{ name: INIT, value: INIT }]
      outputs: { O: O }
  - interface: { name: CARRY, width: 8 }
    implementation:
      module: CARRY8
      ports:
        - { name: S, bitwidth: 8, value: S }
        - { name: DI, bitwidth: 8, value: DI }
        - { name: CI, bitwidth: 1, value: CI }
      outputs: { O: O }
"#;

/// Lattice ECP5 architecture description.
pub const LATTICE_ECP5: &str = r#"
# Architecture description: Lattice ECP5
name: lattice-ecp5
vendor: lattice
lut_size: 4
implementations:
  - interface: { name: DSP, out-width: 54, a-width: 18, b-width: 18, c-width: 54 }
    holes: [REG_INPUT, REG_C, REG_PIPE, REG_OUTPUT, ALU_OP]
    implementation:
      # The ECP5 exposes its DSP as a MULT18X18C feeding an ALU54A; Lakeroad maps to
      # the pair as a single DSP, as the paper does.
      module: MULT18X18C_ALU54A
      ports:
        - { name: A, bitwidth: 18, value: A }
        - { name: B, bitwidth: 18, value: B }
        - { name: C, bitwidth: 54, value: C }
      parameters:
        - { name: REG_INPUT, value: "?REG_INPUT" }
        - { name: REG_C, value: "?REG_C" }
        - { name: REG_PIPE, value: "?REG_PIPE" }
        - { name: REG_OUTPUT, value: "?REG_OUTPUT" }
        - { name: ALU_OP, value: "?ALU_OP" }
      outputs: { O: R }
  - interface: { name: LUT, num_inputs: 4 }
    internal_data: { INIT: 16 }
    implementation:
      module: LUT4
      ports:
        - { name: A, bitwidth: 1, value: I0 }
        - { name: B, bitwidth: 1, value: I1 }
        - { name: C, bitwidth: 1, value: I2 }
        - { name: D, bitwidth: 1, value: I3 }
      parameters: [{ name: INIT, value: INIT }]
      outputs: { O: Z }
  - interface: { name: LUT, num_inputs: 2 }
    internal_data: { INIT: 4 }
    implementation:
      module: LUT2
      ports:
        - { name: A, bitwidth: 1, value: I0 }
        - { name: B, bitwidth: 1, value: I1 }
      parameters: [{ name: INIT, value: INIT }]
      outputs: { O: Z }
  - interface: { name: CARRY, width: 2 }
    implementation:
      module: CCU2C
      ports:
        - { name: A0, bitwidth: 1, value: A0 }
        - { name: B0, bitwidth: 1, value: B0 }
        - { name: A1, bitwidth: 1, value: A1 }
        - { name: B1, bitwidth: 1, value: B1 }
        - { name: CIN, bitwidth: 1, value: CIN }
      parameters:
        - { name: INIT0, value: INIT0 }
        - { name: INIT1, value: INIT1 }
      outputs: { O: S }
"#;

/// Intel Cyclone 10 LP architecture description.
pub const INTEL_CYCLONE10LP: &str = r#"
# Architecture description: Intel Cyclone 10 LP
name: intel-cyclone10lp
vendor: intel
lut_size: 4
implementations:
  - interface: { name: DSP, out-width: 36, a-width: 18, b-width: 18 }
    holes: [REGISTER_A, REGISTER_B, REGISTER_OUT]
    implementation:
      module: cyclone10lp_mac_mult
      ports:
        - { name: dataa, bitwidth: 18, value: A }
        - { name: datab, bitwidth: 18, value: B }
      parameters:
        - { name: REGISTER_A, value: "?REGISTER_A" }
        - { name: REGISTER_B, value: "?REGISTER_B" }
        - { name: REGISTER_OUT, value: "?REGISTER_OUT" }
      outputs: { O: dataout }
  - interface: { name: LUT, num_inputs: 4 }
    internal_data: { INIT: 16 }
    implementation:
      module: LUT4
      ports:
        - { name: A, bitwidth: 1, value: I0 }
        - { name: B, bitwidth: 1, value: I1 }
        - { name: C, bitwidth: 1, value: I2 }
        - { name: D, bitwidth: 1, value: I3 }
      parameters: [{ name: INIT, value: INIT }]
      outputs: { O: Z }
"#;

/// SOFA architecture description (Figure 5 of the paper).
pub const SOFA: &str = r#"
# Architecture description: SOFA (no DSP; a single fracturable LUT4)
name: sofa
vendor: openfpga
lut_size: 4
implementations:
  - interface: { name: LUT, num_inputs: 4 }
    internal_data: { sram: 16 }
    implementation:
      module: frac_lut4
      ports:
        - { name: in, bitwidth: 4, value: "(concat I3 I2 I1 I0)" }
        - { name: mode, bitwidth: 1, value: "(bv 0 1)" }
      parameters: [{ name: sram, value: sram }]
      outputs: { O: lut4_out }
"#;
