//! Primitive semantic models.
//!
//! Most primitives (LUTs, carry chains, the Intel multiplier, SOFA's `frac_lut4`)
//! get their semantics through the mini-HDL extraction path in `lr-hdl`, exactly as
//! the paper extracts vendor simulation models (§4.4). The two large multi-function
//! DSPs — Xilinx's `DSP48E2` and the Lattice ECP5 `MULT18X18C`+`ALU54A` pair — are
//! built programmatically here, following the functional description in the vendor
//! documentation (UG579 and the ECP5 sysDSP usage guide): pre-adder, multiplier, ALU
//! with arithmetic and logic modes, and per-stage pipeline registers, all controlled
//! by variables that the sketch binds to holes.
//!
//! Every builder returns a behavioral [`Prog`] whose free variables are the
//! primitive's ports *and* configuration parameters; the sketch generator decides
//! which of those become data connections and which become holes.

use lr_bv::BitVec;
use lr_ir::{BvOp, NodeId, Prog, ProgBuilder};

/// Approximate source-line counts of the programmatically-built DSP models, reported
/// alongside the mini-HDL models in the Table 1 experiment.
pub const DSP48E2_MODEL_SLOC: usize = 120;
/// See [`DSP48E2_MODEL_SLOC`].
pub const ECP5_DSP_MODEL_SLOC: usize = 80;

/// Output width of the DSP48E2's `P` port.
pub const DSP48E2_OUT_WIDTH: u32 = 48;
/// Output width of the combined ECP5 DSP (ALU54A).
pub const ECP5_DSP_OUT_WIDTH: u32 = 54;
/// Output width of the Intel Cyclone 10 LP multiplier.
pub const CYCLONE10_OUT_WIDTH: u32 = 36;

fn opt_reg(b: &mut ProgBuilder, enable: NodeId, value: NodeId, width: u32) -> NodeId {
    let registered = b.reg(value, width);
    b.mux(enable, registered, value)
}

fn eq_const(b: &mut ProgBuilder, value: NodeId, constant: u64, width: u32) -> NodeId {
    let c = b.constant_u64(constant, width);
    b.op2(BvOp::Eq, value, c)
}

/// Builds the behavioral semantics of the Xilinx UltraScale+ `DSP48E2`.
///
/// Free variables (all of which the sketch must bind):
/// data ports `A`(30) `B`(18) `C`(48) `D`(27) `CARRYIN`(1); dynamic control
/// `INMODE`(5) `OPMODE`(9) `ALUMODE`(4); configuration parameters `AREG` `BREG`
/// `CREG` `DREG` `ADREG` `MREG` `PREG` `AMULTSEL` (1 bit each). The program's root is
/// the 48-bit `P` output.
pub fn dsp48e2_semantics() -> Prog {
    let mut b = ProgBuilder::new("DSP48E2_semantics");
    let a = b.var("A", 30);
    let bb = b.var("B", 18);
    let c = b.var("C", 48);
    let d = b.var("D", 27);
    let carryin = b.var("CARRYIN", 1);
    let inmode = b.var("INMODE", 5);
    let opmode = b.var("OPMODE", 9);
    let alumode = b.var("ALUMODE", 4);
    let areg = b.var("AREG", 1);
    let breg = b.var("BREG", 1);
    let creg = b.var("CREG", 1);
    let dreg = b.var("DREG", 1);
    let adreg = b.var("ADREG", 1);
    let mreg = b.var("MREG", 1);
    let preg = b.var("PREG", 1);
    let amultsel = b.var("AMULTSEL", 1);

    // Input pipeline registers.
    let a1 = opt_reg(&mut b, areg, a, 30);
    let b1 = opt_reg(&mut b, breg, bb, 18);
    let c1 = opt_reg(&mut b, creg, c, 48);
    let d1 = opt_reg(&mut b, dreg, d, 27);

    // Pre-adder: AD = D1 ± A1[26:0], subtract when INMODE[3] is set.
    let a27 = b.extract(a1, 26, 0);
    let sum = b.op2(BvOp::Add, d1, a27);
    let diff = b.op2(BvOp::Sub, d1, a27);
    let inmode3 = b.extract(inmode, 3, 3);
    let ad_pre = b.mux(inmode3, diff, sum);
    let ad = opt_reg(&mut b, adreg, ad_pre, 27);

    // Multiplier: 27x18 -> 45 bits, then widened to 48.
    let mult_a = b.mux(amultsel, ad, a27);
    let ma = b.zext(mult_a, 45);
    let mb = b.zext(b1, 45);
    let product = b.op2(BvOp::Mul, ma, mb);
    let m_pre = b.zext(product, 48);
    let m = opt_reg(&mut b, mreg, m_pre, 48);

    // X multiplexer (OPMODE[1:0]): 0 -> 0, 1 -> M, 3 -> {A1, B1}.
    let zero48 = b.constant_u64(0, 48);
    let xsel = b.extract(opmode, 1, 0);
    let ab_concat = b.op2(BvOp::Concat, a1, b1);
    let xsel_is_m = eq_const(&mut b, xsel, 1, 2);
    let xsel_is_ab = eq_const(&mut b, xsel, 3, 2);
    let x_ab = b.mux(xsel_is_ab, ab_concat, zero48);
    let x = b.mux(xsel_is_m, m, x_ab);

    // Y multiplexer (OPMODE[3:2]): 0 -> 0, 1 -> all ones (logic unit), 3 -> C1.
    let ones48 = b.constant(BitVec::ones(48));
    let ysel = b.extract(opmode, 3, 2);
    let ysel_is_ones = eq_const(&mut b, ysel, 1, 2);
    let ysel_is_c = eq_const(&mut b, ysel, 3, 2);
    let y_c = b.mux(ysel_is_c, c1, zero48);
    let y = b.mux(ysel_is_ones, ones48, y_c);

    // Z multiplexer (OPMODE[6:4]): 3 -> C1, otherwise 0.
    let zsel = b.extract(opmode, 6, 4);
    let zsel_is_c = eq_const(&mut b, zsel, 3, 3);
    let z = b.mux(zsel_is_c, c1, zero48);

    // ALU, arithmetic modes (ALUMODE[3:2] == 0):
    //   00: Z + (X + Y + CIN)        01: (X + Y + CIN) - Z - 1
    //   10: -(Z + X + Y + CIN) - 1   11: Z - (X + Y + CIN)
    let cin = b.zext(carryin, 48);
    let xy = b.op2(BvOp::Add, x, y);
    let xyc = b.op2(BvOp::Add, xy, cin);
    let add_result = b.op2(BvOp::Add, z, xyc);
    let sub_result = b.op2(BvOp::Sub, z, xyc);
    let one48 = b.constant_u64(1, 48);
    let xyc_minus_z = b.op2(BvOp::Sub, xyc, z);
    let mode01 = b.op2(BvOp::Sub, xyc_minus_z, one48);
    let mode10 = b.op1(BvOp::Not, add_result);
    let alu_lo = b.extract(alumode, 1, 0);
    let is00 = eq_const(&mut b, alu_lo, 0, 2);
    let is11 = eq_const(&mut b, alu_lo, 3, 2);
    let is01 = eq_const(&mut b, alu_lo, 1, 2);
    let arith_01_or_10 = b.mux(is01, mode01, mode10);
    let arith_11 = b.mux(is11, sub_result, arith_01_or_10);
    let arith = b.mux(is00, add_result, arith_11);

    // ALU, logic modes (ALUMODE[3:2] != 0): AND / OR / XOR / XNOR of X and Z.
    let x_and_z = b.op2(BvOp::And, x, z);
    let x_or_z = b.op2(BvOp::Or, x, z);
    let x_xor_z = b.op2(BvOp::Xor, x, z);
    let x_xnor_z = b.op1(BvOp::Not, x_xor_z);
    let logic_10_or_11 = b.mux(is11, x_xnor_z, x_xor_z);
    let logic_01 = b.mux(is01, x_or_z, logic_10_or_11);
    let logic = b.mux(is00, x_and_z, logic_01);

    let alu_hi = b.extract(alumode, 3, 2);
    let arith_mode = eq_const(&mut b, alu_hi, 0, 2);
    let alu_out = b.mux(arith_mode, arith, logic);

    let p = opt_reg(&mut b, preg, alu_out, 48);
    b.finish(p)
}

/// Builds the behavioral semantics of the combined Lattice ECP5 DSP
/// (`MULT18X18C` multiplier feeding an `ALU54A`), which the paper treats as a single
/// DSP target.
///
/// Free variables: data ports `A`(18) `B`(18) `C`(54); configuration `REG_INPUT`
/// `REG_C` `REG_PIPE` `REG_OUTPUT` (1 bit each) and `ALU_OP`(3). The root is the
/// 54-bit result.
pub fn ecp5_dsp_semantics() -> Prog {
    let mut b = ProgBuilder::new("ECP5_DSP_semantics");
    let a = b.var("A", 18);
    let bb = b.var("B", 18);
    let c = b.var("C", 54);
    let reg_input = b.var("REG_INPUT", 1);
    let reg_c = b.var("REG_C", 1);
    let reg_pipe = b.var("REG_PIPE", 1);
    let reg_output = b.var("REG_OUTPUT", 1);
    let alu_op = b.var("ALU_OP", 3);

    let a1 = opt_reg(&mut b, reg_input, a, 18);
    let b1 = opt_reg(&mut b, reg_input, bb, 18);
    let c1 = opt_reg(&mut b, reg_c, c, 54);

    let ma = b.zext(a1, 36);
    let mb = b.zext(b1, 36);
    let product = b.op2(BvOp::Mul, ma, mb);
    let m_wide = b.zext(product, 54);
    let m = opt_reg(&mut b, reg_pipe, m_wide, 54);
    let c2 = opt_reg(&mut b, reg_pipe, c1, 54);

    // ALU_OP: 0 -> M, 1 -> M + C, 2 -> M - C, 3 -> C - M, 4 -> M & C, 5 -> M | C,
    // 6 -> M ^ C.
    let add = b.op2(BvOp::Add, m, c2);
    let sub = b.op2(BvOp::Sub, m, c2);
    let rsub = b.op2(BvOp::Sub, c2, m);
    let and = b.op2(BvOp::And, m, c2);
    let or = b.op2(BvOp::Or, m, c2);
    let xor = b.op2(BvOp::Xor, m, c2);
    let mut result = m;
    for (code, value) in [(1, add), (2, sub), (3, rsub), (4, and), (5, or), (6, xor)] {
        let is = eq_const(&mut b, alu_op, code, 3);
        result = b.mux(is, value, result);
    }

    let out = opt_reg(&mut b, reg_output, result, 54);
    b.finish(out)
}

/// Extracts the Intel Cyclone 10 LP multiplier semantics from its mini-HDL model.
pub fn cyclone10_mac_mult_semantics() -> Prog {
    lr_hdl::extract_semantics(lr_hdl::models::CYCLONE10LP_MAC_MULT)
        .expect("built-in cyclone10lp_mac_mult model extracts")
}

/// Extracts a LUT semantics program from the built-in mini-HDL models.
/// `inputs` must be 2, 4, or 6.
pub fn lut_semantics(inputs: u32) -> Prog {
    let src = match inputs {
        2 => lr_hdl::models::LUT2,
        4 => lr_hdl::models::LUT4,
        6 => lr_hdl::models::LUT6,
        other => panic!("no built-in LUT model with {other} inputs"),
    };
    lr_hdl::extract_semantics(src).expect("built-in LUT model extracts")
}

/// Extracts the SOFA `frac_lut4` semantics.
pub fn frac_lut4_semantics() -> Prog {
    lr_hdl::extract_semantics(lr_hdl::models::FRAC_LUT4).expect("built-in frac_lut4 model extracts")
}

/// Extracts the Xilinx CARRY8 semantics.
pub fn carry8_semantics() -> Prog {
    lr_hdl::extract_semantics(lr_hdl::models::CARRY8).expect("built-in CARRY8 model extracts")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_ir::StreamInputs;

    fn env(pairs: &[(&str, u64, u32)]) -> StreamInputs {
        StreamInputs::from_constants(
            pairs.iter().map(|&(n, v, w)| (n.to_string(), BitVec::from_u64(v, w))),
        )
    }

    /// A DSP48E2 environment with every control input defaulted to the combinational
    /// multiply-add configuration `P = C + (D + A) * B`.
    fn dsp_env(a: u64, bv: u64, c: u64, d: u64) -> StreamInputs {
        env(&[
            ("A", a, 30),
            ("B", bv, 18),
            ("C", c, 48),
            ("D", d, 27),
            ("CARRYIN", 0, 1),
            ("INMODE", 0, 5),
            // OPMODE: X = M (01), Y = 0 (00), Z = C (011) -> 0_011_00_01.
            ("OPMODE", 0b0_011_00_01, 9),
            ("ALUMODE", 0, 4),
            ("AREG", 0, 1),
            ("BREG", 0, 1),
            ("CREG", 0, 1),
            ("DREG", 0, 1),
            ("ADREG", 0, 1),
            ("MREG", 0, 1),
            ("PREG", 0, 1),
            ("AMULTSEL", 1, 1),
        ])
    }

    #[test]
    fn dsp48e2_is_well_formed() {
        let prog = dsp48e2_semantics();
        assert!(prog.well_formed().is_ok());
        assert_eq!(prog.width(prog.root()), 48);
        assert_eq!(prog.free_vars().len(), 16);
    }

    #[test]
    fn dsp48e2_computes_pre_add_multiply_accumulate() {
        let prog = dsp48e2_semantics();
        // P = C + (D + A) * B = 100 + (7 + 3) * 5 = 150.
        let e = dsp_env(3, 5, 100, 7);
        assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::from_u64(150, 48));
    }

    #[test]
    fn dsp48e2_pre_subtract_and_logic_modes() {
        let prog = dsp48e2_semantics();
        // Pre-subtract: INMODE[3] = 1 -> (D - A) * B = (7 - 3) * 5 = 20 with Z = 0.
        let mut e = dsp_env(3, 5, 0, 7);
        e.set_constant("INMODE", BitVec::from_u64(1 << 3, 5));
        e.set_constant("OPMODE", BitVec::from_u64(0b0_000_00_01, 9));
        assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::from_u64(20, 48));

        // Logic mode: X = M, Z = C, ALUMODE = 0b0100 -> M & C.
        let mut e = dsp_env(3, 5, 0b1100, 7);
        e.set_constant("ALUMODE", BitVec::from_u64(0b0100, 4));
        e.set_constant("OPMODE", BitVec::from_u64(0b0_011_00_01, 9));
        let m = (7 + 3) * 5; // 50 = 0b110010
        assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::from_u64(m & 0b1100, 48));
    }

    #[test]
    fn dsp48e2_subtract_alu_mode() {
        let prog = dsp48e2_semantics();
        // ALUMODE = 0b0011: Z - (X + Y + CIN) = C - (D + A) * B = 100 - 50 = 50.
        let mut e = dsp_env(3, 5, 100, 7);
        e.set_constant("ALUMODE", BitVec::from_u64(0b0011, 4));
        assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::from_u64(50, 48));
        // ALUMODE = 0b0001 with CARRYIN = 1: (X + Y + CIN) - Z - 1 = 50 - 100 = -50.
        let mut e = dsp_env(3, 5, 100, 7);
        e.set_constant("ALUMODE", BitVec::from_u64(0b0001, 4));
        e.set_constant("CARRYIN", BitVec::from_u64(1, 1));
        assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::from_i64(-50, 48));
    }

    #[test]
    fn dsp48e2_pipeline_registers_delay_the_result() {
        let prog = dsp48e2_semantics();
        let mut e = dsp_env(3, 5, 100, 7);
        e.set_constant("MREG", BitVec::from_u64(1, 1));
        e.set_constant("PREG", BitVec::from_u64(1, 1));
        // Two pipeline stages: registers start at zero, C+0 appears after one cycle,
        // and the steady-state value appears at cycle 2.
        assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::zeros(48));
        assert_eq!(prog.interp(&e, 1).unwrap(), BitVec::from_u64(100, 48));
        assert_eq!(prog.interp(&e, 2).unwrap(), BitVec::from_u64(150, 48));
    }

    #[test]
    fn ecp5_dsp_modes() {
        let prog = ecp5_dsp_semantics();
        assert!(prog.well_formed().is_ok());
        let base = [
            ("A", 6u64, 18u32),
            ("B", 7, 18),
            ("C", 100, 54),
            ("REG_INPUT", 0, 1),
            ("REG_C", 0, 1),
            ("REG_PIPE", 0, 1),
            ("REG_OUTPUT", 0, 1),
        ];
        for (op, expect) in [
            (0u64, 42u64),
            (1, 142),
            (2, (42u64.wrapping_sub(100)) & ((1 << 54) - 1)),
            (3, 58),
            (4, 42 & 100),
            (5, 42 | 100),
            (6, 42 ^ 100),
        ] {
            let mut e = env(&base);
            e.set_constant("ALU_OP", BitVec::from_u64(op, 3));
            assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::from_u64(expect, 54), "op {op}");
        }
    }

    #[test]
    fn ecp5_dsp_registers_delay() {
        let prog = ecp5_dsp_semantics();
        let mut e = env(&[
            ("A", 6, 18),
            ("B", 7, 18),
            ("C", 0, 54),
            ("REG_INPUT", 1, 1),
            ("REG_C", 0, 1),
            ("REG_PIPE", 0, 1),
            ("REG_OUTPUT", 1, 1),
            ("ALU_OP", 0, 3),
        ]);
        assert_eq!(prog.interp(&e, 0).unwrap(), BitVec::zeros(54));
        assert_eq!(prog.interp(&e, 2).unwrap(), BitVec::from_u64(42, 54));
        e.set_constant("REG_INPUT", BitVec::from_u64(0, 1));
        assert_eq!(prog.interp(&e, 1).unwrap(), BitVec::from_u64(42, 54));
    }

    #[test]
    fn extracted_primitives_are_available() {
        assert!(cyclone10_mac_mult_semantics().well_formed().is_ok());
        assert!(frac_lut4_semantics().well_formed().is_ok());
        assert!(carry8_semantics().well_formed().is_ok());
        for n in [2, 4, 6] {
            let lut = lut_semantics(n);
            assert!(lut.well_formed().is_ok(), "LUT{n}");
        }
    }

    #[test]
    #[should_panic]
    fn unknown_lut_size_panics() {
        lut_semantics(5);
    }
}
