//! Brute-force enumeration baseline for the synthesis step.
//!
//! This module exists for the ablation study (DESIGN.md §6): instead of CEGIS, it
//! enumerates the Cartesian product of the holes' finite domains and verifies each
//! candidate. It is only practical when the product of domain sizes is small; the
//! ablation benchmark uses it to show why the paper's solver-based approach is
//! necessary for DSP-sized configuration spaces.

use std::collections::BTreeMap;
use std::time::Instant;

use lr_bv::BitVec;
use lr_ir::{HoleDomain, HoleInfo, Prog, StreamInputs};

use crate::{SynthesisError, SynthesisOutcome, SynthesisStats, SynthesisTask, Synthesized};

/// Enumerates hole assignments up to `max_candidates`, verifying each by exhaustive
/// simulation when input widths are small (≤ `max_exhaustive_bits` total) and by a
/// fixed set of random probes otherwise.
///
/// # Errors
/// Returns [`SynthesisError`] if the task is malformed or a hole domain is too large
/// to enumerate.
pub fn synthesize_by_enumeration(
    task: &SynthesisTask<'_>,
    max_candidates: u64,
    probes: usize,
) -> Result<SynthesisOutcome, SynthesisError> {
    if !task.spec.is_behavioral() {
        return Err(SynthesisError::SpecNotBehavioral);
    }
    let start = Instant::now();
    let holes = task.sketch.holes();
    let mut stats = SynthesisStats { solver_name: "enumeration".to_string(), ..Default::default() };

    let domains: Result<Vec<Vec<BitVec>>, SynthesisError> =
        holes.iter().map(|h| domain_values(h, max_candidates)).collect();
    let domains = domains?;
    let total: u64 = domains.iter().map(|d| d.len() as u64).product();
    let inputs = task.spec.free_vars();
    let probe_envs = probe_environments(&inputs, probes);

    let mut indices = vec![0usize; domains.len()];
    let mut tried = 0u64;
    loop {
        if tried >= max_candidates || tried >= total {
            stats.elapsed = start.elapsed();
            stats.iterations = tried as usize;
            return Ok(SynthesisOutcome::Timeout { stats });
        }
        let assignment: BTreeMap<String, BitVec> = holes
            .iter()
            .zip(&indices)
            .map(|(h, &i)| {
                (
                    h.name.clone(),
                    domains[holes.iter().position(|x| x.name == h.name).unwrap()][i].clone(),
                )
            })
            .collect();
        tried += 1;
        let candidate = task.sketch.fill_holes(&assignment).map_err(SynthesisError::IllFormed)?;
        if candidate_matches(task, &candidate, &probe_envs) {
            stats.elapsed = start.elapsed();
            stats.iterations = tried as usize;
            stats.examples = probe_envs.len();
            return Ok(SynthesisOutcome::Success(Box::new(Synthesized {
                implementation: candidate,
                hole_assignment: assignment,
                stats,
            })));
        }
        // Advance the mixed-radix counter.
        let mut k = 0;
        loop {
            if k == indices.len() {
                stats.elapsed = start.elapsed();
                stats.iterations = tried as usize;
                return Ok(SynthesisOutcome::Unsat { stats });
            }
            indices[k] += 1;
            if indices[k] < domains[k].len() {
                break;
            }
            indices[k] = 0;
            k += 1;
        }
    }
}

fn domain_values(hole: &HoleInfo, cap: u64) -> Result<Vec<BitVec>, SynthesisError> {
    match &hole.domain {
        HoleDomain::Choice(choices) => Ok(choices.clone()),
        HoleDomain::LessThan(bound) => {
            let n = bound.to_u64().unwrap_or(u64::MAX);
            if n > cap.max(1 << 20) {
                return Err(SynthesisError::IllFormed(format!(
                    "hole `{}` has {n} candidate values; too many to enumerate",
                    hole.name
                )));
            }
            Ok((0..n).map(|v| BitVec::from_u64(v, hole.width)).collect())
        }
        HoleDomain::AnyConstant => {
            if hole.width > 20 {
                return Err(SynthesisError::IllFormed(format!(
                    "hole `{}` is too wide ({} bits) to enumerate",
                    hole.name, hole.width
                )));
            }
            let n = 1u64 << hole.width;
            Ok((0..n).map(|v| BitVec::from_u64(v, hole.width)).collect())
        }
    }
}

fn probe_environments(inputs: &[(String, u32)], probes: usize) -> Vec<StreamInputs> {
    let mut envs = Vec::new();
    let mut state = 0x9e3779b97f4a7c15u64;
    for i in 0..probes.max(2) {
        let mut env = StreamInputs::new();
        for (name, width) in inputs {
            let value = match i {
                0 => 0,
                1 => u64::MAX,
                _ => {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                }
            };
            env.set_constant(name.clone(), BitVec::from_u64(value, *width));
        }
        envs.push(env);
    }
    envs
}

fn candidate_matches(task: &SynthesisTask<'_>, candidate: &Prog, envs: &[StreamInputs]) -> bool {
    for env in envs {
        for cycle in task.cycles() {
            let spec = task.spec.interp(env, cycle);
            let cand = candidate.interp(env, cycle);
            match (spec, cand) {
                (Ok(s), Ok(c)) if s == c => {}
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_ir::{BvOp, ProgBuilder};

    #[test]
    fn enumeration_finds_small_constants() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let three = b.constant_u64(3, 8);
        let out = b.op2(BvOp::Add, a, three);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::LessThan(BitVec::from_u64(16, 8)));
        let out = b.op2(BvOp::Add, a, k);
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome = synthesize_by_enumeration(&task, 1 << 16, 6).unwrap();
        let result = outcome.success().expect("enumeration should succeed");
        assert_eq!(result.hole_assignment["k"], BitVec::from_u64(3, 8));
        assert_eq!(result.stats.solver_name, "enumeration");
    }

    #[test]
    fn enumeration_times_out_when_capped() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let c = b.constant_u64(200, 8);
        let out = b.op2(BvOp::Add, a, c);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Add, a, k);
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        // Only 10 candidates allowed: the correct constant (200) is out of reach.
        let outcome = synthesize_by_enumeration(&task, 10, 4).unwrap();
        assert!(outcome.is_timeout());
    }

    #[test]
    fn enumeration_reports_exhaustion_as_unsat() {
        // No choice in {1, 2} implements +3.
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let three = b.constant_u64(3, 8);
        let out = b.op2(BvOp::Add, a, three);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole(
            "k",
            8,
            HoleDomain::Choice(vec![BitVec::from_u64(1, 8), BitVec::from_u64(2, 8)]),
        );
        let out = b.op2(BvOp::Add, a, k);
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome = synthesize_by_enumeration(&task, 1 << 16, 4).unwrap();
        assert!(outcome.is_unsat());
    }

    #[test]
    fn wide_any_constant_holes_are_rejected() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 32);
        let spec = b.finish(a);
        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 32);
        let k = b.hole("k", 32, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Xor, a, k);
        let sketch = b.finish(out);
        let task = SynthesisTask::at(&spec, &sketch, 0);
        assert!(synthesize_by_enumeration(&task, 1000, 4).is_err());
    }
}
