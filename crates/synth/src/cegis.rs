//! The CEGIS loop implementing 𝑓lr / 𝑓*lr.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lr_bv::BitVec;
use lr_ir::symbolic::{hole_var_name, input_var_name, SymbolicOptions};
use lr_ir::{HoleInfo, Prog, StreamInputs};
use lr_smt::{BvSolver, SatResult, TermPool};

use crate::{
    SynthesisConfig, SynthesisError, SynthesisOutcome, SynthesisStats, SynthesisTask, Synthesized,
};

/// Runs CEGIS for the given task and configuration.
///
/// `cancel`, if provided, is polled between solver calls; when it becomes true the
/// run stops early with a timeout verdict (used by the portfolio to stop losers).
///
/// # Errors
/// Returns [`SynthesisError`] if the task is malformed.
pub fn synthesize(
    task: &SynthesisTask<'_>,
    config: &SynthesisConfig,
    cancel: Option<Arc<AtomicBool>>,
) -> Result<SynthesisOutcome, SynthesisError> {
    validate(task)?;
    let start = Instant::now();
    let holes = task.sketch.holes();
    let inputs = task.spec.free_vars();
    let mut stats = SynthesisStats {
        solver_name: config.solver.name.clone(),
        ..SynthesisStats::default()
    };

    // Seed examples: all-zeros, all-ones, and a few pseudo-random patterns.
    let mut examples: Vec<StreamInputs> = Vec::new();
    examples.push(constant_example(&inputs, |_, _| 0));
    if config.seed_examples >= 1 {
        examples.push(constant_example(&inputs, |_, w| if w >= 64 { u64::MAX } else { (1 << w) - 1 }));
    }
    let mut rng_state = config.seed | 1;
    for _ in 1..config.seed_examples {
        examples.push(constant_example(&inputs, |_, _| {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        }));
    }
    stats.examples = examples.len();

    let cancelled = || cancel.as_ref().map(|c| c.load(Ordering::Relaxed)).unwrap_or(false);
    let out_of_time =
        |start: &Instant| config.timeout.map(|t| start.elapsed() >= t).unwrap_or(false);

    for iteration in 0..config.max_iterations {
        stats.iterations = iteration + 1;
        if cancelled() || out_of_time(&start) {
            stats.elapsed = start.elapsed();
            return Ok(SynthesisOutcome::Timeout { stats });
        }

        // ----- synthesis step: find hole values consistent with all examples -----
        let candidate = match solve_for_holes(task, config, &holes, &examples) {
            HoleSearch::Found(assignment) => assignment,
            HoleSearch::NoneExists => {
                stats.elapsed = start.elapsed();
                return Ok(SynthesisOutcome::Unsat { stats });
            }
            HoleSearch::GaveUp => {
                stats.elapsed = start.elapsed();
                return Ok(SynthesisOutcome::Timeout { stats });
            }
        };

        if cancelled() || out_of_time(&start) {
            stats.elapsed = start.elapsed();
            return Ok(SynthesisOutcome::Timeout { stats });
        }

        // ----- verification step: does the candidate work for *all* inputs? -----
        let completed = task
            .sketch
            .fill_holes(&candidate)
            .map_err(SynthesisError::IllFormed)?;
        match verify(task, config, &completed, &mut stats) {
            Verification::Equivalent => {
                stats.elapsed = start.elapsed();
                return Ok(SynthesisOutcome::Success(Box::new(Synthesized {
                    implementation: completed,
                    hole_assignment: candidate,
                    stats,
                })));
            }
            Verification::Counterexample(cex) => {
                examples.push(cex);
                stats.examples = examples.len();
            }
            Verification::GaveUp => {
                stats.elapsed = start.elapsed();
                return Ok(SynthesisOutcome::Timeout { stats });
            }
        }
    }
    stats.elapsed = start.elapsed();
    Ok(SynthesisOutcome::Timeout { stats })
}

fn validate(task: &SynthesisTask<'_>) -> Result<(), SynthesisError> {
    if !task.spec.is_behavioral() {
        return Err(SynthesisError::SpecNotBehavioral);
    }
    task.spec
        .well_formed()
        .map_err(|e| SynthesisError::IllFormed(format!("spec: {e}")))?;
    task.sketch
        .well_formed()
        .map_err(|e| SynthesisError::IllFormed(format!("sketch: {e}")))?;
    let spec_inputs: Vec<String> = task.spec.free_vars().into_iter().map(|(n, _)| n).collect();
    let sketch_inputs: Vec<String> = task.sketch.free_vars().into_iter().map(|(n, _)| n).collect();
    if spec_inputs != sketch_inputs {
        return Err(SynthesisError::InputMismatch { spec: spec_inputs, sketch: sketch_inputs });
    }
    Ok(())
}

fn constant_example(inputs: &[(String, u32)], mut value: impl FnMut(&str, u32) -> u64) -> StreamInputs {
    let mut ex = StreamInputs::new();
    for (name, width) in inputs {
        ex.set_constant(name.clone(), BitVec::from_u64(value(name, *width), *width));
    }
    ex
}

enum HoleSearch {
    Found(BTreeMap<String, BitVec>),
    NoneExists,
    GaveUp,
}

/// The CEGIS synthesis step: find hole values making the sketch match the spec on
/// every accumulated example at every required cycle.
fn solve_for_holes(
    task: &SynthesisTask<'_>,
    config: &SynthesisConfig,
    holes: &[HoleInfo],
    examples: &[StreamInputs],
) -> HoleSearch {
    let mut pool = TermPool::new();
    let mut solver = BvSolver::with_config(config.solver.clone());

    for constraint in task.sketch.hole_domain_constraints(&mut pool) {
        solver.assert_true(&pool, constraint);
    }

    for example in examples {
        for cycle in task.cycles() {
            let Ok(expected) = task.spec.interp(example, cycle) else {
                // The example does not bind every input; skip it defensively.
                continue;
            };
            let options = SymbolicOptions { concrete_inputs: Some(example) };
            let sketch_term = task.sketch.to_term_with(&mut pool, cycle, &options);
            let expected_term = pool.constant(expected);
            let eq = pool.eq(sketch_term, expected_term);
            solver.assert_true(&pool, eq);
        }
    }

    match solver.check(&pool) {
        SatResult::Unsat => HoleSearch::NoneExists,
        SatResult::Unknown => HoleSearch::GaveUp,
        SatResult::Sat => {
            let model = solver.model(&pool);
            let mut assignment = BTreeMap::new();
            for hole in holes {
                let value = model.get_or_zero(&hole_var_name(&hole.name), hole.width);
                // The domain constraint is only asserted when the hole is mentioned
                // by some example's term; default any unconstrained hole to a legal
                // value.
                let value = if hole.domain.contains(&value) {
                    value
                } else {
                    first_in_domain(hole)
                };
                assignment.insert(hole.name.clone(), value);
            }
            HoleSearch::Found(assignment)
        }
    }
}

fn first_in_domain(hole: &HoleInfo) -> BitVec {
    match &hole.domain {
        lr_ir::HoleDomain::AnyConstant => BitVec::zeros(hole.width),
        lr_ir::HoleDomain::Choice(choices) => {
            choices.first().cloned().unwrap_or_else(|| BitVec::zeros(hole.width))
        }
        lr_ir::HoleDomain::LessThan(_) => BitVec::zeros(hole.width),
    }
}

enum Verification {
    Equivalent,
    Counterexample(StreamInputs),
    GaveUp,
}

/// The CEGIS verification step: check `∀ inputs. spec = candidate` at all required
/// cycles by asking for an input where they differ.
fn verify(
    task: &SynthesisTask<'_>,
    config: &SynthesisConfig,
    candidate: &Prog,
    stats: &mut SynthesisStats,
) -> Verification {
    let mut pool = TermPool::new();
    let mut differs = pool.false_();
    for cycle in task.cycles() {
        let spec_term = task.spec.to_term(&mut pool, cycle);
        let cand_term = candidate.to_term(&mut pool, cycle);
        let ne = pool.ne(spec_term, cand_term);
        differs = pool.or(differs, ne);
    }
    // If rewriting alone proves the terms equal, the SAT solver never runs.
    if let Some(value) = pool.as_const(differs) {
        if value.is_zero() {
            return Verification::Equivalent;
        }
    }
    stats.verification_used_sat = true;
    let mut solver = BvSolver::with_config(config.solver.clone());
    solver.assert_true(&pool, differs);
    match solver.check(&pool) {
        SatResult::Unsat => Verification::Equivalent,
        SatResult::Unknown => Verification::GaveUp,
        SatResult::Sat => {
            let model = solver.model(&pool);
            let last_cycle = task.at_cycle + task.extra_cycles;
            let mut cex = StreamInputs::new();
            for (name, width) in task.spec.free_vars() {
                let trace: Vec<BitVec> = (0..=last_cycle)
                    .map(|t| model.get_or_zero(&input_var_name(&name, t), width))
                    .collect();
                cex.set_trace(name, trace);
            }
            Verification::Counterexample(cex)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_ir::{BvOp, HoleDomain, ProgBuilder};

    /// spec: out = a + 5; sketch: out = a + ??
    #[test]
    fn synthesizes_a_constant_offset() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let five = b.constant_u64(5, 8);
        let out = b.op2(BvOp::Add, a, five);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Add, a, k);
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome = synthesize(&task, &SynthesisConfig::default(), None).unwrap();
        let result = outcome.success().expect("synthesis should succeed");
        assert_eq!(result.hole_assignment["k"], BitVec::from_u64(5, 8));
        assert!(!result.implementation.has_holes());
    }

    /// spec: out = a & 0xF0; sketch: out = a & ?? — and also check the masked value
    /// equivalence over random inputs.
    #[test]
    fn synthesizes_a_mask_and_result_is_equivalent() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let mask = b.constant_u64(0xF0, 8);
        let out = b.op2(BvOp::And, a, mask);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::And, a, k);
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome = synthesize(&task, &SynthesisConfig::default(), None).unwrap();
        let result = outcome.success().expect("synthesis should succeed");
        for value in [0u64, 1, 0x55, 0xAA, 0xFF, 0x93] {
            let mut env = StreamInputs::new();
            env.set_constant("a", BitVec::from_u64(value, 8));
            assert_eq!(
                spec.interp(&env, 0).unwrap(),
                result.implementation.interp(&env, 0).unwrap(),
                "mismatch at a = {value}"
            );
        }
    }

    /// spec: out = a * 2 at cycle 1 (registered); sketch: out = reg(a << ??).
    #[test]
    fn synthesizes_across_a_register() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let two = b.constant_u64(2, 8);
        let prod = b.op2(BvOp::Mul, a, two);
        let r = b.reg(prod, 8);
        let spec = b.finish(r);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let sh = b.hole("shift", 8, HoleDomain::LessThan(BitVec::from_u64(8, 8)));
        let shifted = b.op2(BvOp::Shl, a, sh);
        let r = b.reg(shifted, 8);
        let sketch = b.finish(r);

        let task = SynthesisTask::over_window(&spec, &sketch, 1, 2);
        let outcome = synthesize(&task, &SynthesisConfig::default(), None).unwrap();
        let result = outcome.success().expect("synthesis should succeed");
        assert_eq!(result.hole_assignment["shift"], BitVec::from_u64(1, 8));
    }

    /// An impossible sketch: out = a | ?? can never implement out = a & 0x0F
    /// (ORing can only set bits, and a=0xFF requires the result 0x0F).
    #[test]
    fn reports_unsat_for_impossible_sketches() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let mask = b.constant_u64(0x0F, 8);
        let out = b.op2(BvOp::And, a, mask);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Or, a, k);
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome = synthesize(&task, &SynthesisConfig::default(), None).unwrap();
        assert!(outcome.is_unsat(), "expected UNSAT, got {outcome:?}");
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let spec = b.finish(a);
        let mut b = ProgBuilder::new("sketch");
        let x = b.input("x", 8);
        let sketch = b.finish(x);
        let task = SynthesisTask::at(&spec, &sketch, 0);
        let err = synthesize(&task, &SynthesisConfig::default(), None).unwrap_err();
        assert!(matches!(err, SynthesisError::InputMismatch { .. }));
    }

    #[test]
    fn rejects_non_behavioral_spec() {
        let mut b = ProgBuilder::new("spec");
        let h = b.hole("h", 8, HoleDomain::AnyConstant);
        let spec = b.finish(h);
        let mut b = ProgBuilder::new("sketch");
        let h = b.hole("h", 8, HoleDomain::AnyConstant);
        let sketch = b.finish(h);
        let task = SynthesisTask::at(&spec, &sketch, 0);
        let err = synthesize(&task, &SynthesisConfig::default(), None).unwrap_err();
        assert_eq!(err, SynthesisError::SpecNotBehavioral);
    }

    #[test]
    fn choice_domains_are_respected() {
        // spec: out = a + 4; hole restricted to {2, 4, 8}.
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let four = b.constant_u64(4, 8);
        let out = b.op2(BvOp::Add, a, four);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole(
            "k",
            8,
            HoleDomain::Choice(vec![
                BitVec::from_u64(2, 8),
                BitVec::from_u64(4, 8),
                BitVec::from_u64(8, 8),
            ]),
        );
        let out = b.op2(BvOp::Add, a, k);
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome = synthesize(&task, &SynthesisConfig::default(), None).unwrap();
        let result = outcome.success().expect("synthesis should succeed");
        assert_eq!(result.hole_assignment["k"], BitVec::from_u64(4, 8));
    }

    #[test]
    fn cancel_flag_stops_the_run() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let spec = b.finish(a);
        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Xor, a, k);
        let sketch = b.finish(out);
        let cancel = Arc::new(AtomicBool::new(true));
        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome =
            synthesize(&task, &SynthesisConfig::default(), Some(cancel)).unwrap();
        assert!(outcome.is_timeout());
    }

    #[test]
    fn stats_are_populated() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 4);
        let spec = b.finish(a);
        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 4);
        let k = b.hole("k", 4, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Xor, a, k);
        let sketch = b.finish(out);
        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome = synthesize(&task, &SynthesisConfig::default(), None).unwrap();
        let result = outcome.success().unwrap();
        assert!(result.stats.iterations >= 1);
        assert!(result.stats.examples >= 1);
        assert_eq!(result.stats.solver_name, "default");
        assert_eq!(result.hole_assignment["k"], BitVec::zeros(4));
    }
}
