//! The CEGIS loop implementing 𝑓lr / 𝑓*lr.
//!
//! # Incremental solving
//!
//! With [`SynthesisConfig::incremental`] (the default) both CEGIS queries reuse
//! solver state across iterations instead of rebuilding it each round:
//!
//! * **Synthesis step** ([`SynthStep`]) — one `TermPool`/`BvSolver` pair lives for
//!   the whole run. Its constraints are all *permanent*: the hole-domain
//!   constraints (asserted once, before the first iteration) and one equality
//!   constraint per (example, cycle). Examples only ever accumulate, so nothing
//!   needs retraction — iteration `n` asserts only the constraints contributed by
//!   the counterexample learned in iteration `n-1`, and the bit-blast cache plus
//!   every learnt clause carry over to the next check.
//! * **Verification step** ([`VerifyStep`]) — one pool/solver pair is shared by
//!   every candidate. Each candidate's disequality (built with its holes filled
//!   concretely, so rewriting can shrink it) is *assumption-guarded*: the session
//!   permanently asserts `activationᵢ → differsᵢ` and checks it with
//!   [`BvSolver::check_assuming`]`(&[activationᵢ])`, so the constraint binds for
//!   exactly one query and retracts for free when the next candidate arrives. The
//!   spec-side terms are identical every round, so their encodings are reused via
//!   hash-consing and the bit-blast cache, and clauses learnt about the shared
//!   circuit structure keep paying off across candidates.
//!
//! With `incremental: false` the original from-scratch behaviour is kept: every
//! iteration builds fresh solvers and re-encodes every accumulated example (O(n²)
//! total encoding work, counted by [`SynthesisStats::constraints_reencoded`]). The
//! two modes must produce identical verdicts; the differential harness in
//! `tests/differential_cegis.rs` enforces this over the e2e benchmark tier.
//!
//! In both modes a candidate is first checked by term rewriting alone (building the
//! disequality with the holes filled concretely and asking whether it folds to
//! `false`). When one-shot rewriting cannot decide the query and
//! [`SynthesisConfig::egraph`] is on (the default), the disequality is pre-folded
//! through bounded equality saturation (`lr_egraph`): ordering-sensitive forms the
//! pool misses — re-associable constant chains, mirrored subtractions, negate-path
//! products — fold to `false` there, and only queries that survive both rewriting
//! engines reach the SAT solver (carrying the smaller, extracted form of the
//! disequality).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use lr_bv::BitVec;
use lr_ir::symbolic::{hole_var_name, input_var_name, SymbolicOptions};
use lr_ir::{HoleInfo, Prog, StreamInputs};
use lr_smt::{BvSession, BvSolver, SatResult, TermId, TermPool};

use crate::{
    SynthesisConfig, SynthesisError, SynthesisOutcome, SynthesisStats, SynthesisTask, Synthesized,
};

/// Runs CEGIS for the given task and configuration.
///
/// `cancel`, if provided, is polled between solver calls; when it becomes true the
/// run stops early with a timeout verdict (used by the portfolio to stop losers).
///
/// # Errors
/// Returns [`SynthesisError`] if the task is malformed.
pub fn synthesize(
    task: &SynthesisTask<'_>,
    config: &SynthesisConfig,
    cancel: Option<Arc<AtomicBool>>,
) -> Result<SynthesisOutcome, SynthesisError> {
    // Convenience toggles: the historical `LR_CEGIS_TRACE` env vars now enable
    // the structured tracer plus its stderr echo sink, which prints one
    // `[lr_trace]` line per recorded span — the successor of the old
    // per-check `eprintln!`s (same signal, richer structure).
    if std::env::var_os("LR_CEGIS_TRACE").is_some()
        || std::env::var_os("LR_CEGIS_TRACE_TERMS").is_some()
    {
        lr_trace::set_enabled(true);
        lr_trace::set_stderr_echo(true);
    }
    let mut sp = lr_trace::span("cegis");
    let result = synthesize_run(task, config, cancel);
    if sp.is_active() {
        if let Ok(outcome) = &result {
            // Absorb the run's SynthesisStats counters as span attributes, so
            // the trace alone answers "what did this run cost".
            let stats = outcome.stats();
            sp.attr(
                "verdict",
                match outcome {
                    SynthesisOutcome::Success(_) => 0,
                    SynthesisOutcome::Unsat { .. } => 1,
                    SynthesisOutcome::Timeout { .. } => 2,
                },
            );
            sp.attr("iterations", stats.iterations as u64);
            sp.attr("examples", stats.examples as u64);
            sp.attr("conflicts", stats.conflicts);
            sp.attr("propagations", stats.propagations);
            sp.attr("restarts", stats.restarts);
            sp.attr("constraints_encoded", stats.constraints_encoded as u64);
            sp.attr("egraph_attempts", stats.egraph_attempts as u64);
            sp.attr("egraph_folds", stats.egraph_folds as u64);
            sp.attr("used_sat_verify", u64::from(stats.verification_used_sat));
        }
    }
    result
}

fn synthesize_run(
    task: &SynthesisTask<'_>,
    config: &SynthesisConfig,
    cancel: Option<Arc<AtomicBool>>,
) -> Result<SynthesisOutcome, SynthesisError> {
    validate(task)?;
    let start = Instant::now();
    let holes = task.sketch.holes();
    let inputs = task.spec.free_vars();
    let mut stats = SynthesisStats {
        solver_name: config.solver.name.clone(),
        restart_mode: format!("{:?}", config.solver.restart_mode).to_lowercase(),
        incremental: config.incremental,
        ..SynthesisStats::default()
    };

    // Seed examples: all-zeros, all-ones, and a few pseudo-random patterns.
    let mut examples: Vec<StreamInputs> = Vec::new();
    examples.push(constant_example(&inputs, |_, _| 0));
    if config.seed_examples >= 1 {
        examples
            .push(constant_example(&inputs, |_, w| if w >= 64 { u64::MAX } else { (1 << w) - 1 }));
    }
    let mut rng_state = config.seed | 1;
    for _ in 1..config.seed_examples {
        examples.push(constant_example(&inputs, |_, _| {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            rng_state
        }));
    }
    stats.examples = examples.len();

    // Both the portfolio's first-winner flag and the config's external cancel
    // flag stop the run; they are also registered as SAT interrupts on every
    // solver the steps create, so a check already in flight returns promptly.
    let interrupts: Vec<Arc<AtomicBool>> =
        cancel.iter().chain(config.cancel.iter()).cloned().collect();
    let cancelled = || interrupts.iter().any(|c| c.load(Ordering::Relaxed));
    let out_of_time =
        |start: &Instant| config.timeout.map(|t| start.elapsed() >= t).unwrap_or(false);

    let mut synth = SynthStep::new();
    synth.interrupts.clone_from(&interrupts);
    let mut verifier = VerifyStep::new();
    verifier.interrupts.clone_from(&interrupts);

    for iteration in 0..config.max_iterations {
        let mut iter_span = lr_trace::span("cegis-iteration");
        iter_span.attr("iteration", iteration as u64);
        iter_span.attr("examples", examples.len() as u64);
        stats.iterations = iteration + 1;
        if cancelled() || out_of_time(&start) {
            stats.elapsed = start.elapsed();
            return Ok(SynthesisOutcome::Timeout { stats });
        }

        // ----- synthesis step: find hole values consistent with all examples -----
        let candidate = match synth.solve(task, config, &holes, &examples, &mut stats)? {
            HoleSearch::Found(assignment) => assignment,
            HoleSearch::NoneExists => {
                stats.elapsed = start.elapsed();
                return Ok(SynthesisOutcome::Unsat { stats });
            }
            HoleSearch::GaveUp => {
                stats.elapsed = start.elapsed();
                return Ok(SynthesisOutcome::Timeout { stats });
            }
        };

        if cancelled() || out_of_time(&start) {
            stats.elapsed = start.elapsed();
            return Ok(SynthesisOutcome::Timeout { stats });
        }

        // ----- verification step: does the candidate work for *all* inputs? -----
        let completed = task.sketch.fill_holes(&candidate).map_err(SynthesisError::IllFormed)?;
        match verifier.verify(task, config, &completed, &mut stats) {
            Verification::Equivalent => {
                stats.elapsed = start.elapsed();
                return Ok(SynthesisOutcome::Success(Box::new(Synthesized {
                    implementation: completed,
                    hole_assignment: candidate,
                    stats,
                })));
            }
            Verification::Counterexample(cex) => {
                examples.push(cex);
                stats.examples = examples.len();
            }
            Verification::GaveUp => {
                stats.elapsed = start.elapsed();
                return Ok(SynthesisOutcome::Timeout { stats });
            }
        }
    }
    stats.elapsed = start.elapsed();
    Ok(SynthesisOutcome::Timeout { stats })
}

fn validate(task: &SynthesisTask<'_>) -> Result<(), SynthesisError> {
    if !task.spec.is_behavioral() {
        return Err(SynthesisError::SpecNotBehavioral);
    }
    task.spec.well_formed().map_err(|e| SynthesisError::IllFormed(format!("spec: {e}")))?;
    task.sketch.well_formed().map_err(|e| SynthesisError::IllFormed(format!("sketch: {e}")))?;
    let spec_inputs: Vec<String> = task.spec.free_vars().into_iter().map(|(n, _)| n).collect();
    let sketch_inputs: Vec<String> = task.sketch.free_vars().into_iter().map(|(n, _)| n).collect();
    if spec_inputs != sketch_inputs {
        return Err(SynthesisError::InputMismatch { spec: spec_inputs, sketch: sketch_inputs });
    }
    // The equivalence queries equate the two roots, so their widths must agree;
    // posing a mismatched pair (e.g. a 1-bit comparison sketch against a wide
    // spec) would panic inside the term pool instead of failing the task.
    let spec_width = task.spec.width(task.spec.root());
    let sketch_width = task.sketch.width(task.sketch.root());
    if spec_width != sketch_width {
        return Err(SynthesisError::IllFormed(format!(
            "spec root is {spec_width} bits but sketch root is {sketch_width} bits"
        )));
    }
    Ok(())
}

/// Folds the counter delta of one solver check (and a snapshot of the tier
/// sizes) into the run's statistics. All [`lr_smt::SolverStats`] counters are
/// monotone, so the subtraction is exact.
fn absorb_sat_delta(
    stats: &mut SynthesisStats,
    before: lr_smt::SolverStats,
    after: lr_smt::SolverStats,
) {
    stats.conflicts += after.conflicts - before.conflicts;
    stats.propagations += after.propagations - before.propagations;
    stats.restarts += after.restarts - before.restarts;
    stats.minimized_literals += after.minimized_literals - before.minimized_literals;
    stats.learnt_literals += after.learnt_literals - before.learnt_literals;
    for (acc, (a, b)) in stats
        .glue_histogram
        .iter_mut()
        .zip(after.glue_histogram.iter().zip(before.glue_histogram.iter()))
    {
        *acc += a - b;
    }
    stats.sat_tier_sizes = [after.core_clauses, after.mid_clauses, after.local_clauses];
}

fn constant_example(
    inputs: &[(String, u32)],
    mut value: impl FnMut(&str, u32) -> u64,
) -> StreamInputs {
    let mut ex = StreamInputs::new();
    for (name, width) in inputs {
        ex.set_constant(name.clone(), BitVec::from_u64(value(name, *width), *width));
    }
    ex
}

#[derive(Debug)]
enum HoleSearch {
    Found(BTreeMap<String, BitVec>),
    NoneExists,
    GaveUp,
}

/// Persistent state of the synthesis-step solver: the solving session and how many
/// of the accumulated examples have already been encoded into it.
struct SynthState {
    session: BvSession,
    encoded_examples: usize,
}

impl SynthState {
    fn new(
        task: &SynthesisTask<'_>,
        config: &SynthesisConfig,
        interrupts: &[Arc<AtomicBool>],
    ) -> SynthState {
        let mut session = BvSession::with_config(config.solver.clone());
        for flag in interrupts {
            session.add_interrupt(Arc::clone(flag));
        }
        // Permanent: the hole-domain constraints, asserted exactly once per session.
        for constraint in task.sketch.hole_domain_constraints(session.pool()) {
            session.assert_true(constraint);
        }
        SynthState { session, encoded_examples: 0 }
    }
}

/// The CEGIS synthesis step: find hole values making the sketch match the spec on
/// every accumulated example at every required cycle.
struct SynthStep {
    state: Option<SynthState>,
    /// High-water mark of examples encoded into *any* solver instance so far; used
    /// to count from-scratch re-encoding work.
    ever_encoded: usize,
    /// Interrupt flags installed on every solver this step creates.
    interrupts: Vec<Arc<AtomicBool>>,
}

impl SynthStep {
    fn new() -> SynthStep {
        SynthStep { state: None, ever_encoded: 0, interrupts: Vec::new() }
    }

    fn solve(
        &mut self,
        task: &SynthesisTask<'_>,
        config: &SynthesisConfig,
        holes: &[HoleInfo],
        examples: &[StreamInputs],
        stats: &mut SynthesisStats,
    ) -> Result<HoleSearch, SynthesisError> {
        if !config.incremental {
            // From-scratch mode: a fresh pool and solver per iteration, so every
            // accumulated example is encoded again below.
            self.state = None;
        }
        let state =
            self.state.get_or_insert_with(|| SynthState::new(task, config, &self.interrupts));
        // Snapshot before encoding: adding constraints already propagates root
        // units, and that work belongs to this check's delta.
        let before = state.session.stats();

        // Permanent: one equality constraint per (new example, cycle). Examples only
        // accumulate, so in incremental mode this encodes exactly the delta.
        for (idx, example) in examples.iter().enumerate().skip(state.encoded_examples) {
            for cycle in task.cycles() {
                let expected = task.spec.interp(example, cycle).map_err(|e| {
                    SynthesisError::MalformedExample { example: idx, cycle, reason: e.to_string() }
                })?;
                let options = SymbolicOptions { concrete_inputs: Some(example) };
                let sketch_term = task.sketch.to_term_with(state.session.pool(), cycle, &options);
                let expected_term = state.session.pool().constant(expected);
                let eq = state.session.pool().eq(sketch_term, expected_term);
                state.session.assert_true(eq);
                stats.constraints_encoded += 1;
                if idx < self.ever_encoded {
                    stats.constraints_reencoded += 1;
                }
            }
        }
        state.encoded_examples = examples.len();
        self.ever_encoded = self.ever_encoded.max(examples.len());

        stats.learnt_clauses_reused += state.session.stats().learnt_clauses;
        let mut sp = lr_trace::span("synth-check");
        let verdict = state.session.check();
        if sp.is_active() {
            sp.attr("examples", examples.len() as u64);
            sp.attr("conflicts", state.session.stats().conflicts - before.conflicts);
            sp.attr("sat", u64::from(verdict == SatResult::Sat));
            sp.attr("unknown", u64::from(verdict == SatResult::Unknown));
        }
        drop(sp);
        absorb_sat_delta(stats, before, state.session.stats());

        Ok(match verdict {
            SatResult::Unsat => HoleSearch::NoneExists,
            SatResult::Unknown => HoleSearch::GaveUp,
            SatResult::Sat => {
                let model = state.session.model();
                let mut assignment = BTreeMap::new();
                for hole in holes {
                    let value = model.get_or_zero(&hole_var_name(&hole.name), hole.width);
                    // The domain constraint is only asserted when the hole is mentioned
                    // by some example's term; default any unconstrained hole to a legal
                    // value.
                    let value =
                        if hole.domain.contains(&value) { value } else { first_in_domain(hole) };
                    assignment.insert(hole.name.clone(), value);
                }
                HoleSearch::Found(assignment)
            }
        })
    }
}

fn first_in_domain(hole: &HoleInfo) -> BitVec {
    match &hole.domain {
        lr_ir::HoleDomain::AnyConstant => BitVec::zeros(hole.width),
        lr_ir::HoleDomain::Choice(choices) => {
            choices.first().cloned().unwrap_or_else(|| BitVec::zeros(hole.width))
        }
        lr_ir::HoleDomain::LessThan(_) => BitVec::zeros(hole.width),
    }
}

enum Verification {
    Equivalent,
    Counterexample(StreamInputs),
    GaveUp,
}

/// Persistent state of the incremental verifier: one pool/solver pair shared by all
/// candidates. Each candidate's (concrete, rewritten) disequality is asserted under
/// a fresh activation variable — `activation → differs` is permanent, but it only
/// binds while the activation variable is assumed, so it retracts for free when the
/// next candidate arrives.
struct VerifySession {
    session: BvSession,
    round: usize,
    /// The live activation variable, deactivated (asserted false) next round.
    active: Option<TermId>,
}

/// The CEGIS verification step: check `∀ inputs. spec = candidate` at all required
/// cycles by asking for an input where they differ.
struct VerifyStep {
    session: Option<VerifySession>,
    /// Interrupt flags installed on every solver this step creates.
    interrupts: Vec<Arc<AtomicBool>>,
}

impl VerifyStep {
    fn new() -> VerifyStep {
        VerifyStep { session: None, interrupts: Vec::new() }
    }

    fn verify(
        &mut self,
        task: &SynthesisTask<'_>,
        config: &SynthesisConfig,
        candidate: &Prog,
        stats: &mut SynthesisStats,
    ) -> Verification {
        if config.incremental {
            return self.verify_incremental(task, config, candidate, stats);
        }

        // From-scratch mode: fresh pool, fresh solver. Build the disequality with
        // the holes filled concretely; a correct candidate usually folds it to
        // `false` without ever reaching the SAT solver.
        let mut pool = TermPool::new();
        let differs = build_differs(task, candidate, &mut pool);
        if let Some(value) = pool.as_const(differs) {
            if value.is_zero() {
                return Verification::Equivalent;
            }
        }
        let differs = match prefold_differs(&mut pool, differs, config, stats) {
            Prefold::Equivalent => return Verification::Equivalent,
            Prefold::Undecided(term) => term,
        };
        stats.verification_used_sat = true;
        let mut solver = BvSolver::with_config(config.solver.clone());
        for flag in &self.interrupts {
            solver.add_interrupt(Arc::clone(flag));
        }
        solver.assert_true(&pool, differs);
        let mut sp = lr_trace::span("verify-check");
        let verdict = solver.check(&pool);
        if sp.is_active() {
            sp.attr("conflicts", solver.stats().conflicts);
            sp.attr("sat", u64::from(verdict == SatResult::Sat));
            sp.attr("unknown", u64::from(verdict == SatResult::Unknown));
        }
        drop(sp);
        absorb_sat_delta(stats, lr_smt::SolverStats::default(), solver.stats());
        match verdict {
            SatResult::Unsat => Verification::Equivalent,
            SatResult::Unknown => Verification::GaveUp,
            SatResult::Sat => Verification::Counterexample(extract_cex(task, &solver.model(&pool))),
        }
    }

    fn verify_incremental(
        &mut self,
        task: &SynthesisTask<'_>,
        config: &SynthesisConfig,
        candidate: &Prog,
        stats: &mut SynthesisStats,
    ) -> Verification {
        let verify = self.session.get_or_insert_with(|| {
            let mut session = BvSession::with_config(config.solver.clone());
            for flag in &self.interrupts {
                session.add_interrupt(Arc::clone(flag));
            }
            VerifySession { session, round: 0, active: None }
        });

        // Retire the previous round's activation for good. Without this the phase
        // saver remembers it as true and later searches keep re-deciding it, which
        // re-activates stale candidates' disequalities and poisons the search.
        if let Some(prev) = verify.active.take() {
            let off = verify.session.pool().not(prev);
            verify.session.assert_true(off);
        }

        // The candidate's disequality is built in the *shared* pool: the spec-side
        // terms are identical every iteration (hash-consed and already blasted after
        // round one), and candidate terms reuse whatever structure they share with
        // earlier rounds. Rewriting still applies, so a correct candidate usually
        // folds the disequality to `false` here, before any SAT work.
        let differs = build_differs(task, candidate, verify.session.pool());
        if let Some(value) = verify.session.pool_ref().as_const(differs) {
            if value.is_zero() {
                return Verification::Equivalent;
            }
        }
        let differs = match prefold_differs(verify.session.pool(), differs, config, stats) {
            Prefold::Equivalent => return Verification::Equivalent,
            Prefold::Undecided(term) => term,
        };
        stats.verification_used_sat = true;
        // Term dumps are inherently textual, so they ride the echo sink (on
        // whenever either trace env var is set) rather than span attributes.
        if std::env::var_os("LR_CEGIS_TRACE_TERMS").is_some() {
            let d = verify.session.pool_ref().display(differs);
            lr_trace::echo(&format!(
                "unfolded differs ({} chars): {}",
                d.len(),
                &d[..d.len().min(2000)]
            ));
        }

        // Assumption-guarded: `activation → differs` is asserted permanently, but
        // the disequality only binds while `activation` is assumed — this check and
        // never again. Learnt clauses about the shared circuit structure persist.
        let activation = verify.session.pool().var(&format!("cegis!verify!{}", verify.round), 1);
        verify.round += 1;
        verify.active = Some(activation);
        let guarded = verify.session.pool().implies(activation, differs);
        verify.session.assert_true(guarded);

        let before = verify.session.stats();
        let mut sp = lr_trace::span("verify-check");
        let verdict = verify.session.check_assuming(&[activation]);
        if sp.is_active() {
            sp.attr("round", verify.round as u64);
            sp.attr("conflicts", verify.session.stats().conflicts - before.conflicts);
            sp.attr("sat", u64::from(verdict == SatResult::Sat));
            sp.attr("unknown", u64::from(verdict == SatResult::Unknown));
        }
        drop(sp);
        absorb_sat_delta(stats, before, verify.session.stats());
        match verdict {
            SatResult::Unsat => Verification::Equivalent,
            SatResult::Unknown => Verification::GaveUp,
            SatResult::Sat => {
                Verification::Counterexample(extract_cex(task, &verify.session.model()))
            }
        }
    }
}

enum Prefold {
    /// Saturation folded the disequality to `false`: the candidate is equivalent
    /// and the SAT solver is never invoked.
    Equivalent,
    /// Saturation could not decide the query; the (possibly smaller) extracted
    /// form goes to SAT.
    Undecided(TermId),
}

/// Pre-folds a verification disequality the pool could not decide through bounded
/// equality saturation. The extracted term lives in the same pool, so in
/// incremental mode whatever structure it shares with earlier rounds stays cached.
fn prefold_differs(
    pool: &mut TermPool,
    differs: TermId,
    config: &SynthesisConfig,
    stats: &mut SynthesisStats,
) -> Prefold {
    if !config.egraph {
        return Prefold::Undecided(differs);
    }
    stats.egraph_attempts += 1;
    let mut sp = lr_trace::span("egraph-prefold");
    let (folded, report) = lr_egraph::fold_term(
        pool,
        differs,
        lr_egraph::rules::bv_rules_cached(),
        &lr_egraph::Limits::verifier(),
    );
    if sp.is_active() {
        sp.attr("input_nodes", report.input_nodes as u64);
        sp.attr("output_nodes", report.output_nodes as u64);
        sp.attr("decided", u64::from(report.folded_const));
    }
    drop(sp);
    match pool.as_const(folded) {
        Some(value) if value.is_zero() => {
            stats.egraph_folds += 1;
            Prefold::Equivalent
        }
        _ => Prefold::Undecided(folded),
    }
}

/// Builds `∃ inputs. spec ≠ candidate` over the task's cycles in `pool`.
fn build_differs(task: &SynthesisTask<'_>, candidate: &Prog, pool: &mut TermPool) -> TermId {
    let mut differs = pool.false_();
    for cycle in task.cycles() {
        let spec_term = task.spec.to_term(pool, cycle);
        let cand_term = candidate.to_term(pool, cycle);
        let ne = pool.ne(spec_term, cand_term);
        differs = pool.or(differs, ne);
    }
    differs
}

/// Reads the distinguishing input streams out of a verification model.
fn extract_cex(task: &SynthesisTask<'_>, model: &lr_smt::Model) -> StreamInputs {
    let last_cycle = task.at_cycle + task.extra_cycles;
    let mut cex = StreamInputs::new();
    for (name, width) in task.spec.free_vars() {
        let trace: Vec<BitVec> =
            (0..=last_cycle).map(|t| model.get_or_zero(&input_var_name(&name, t), width)).collect();
        cex.set_trace(name, trace);
    }
    cex
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_ir::{BvOp, HoleDomain, ProgBuilder};

    /// spec: out = a + 5; sketch: out = a + ??
    #[test]
    fn synthesizes_a_constant_offset() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let five = b.constant_u64(5, 8);
        let out = b.op2(BvOp::Add, a, five);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Add, a, k);
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome = synthesize(&task, &SynthesisConfig::default(), None).unwrap();
        let result = outcome.success().expect("synthesis should succeed");
        assert_eq!(result.hole_assignment["k"], BitVec::from_u64(5, 8));
        assert!(!result.implementation.has_holes());
    }

    /// A sketch whose root width differs from the spec's (a 1-bit comparison
    /// sketch posed against a wide spec) must fail validation instead of
    /// panicking inside the term pool when the equivalence query is built.
    #[test]
    fn root_width_mismatch_is_rejected_not_a_panic() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let five = b.constant_u64(5, 8);
        let out = b.op2(BvOp::Add, a, five);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Ult, a, k); // 1-bit root
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        let err = synthesize(&task, &SynthesisConfig::default(), None).unwrap_err();
        assert!(matches!(&err, SynthesisError::IllFormed(msg) if msg.contains("root")), "{err:?}");
    }

    /// spec: out = a & 0xF0; sketch: out = a & ?? — and also check the masked value
    /// equivalence over random inputs.
    #[test]
    fn synthesizes_a_mask_and_result_is_equivalent() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let mask = b.constant_u64(0xF0, 8);
        let out = b.op2(BvOp::And, a, mask);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::And, a, k);
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome = synthesize(&task, &SynthesisConfig::default(), None).unwrap();
        let result = outcome.success().expect("synthesis should succeed");
        for value in [0u64, 1, 0x55, 0xAA, 0xFF, 0x93] {
            let mut env = StreamInputs::new();
            env.set_constant("a", BitVec::from_u64(value, 8));
            assert_eq!(
                spec.interp(&env, 0).unwrap(),
                result.implementation.interp(&env, 0).unwrap(),
                "mismatch at a = {value}"
            );
        }
    }

    /// spec: out = a * 2 at cycle 1 (registered); sketch: out = reg(a << ??).
    #[test]
    fn synthesizes_across_a_register() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let two = b.constant_u64(2, 8);
        let prod = b.op2(BvOp::Mul, a, two);
        let r = b.reg(prod, 8);
        let spec = b.finish(r);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let sh = b.hole("shift", 8, HoleDomain::LessThan(BitVec::from_u64(8, 8)));
        let shifted = b.op2(BvOp::Shl, a, sh);
        let r = b.reg(shifted, 8);
        let sketch = b.finish(r);

        let task = SynthesisTask::over_window(&spec, &sketch, 1, 2);
        let outcome = synthesize(&task, &SynthesisConfig::default(), None).unwrap();
        let result = outcome.success().expect("synthesis should succeed");
        assert_eq!(result.hole_assignment["shift"], BitVec::from_u64(1, 8));
    }

    /// An impossible sketch: out = a | ?? can never implement out = a & 0x0F
    /// (ORing can only set bits, and a=0xFF requires the result 0x0F).
    #[test]
    fn reports_unsat_for_impossible_sketches() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let mask = b.constant_u64(0x0F, 8);
        let out = b.op2(BvOp::And, a, mask);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Or, a, k);
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome = synthesize(&task, &SynthesisConfig::default(), None).unwrap();
        assert!(outcome.is_unsat(), "expected UNSAT, got {outcome:?}");
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let spec = b.finish(a);
        let mut b = ProgBuilder::new("sketch");
        let x = b.input("x", 8);
        let sketch = b.finish(x);
        let task = SynthesisTask::at(&spec, &sketch, 0);
        let err = synthesize(&task, &SynthesisConfig::default(), None).unwrap_err();
        assert!(matches!(err, SynthesisError::InputMismatch { .. }));
    }

    #[test]
    fn rejects_non_behavioral_spec() {
        let mut b = ProgBuilder::new("spec");
        let h = b.hole("h", 8, HoleDomain::AnyConstant);
        let spec = b.finish(h);
        let mut b = ProgBuilder::new("sketch");
        let h = b.hole("h", 8, HoleDomain::AnyConstant);
        let sketch = b.finish(h);
        let task = SynthesisTask::at(&spec, &sketch, 0);
        let err = synthesize(&task, &SynthesisConfig::default(), None).unwrap_err();
        assert_eq!(err, SynthesisError::SpecNotBehavioral);
    }

    #[test]
    fn choice_domains_are_respected() {
        // spec: out = a + 4; hole restricted to {2, 4, 8}.
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let four = b.constant_u64(4, 8);
        let out = b.op2(BvOp::Add, a, four);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole(
            "k",
            8,
            HoleDomain::Choice(vec![
                BitVec::from_u64(2, 8),
                BitVec::from_u64(4, 8),
                BitVec::from_u64(8, 8),
            ]),
        );
        let out = b.op2(BvOp::Add, a, k);
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome = synthesize(&task, &SynthesisConfig::default(), None).unwrap();
        let result = outcome.success().expect("synthesis should succeed");
        assert_eq!(result.hole_assignment["k"], BitVec::from_u64(4, 8));
    }

    #[test]
    fn cancel_flag_stops_the_run() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let spec = b.finish(a);
        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Xor, a, k);
        let sketch = b.finish(out);
        let cancel = Arc::new(AtomicBool::new(true));
        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome = synthesize(&task, &SynthesisConfig::default(), Some(cancel)).unwrap();
        assert!(outcome.is_timeout());
    }

    #[test]
    fn stats_are_populated() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 4);
        let spec = b.finish(a);
        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 4);
        let k = b.hole("k", 4, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Xor, a, k);
        let sketch = b.finish(out);
        let task = SynthesisTask::at(&spec, &sketch, 0);
        let outcome = synthesize(&task, &SynthesisConfig::default(), None).unwrap();
        let result = outcome.success().unwrap();
        assert!(result.stats.iterations >= 1);
        assert!(result.stats.examples >= 1);
        assert_eq!(result.stats.solver_name, "default");
        assert_eq!(result.stats.restart_mode, "ema");
        assert!(result.stats.incremental);
        assert!(result.stats.constraints_encoded >= result.stats.examples);
        assert_eq!(result.stats.constraints_reencoded, 0);
        assert!(result.stats.propagations > 0, "synthesis checks propagate");
        assert!(
            result.stats.glue_histogram.iter().sum::<u64>() <= result.stats.conflicts,
            "each conflict learns at most one stored clause"
        );
        assert_eq!(result.hole_assignment["k"], BitVec::zeros(4));
    }

    /// Both modes must agree, and only the from-scratch mode re-encodes examples.
    #[test]
    fn incremental_and_from_scratch_agree_and_only_one_reencodes() {
        // spec: out = (a ^ 0x3C) + 7 — needs a couple of counterexamples with the
        // two-hole sketch out = (a ^ j) + k.
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let m = b.constant_u64(0x3C, 8);
        let x = b.op2(BvOp::Xor, a, m);
        let seven = b.constant_u64(7, 8);
        let out = b.op2(BvOp::Add, x, seven);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let j = b.hole("j", 8, HoleDomain::AnyConstant);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let x = b.op2(BvOp::Xor, a, j);
        let out = b.op2(BvOp::Add, x, k);
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        let incremental = SynthesisConfig::default();
        let scratch = SynthesisConfig { incremental: false, ..SynthesisConfig::default() };

        let inc = synthesize(&task, &incremental, None).unwrap().success().unwrap();
        let scr = synthesize(&task, &scratch, None).unwrap().success().unwrap();
        assert_eq!(inc.hole_assignment, scr.hole_assignment);
        assert_eq!(inc.stats.constraints_reencoded, 0);
        assert!(inc.stats.incremental);
        assert!(!scr.stats.incremental);
        if scr.stats.iterations > 1 {
            assert!(
                scr.stats.constraints_reencoded > 0,
                "from-scratch mode re-encodes prior examples on every iteration"
            );
        }
    }

    /// A correct candidate whose verification disequality one-shot pool rewriting
    /// cannot decide (re-association across non-constant operands) must be decided
    /// by e-graph saturation, never reaching the SAT solver; with the e-graph off,
    /// the same query must fall through to SAT and still verify.
    #[test]
    fn egraph_prefold_decides_reassociation_without_sat() {
        // spec: (a + b) + c; sketch: a + (b + (c + k)) — correct with k = 0, but
        // the two association shapes are different pool nodes.
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let c = b.input("c", 8);
        let ab = b.op2(BvOp::Add, a, bb);
        let out = b.op2(BvOp::Add, ab, c);
        let spec = b.finish(out);

        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let bb = b.input("b", 8);
        let c = b.input("c", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let ck = b.op2(BvOp::Add, c, k);
        let bck = b.op2(BvOp::Add, bb, ck);
        let out = b.op2(BvOp::Add, a, bck);
        let sketch = b.finish(out);

        let task = SynthesisTask::at(&spec, &sketch, 0);
        for incremental in [true, false] {
            let config = SynthesisConfig { incremental, ..SynthesisConfig::default() };
            let result = synthesize(&task, &config, None).unwrap().success().unwrap();
            assert_eq!(result.hole_assignment["k"], BitVec::zeros(8));
            assert!(
                !result.stats.verification_used_sat,
                "saturation must decide the reassociated disequality (incremental={incremental})"
            );
            assert!(result.stats.egraph_attempts >= 1);
            assert!(result.stats.egraph_folds >= 1);
        }

        // Ablation: with the e-graph off the query must reach SAT (and agree).
        let config = SynthesisConfig { egraph: false, ..SynthesisConfig::default() };
        let result = synthesize(&task, &config, None).unwrap().success().unwrap();
        assert_eq!(result.hole_assignment["k"], BitVec::zeros(8));
        assert!(result.stats.verification_used_sat);
        assert_eq!(result.stats.egraph_attempts, 0);
        assert_eq!(result.stats.egraph_folds, 0);
    }

    /// Regression test for the former silent `continue` on interp failure: an
    /// example that does not bind every input must surface as an error, because
    /// skipping it would leave the query under-constrained and CEGIS would receive
    /// the same counterexample forever.
    #[test]
    fn malformed_example_is_an_error_not_a_skip() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let spec = b.finish(a);
        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Xor, a, k);
        let sketch = b.finish(out);
        let task = SynthesisTask::at(&spec, &sketch, 0);

        let holes = task.sketch.holes();
        let unbound = StreamInputs::new(); // binds nothing, so `a` cannot be evaluated
        for config in [
            SynthesisConfig::default(),
            SynthesisConfig { incremental: false, ..Default::default() },
        ] {
            let mut stats = SynthesisStats::default();
            let mut synth = SynthStep::new();
            let err = synth
                .solve(&task, &config, &holes, std::slice::from_ref(&unbound), &mut stats)
                .unwrap_err();
            assert!(
                matches!(err, SynthesisError::MalformedExample { example: 0, cycle: 0, .. }),
                "got {err:?}"
            );
        }
    }
}
