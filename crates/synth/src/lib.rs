//! # lr-synth: sketch-guided program synthesis for ℒlr
//!
//! This crate implements the functions 𝑓lr and 𝑓*lr of the paper's §3: given a
//! behavioral design `d`, a sketch Ψ (an ℒlr program with holes), a clock cycle `t`,
//! and a bounded-model-checking window `c`, find hole values such that the completed
//! sketch is equivalent to `d` at cycles `t..=t+c` — or report that no completion
//! exists (UNSAT), or give up (timeout).
//!
//! Where the original Lakeroad phrases the query as a single ∃∀ formula handed to
//! Rosette, this reproduction solves the same query by **CEGIS**
//! (counterexample-guided inductive synthesis):
//!
//! 1. *Synthesize*: find hole values consistent with a finite set of input examples
//!    (a satisfiability query with the inputs concrete and the holes symbolic).
//! 2. *Verify*: check that the completed sketch equals the design for **all** inputs
//!    (a satisfiability query of the negated equivalence with the inputs symbolic);
//!    a counterexample, if any, is added to the example set and the loop repeats.
//!
//! Both queries are QF_BV and are discharged by `lr-smt`/`lr-sat`. Because the term
//! pool rewrites aggressively, a correct candidate usually makes the verification
//! query collapse to `false` before it ever reaches the SAT solver — this mirrors the
//! role of symbolic evaluation in Rosette.
//!
//! By default both queries are solved **incrementally**: solver state (term pool,
//! bit-blast cache, learnt clauses) persists across CEGIS iterations, with
//! per-candidate constraints guarded by SAT assumptions so they retract for free.
//! See [`cegis`] for the exact split between permanent and assumption-guarded
//! constraints; [`SynthesisConfig::incremental`] switches back to the from-scratch
//! behaviour for comparison.
//!
//! [`portfolio::synthesize_portfolio`] races several solver configurations in
//! parallel (the stand-in for the paper's Bitwuzla/STP/Yices2/cvc5 portfolio), and
//! [`enumerate`] provides a brute-force baseline used by the ablation benchmarks.

pub mod cegis;
pub mod enumerate;
pub mod portfolio;

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use lr_bv::BitVec;
use lr_ir::Prog;
pub use lr_smt::SolverConfig;

/// A synthesis problem: implement `spec` using `sketch` at the given cycles.
#[derive(Debug, Clone)]
pub struct SynthesisTask<'a> {
    /// The behavioral design `d` (must be in ℒbeh).
    pub spec: &'a Prog,
    /// The sketch Ψ (an ℒsketch program whose holes carry their domains).
    pub sketch: &'a Prog,
    /// The clock cycle `t` at which equivalence is required (0 = combinational).
    pub at_cycle: u32,
    /// Additional cycles `c`: equivalence is checked at `t, t+1, …, t+c` (§3.5).
    pub extra_cycles: u32,
}

impl<'a> SynthesisTask<'a> {
    /// Creates a task checking equivalence at exactly cycle `t` (i.e. 𝑓lr).
    pub fn at(spec: &'a Prog, sketch: &'a Prog, t: u32) -> Self {
        SynthesisTask { spec, sketch, at_cycle: t, extra_cycles: 0 }
    }

    /// Creates a task checking equivalence over `t..=t+c` (i.e. 𝑓*lr).
    pub fn over_window(spec: &'a Prog, sketch: &'a Prog, t: u32, c: u32) -> Self {
        SynthesisTask { spec, sketch, at_cycle: t, extra_cycles: c }
    }

    /// The cycles at which equivalence is asserted.
    pub fn cycles(&self) -> impl Iterator<Item = u32> {
        self.at_cycle..=self.at_cycle + self.extra_cycles
    }
}

/// Knobs controlling a single synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisConfig {
    /// The SAT heuristics to use for both CEGIS queries.
    pub solver: SolverConfig,
    /// Maximum number of CEGIS iterations before giving up.
    pub max_iterations: usize,
    /// Wall-clock budget; `None` means unlimited.
    pub timeout: Option<Duration>,
    /// Number of seeded input examples to start CEGIS with (beyond all-zeros).
    pub seed_examples: usize,
    /// Seed for generating the initial examples.
    pub seed: u64,
    /// Reuse solver state across CEGIS iterations (see [`cegis`]). When false, every
    /// iteration rebuilds both solvers from scratch and re-encodes every accumulated
    /// example — the original behaviour, kept for comparison and as a differential
    /// oracle.
    pub incremental: bool,
    /// Pre-fold verification disequalities through equality saturation
    /// (`lr_egraph`) when one-shot pool rewriting cannot decide them, before any
    /// SAT work (default on). Turning this off restores the rewriting-or-SAT-only
    /// verifier, kept measurable for the `exp_egraph` ablation.
    pub egraph: bool,
    /// External cancellation flag. When it becomes true the run stops with a
    /// timeout verdict — not just between CEGIS iterations: the flag is also
    /// registered as a SAT-solver interrupt, so a check already in flight
    /// returns promptly. Used by the batch scheduler and the serving daemon to
    /// stop in-flight work on shutdown.
    pub cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            solver: SolverConfig::default(),
            max_iterations: 64,
            timeout: Some(Duration::from_secs(120)),
            seed_examples: 3,
            seed: 0xd5b_0001,
            incremental: true,
            egraph: true,
            cancel: None,
        }
    }
}

/// Counters describing a synthesis run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SynthesisStats {
    /// Number of CEGIS iterations performed.
    pub iterations: usize,
    /// Number of counterexamples accumulated (including seed examples).
    pub examples: usize,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Name of the solver configuration that produced the verdict (for portfolio
    /// runs, the winner).
    pub solver_name: String,
    /// True if verification ever reached the SAT solver (false means every candidate
    /// was decided by term rewriting alone).
    pub verification_used_sat: bool,
    /// Whether the run used incremental solver state (config echo).
    pub incremental: bool,
    /// SAT conflicts across every solver check of the run (synthesis and
    /// verification steps combined).
    pub conflicts: u64,
    /// SAT unit propagations across every solver check of the run.
    pub propagations: u64,
    /// SAT restarts across every solver check of the run.
    pub restarts: u64,
    /// Literals removed from learnt clauses by recursive minimization, across
    /// every solver check of the run.
    pub minimized_literals: u64,
    /// Total literals across learnt clauses as stored (post-minimization).
    pub learnt_literals: u64,
    /// Glue (LBD) histogram over every clause the run's solvers learned: bucket
    /// `i` counts clauses with LBD `i + 1`, the last bucket collects the rest
    /// (see [`GLUE_BUCKETS`](lr_smt::GLUE_BUCKETS)).
    pub glue_histogram: [u64; lr_smt::GLUE_BUCKETS],
    /// Learnt-clause tier sizes (core / mid / local) observed at the run's most
    /// recent solver check — the verification solver for runs whose last step
    /// verified, the synthesis solver otherwise. A snapshot, not a counter.
    pub sat_tier_sizes: [u64; 3],
    /// Restart strategy the run's solvers used (config echo, e.g. `"ema"`).
    pub restart_mode: String,
    /// Example-equality constraints encoded into the synthesis solver, totalled over
    /// all iterations.
    pub constraints_encoded: usize,
    /// Constraints that were encoded *again* for an example already encoded in an
    /// earlier iteration. Always 0 in incremental mode; the from-scratch mode's
    /// O(n²) re-encoding overhead is exactly this counter.
    pub constraints_reencoded: usize,
    /// Learnt clauses already present when a synthesis check began, summed over
    /// iterations — clause reuse across iterations. Always 0 in from-scratch mode.
    pub learnt_clauses_reused: u64,
    /// Verification disequalities handed to the e-graph (pool rewriting alone could
    /// not decide them). Always 0 with [`SynthesisConfig::egraph`] off.
    pub egraph_attempts: usize,
    /// Of those, how many saturation folded to a constant `false` — queries decided
    /// with no SAT work at all.
    pub egraph_folds: usize,
    /// True when this outcome was *replayed* from a synthesis cache rather than
    /// synthesized: `elapsed` is then the lookup-plus-replay time (near zero) and
    /// every solver counter is zero. The CEGIS engine itself never sets this —
    /// the serving layer (`lakeroad`'s cache hooks) does, so reports and benches
    /// can separate cached from synthesized latencies.
    pub from_cache: bool,
}

impl SynthesisStats {
    /// Folds another run's additive counters into this one. Used when several
    /// runs make up one logical job (the auto-template loop's attempts, a
    /// daemon job's retries), so partial work is accounted even when the final
    /// verdict is UNSAT or a timeout. Config echoes (`solver_name`,
    /// `restart_mode`, `incremental`) and snapshots (`sat_tier_sizes`) take the
    /// other run's values — last writer wins, matching "most recent attempt".
    pub fn absorb(&mut self, other: &SynthesisStats) {
        self.iterations += other.iterations;
        self.examples += other.examples;
        self.elapsed += other.elapsed;
        self.conflicts += other.conflicts;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.minimized_literals += other.minimized_literals;
        self.learnt_literals += other.learnt_literals;
        for (acc, g) in self.glue_histogram.iter_mut().zip(other.glue_histogram.iter()) {
            *acc += g;
        }
        self.constraints_encoded += other.constraints_encoded;
        self.constraints_reencoded += other.constraints_reencoded;
        self.learnt_clauses_reused += other.learnt_clauses_reused;
        self.egraph_attempts += other.egraph_attempts;
        self.egraph_folds += other.egraph_folds;
        self.verification_used_sat |= other.verification_used_sat;
        if !other.solver_name.is_empty() {
            self.solver_name.clone_from(&other.solver_name);
        }
        if !other.restart_mode.is_empty() {
            self.restart_mode.clone_from(&other.restart_mode);
        }
        self.incremental = other.incremental;
        self.sat_tier_sizes = other.sat_tier_sizes;
        self.from_cache &= other.from_cache;
    }
}

/// The verdict of a synthesis run.
#[derive(Debug, Clone)]
pub enum SynthesisOutcome {
    /// A completion of the sketch implementing the design was found.
    Success(Box<Synthesized>),
    /// No completion of the sketch can implement the design (UNSAT).
    Unsat {
        /// Statistics for the run.
        stats: SynthesisStats,
    },
    /// The iteration/timeout budget was exhausted.
    Timeout {
        /// Statistics for the run.
        stats: SynthesisStats,
    },
}

/// A successful synthesis result.
#[derive(Debug, Clone)]
pub struct Synthesized {
    /// The completed, hole-free implementation (ℒstruct if the sketch was ℒsketch).
    pub implementation: Prog,
    /// The values assigned to each hole.
    pub hole_assignment: BTreeMap<String, BitVec>,
    /// Statistics for the run.
    pub stats: SynthesisStats,
}

impl SynthesisOutcome {
    /// The run statistics regardless of verdict.
    pub fn stats(&self) -> &SynthesisStats {
        match self {
            SynthesisOutcome::Success(s) => &s.stats,
            SynthesisOutcome::Unsat { stats } | SynthesisOutcome::Timeout { stats } => stats,
        }
    }

    /// Whether synthesis succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, SynthesisOutcome::Success(_))
    }

    /// Whether synthesis proved no completion exists.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SynthesisOutcome::Unsat { .. })
    }

    /// Whether synthesis gave up.
    pub fn is_timeout(&self) -> bool {
        matches!(self, SynthesisOutcome::Timeout { .. })
    }

    /// The successful result, if any.
    pub fn success(self) -> Option<Synthesized> {
        match self {
            SynthesisOutcome::Success(s) => Some(*s),
            _ => None,
        }
    }
}

/// An error that prevents synthesis from even starting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthesisError {
    /// The specification is not in the behavioral fragment ℒbeh.
    SpecNotBehavioral,
    /// Specification and sketch do not agree on their free inputs (the equivalence
    /// definition of §3.3 requires `p.fv = d.fv`).
    InputMismatch {
        /// Inputs of the specification.
        spec: Vec<String>,
        /// Inputs of the sketch.
        sketch: Vec<String>,
    },
    /// The specification or sketch is not well-formed.
    IllFormed(String),
    /// An accumulated input example could not be evaluated against the spec (it does
    /// not bind every input, or binds one at the wrong width). This is an internal
    /// invariant violation: silently skipping such an example would leave the
    /// synthesis query under-constrained and make CEGIS loop forever on the same
    /// counterexample, so it is surfaced as an error instead.
    MalformedExample {
        /// Index of the offending example in the accumulated example set.
        example: usize,
        /// The clock cycle at which evaluation failed.
        cycle: u32,
        /// The interpreter error.
        reason: String,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::SpecNotBehavioral => {
                write!(f, "specification must be in the behavioral fragment of L_lr")
            }
            SynthesisError::InputMismatch { spec, sketch } => {
                write!(f, "spec inputs {spec:?} differ from sketch inputs {sketch:?}")
            }
            SynthesisError::IllFormed(msg) => write!(f, "ill-formed program: {msg}"),
            SynthesisError::MalformedExample { example, cycle, reason } => write!(
                f,
                "example {example} cannot be evaluated against the spec at cycle {cycle}: {reason}"
            ),
        }
    }
}

impl std::error::Error for SynthesisError {}

/// Synthesizes a completion of the sketch equivalent to the spec (single solver
/// configuration). See [`cegis::synthesize`].
///
/// # Errors
/// Returns [`SynthesisError`] if the task is malformed (non-behavioral spec,
/// mismatched inputs, ill-formed programs).
pub fn synthesize(
    task: &SynthesisTask<'_>,
    config: &SynthesisConfig,
) -> Result<SynthesisOutcome, SynthesisError> {
    cegis::synthesize(task, config, None)
}
