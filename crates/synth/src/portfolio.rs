//! Parallel solver portfolio.
//!
//! The paper (§4.5) runs Bitwuzla, cvc5, Yices2, and STP in parallel and takes the
//! first answer; §5.1 reports how often each solver won. This module reproduces that
//! behaviour with four differently-configured instances of the in-tree CDCL solver:
//! each portfolio member runs the full CEGIS loop under its own heuristics on its own
//! thread, and the first definite verdict (success or UNSAT) cancels the rest.
//!
//! Each member inherits [`SynthesisConfig::incremental`] unchanged, so a portfolio
//! run races four *incremental* CEGIS loops by default — every member keeps its own
//! persistent solver state across its iterations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::cegis;
use crate::{SolverConfig, SynthesisConfig, SynthesisError, SynthesisOutcome, SynthesisTask};

/// The outcome of a portfolio run, including which member produced it.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// The verdict (from the winning member, or a timeout if nobody finished).
    pub outcome: SynthesisOutcome,
    /// Name of the winning solver configuration, if any member produced a definite
    /// verdict.
    pub winner: Option<String>,
    /// Names of all members that were raced.
    pub members: Vec<String>,
}

/// Races the default four-member portfolio. See [`synthesize_portfolio_with`].
///
/// # Errors
/// Returns [`SynthesisError`] if the task is malformed.
pub fn synthesize_portfolio(
    task: &SynthesisTask<'_>,
    config: &SynthesisConfig,
) -> Result<PortfolioOutcome, SynthesisError> {
    synthesize_portfolio_with(task, config, &SolverConfig::portfolio())
}

/// Races one CEGIS run per solver configuration and returns the first definite
/// verdict (success or UNSAT). If every member times out, the result is a timeout.
///
/// # Errors
/// Returns [`SynthesisError`] if the task is malformed (the validation error from the
/// first member is reported).
pub fn synthesize_portfolio_with(
    task: &SynthesisTask<'_>,
    config: &SynthesisConfig,
    solvers: &[SolverConfig],
) -> Result<PortfolioOutcome, SynthesisError> {
    assert!(!solvers.is_empty(), "portfolio must contain at least one solver");
    let members: Vec<String> = solvers.iter().map(|s| s.name.clone()).collect();
    // `cancel` is an Arc because cegis::synthesize takes ownership of its handle;
    // the result cells are plain locals borrowed by the scoped threads.
    let cancel = Arc::new(AtomicBool::new(false));
    let winner: Mutex<Option<(String, SynthesisOutcome)>> = Mutex::new(None);
    let error: Mutex<Option<SynthesisError>> = Mutex::new(None);
    let timeouts: Mutex<Vec<SynthesisOutcome>> = Mutex::new(Vec::new());

    // Spawned members inherit the submitting thread's trace context, so a
    // job's spans stay attributed to it across the portfolio's threads.
    let trace_ctx = lr_trace::context();
    std::thread::scope(|scope| {
        for (member, solver) in solvers.iter().enumerate() {
            let mut member_config = config.clone();
            member_config.solver = solver.clone();
            let cancel = Arc::clone(&cancel);
            let (winner, error, timeouts) = (&winner, &error, &timeouts);
            scope.spawn(move || {
                lr_trace::set_context(trace_ctx);
                let mut sp = lr_trace::span("portfolio-member");
                sp.attr("member", member as u64);
                let result = cegis::synthesize(task, &member_config, Some(Arc::clone(&cancel)));
                drop(sp);
                match result {
                    Err(e) => {
                        let mut guard = error.lock().unwrap();
                        if guard.is_none() {
                            *guard = Some(e);
                        }
                        cancel.store(true, Ordering::Relaxed);
                    }
                    Ok(outcome) => {
                        if outcome.is_timeout() {
                            timeouts.lock().unwrap().push(outcome);
                        } else {
                            let mut guard = winner.lock().unwrap();
                            if guard.is_none() {
                                *guard = Some((member_config.solver.name.clone(), outcome));
                                cancel.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
    });

    let decided = winner.into_inner().unwrap();
    if let Some(err) = error.into_inner().unwrap() {
        // A validation error is deterministic across members; surface it.
        if decided.is_none() {
            return Err(err);
        }
    }

    match decided {
        Some((name, outcome)) => Ok(PortfolioOutcome { outcome, winner: Some(name), members }),
        None => {
            let outcome =
                timeouts.into_inner().unwrap().into_iter().next().unwrap_or(
                    SynthesisOutcome::Timeout { stats: crate::SynthesisStats::default() },
                );
            Ok(PortfolioOutcome { outcome, winner: None, members })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_bv::BitVec;
    use lr_ir::{BvOp, HoleDomain, ProgBuilder};

    fn offset_task() -> (lr_ir::Prog, lr_ir::Prog) {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let five = b.constant_u64(5, 8);
        let out = b.op2(BvOp::Add, a, five);
        let spec = b.finish(out);
        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Add, a, k);
        let sketch = b.finish(out);
        (spec, sketch)
    }

    #[test]
    fn portfolio_finds_the_same_answer() {
        let (spec, sketch) = offset_task();
        let task = SynthesisTask::at(&spec, &sketch, 0);
        let result = synthesize_portfolio(&task, &SynthesisConfig::default()).unwrap();
        assert_eq!(result.members.len(), 4);
        assert!(result.winner.is_some());
        let synthesized = result.outcome.success().expect("success");
        assert_eq!(synthesized.hole_assignment["k"], BitVec::from_u64(5, 8));
    }

    #[test]
    fn portfolio_reports_unsat() {
        // spec out = a & 0x0F cannot be implemented by OR-with-constant.
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let mask = b.constant_u64(0x0F, 8);
        let out = b.op2(BvOp::And, a, mask);
        let spec = b.finish(out);
        let mut b = ProgBuilder::new("sketch");
        let a = b.input("a", 8);
        let k = b.hole("k", 8, HoleDomain::AnyConstant);
        let out = b.op2(BvOp::Or, a, k);
        let sketch = b.finish(out);
        let task = SynthesisTask::at(&spec, &sketch, 0);
        let result = synthesize_portfolio(&task, &SynthesisConfig::default()).unwrap();
        assert!(result.outcome.is_unsat());
        assert!(result.winner.is_some());
    }

    #[test]
    fn portfolio_surfaces_validation_errors() {
        let mut b = ProgBuilder::new("spec");
        let a = b.input("a", 8);
        let spec = b.finish(a);
        let mut b = ProgBuilder::new("sketch");
        let x = b.input("x", 8);
        let sketch = b.finish(x);
        let task = SynthesisTask::at(&spec, &sketch, 0);
        let err = synthesize_portfolio(&task, &SynthesisConfig::default()).unwrap_err();
        assert!(matches!(err, SynthesisError::InputMismatch { .. }));
    }

    #[test]
    fn portfolio_members_inherit_the_incremental_flag() {
        let (spec, sketch) = offset_task();
        let task = SynthesisTask::at(&spec, &sketch, 0);
        for incremental in [true, false] {
            let config = SynthesisConfig { incremental, ..SynthesisConfig::default() };
            let result = synthesize_portfolio(&task, &config).unwrap();
            let synthesized = result.outcome.success().expect("success");
            assert_eq!(synthesized.stats.incremental, incremental);
            assert_eq!(synthesized.hole_assignment["k"], BitVec::from_u64(5, 8));
        }
    }

    #[test]
    fn single_member_portfolio_works() {
        let (spec, sketch) = offset_task();
        let task = SynthesisTask::at(&spec, &sketch, 0);
        let solvers = vec![SolverConfig::default()];
        let result =
            synthesize_portfolio_with(&task, &SynthesisConfig::default(), &solvers).unwrap();
        assert_eq!(result.members, vec!["default".to_string()]);
        assert!(result.outcome.is_success());
    }
}
