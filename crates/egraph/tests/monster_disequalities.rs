//! The PR-2 "monster" verification disequalities — the DSP negate-path, the
//! mirrored-subtraction form, and the carry-chain/truncation form that used to cost
//! the CEGIS verifier minutes of SAT time — must fold to `false` **by saturation
//! alone**. Every term here is built in a `TermPool::without_simplification()`, so
//! the pool's one-shot constructor rewriting contributes nothing: if the
//! disequality comes back constant-false, the e-graph did all the work, and the
//! CEGIS verifier (which checks `as_const` before ever constructing a solver)
//! never invokes SAT. No `BvSolver` is constructed anywhere in this file.

use lr_bv::BitVec;
use lr_egraph::rules::bv_rules;
use lr_egraph::{fold_term, Limits};
use lr_smt::{TermId, TermPool};

/// Folds `spec ≠ cand` and asserts saturation alone decides it false.
fn assert_folds_false(pool: &mut TermPool, spec: TermId, cand: TermId, what: &str) {
    assert!(
        !pool.simplification_enabled(),
        "the point of this harness is that one-shot rewriting is off"
    );
    let ne = pool.ne(spec, cand);
    assert!(
        pool.as_const(ne).is_none(),
        "{what}: the unsimplified pool must not decide the disequality"
    );
    let (folded, report) = fold_term(pool, ne, &bv_rules(), &Limits::verifier());
    assert_eq!(
        pool.as_const(folded),
        Some(&BitVec::from_bool(false)),
        "{what}: saturation must fold the disequality to false"
    );
    assert!(report.folded_const, "{what}: the fold report must record the decision");
}

/// DSP negate-path: `0 − ((a · (0 − b)) + 0xff + 0x01)  ≡  a · b`.
#[test]
fn dsp_negate_path_folds_false() {
    let mut pool = TermPool::without_simplification();
    let a = pool.var("a", 8);
    let b = pool.var("b", 8);
    let spec = pool.mul(a, b);
    let zero = pool.zero(8);
    let nb = pool.sub(zero, b);
    let prod = pool.mul(a, nb);
    let ff = pool.constant(BitVec::from_u64(0xff, 8));
    let one = pool.constant(BitVec::from_u64(1, 8));
    let t = pool.add(prod, ff);
    let t = pool.add(t, one);
    let cand = pool.sub(zero, t);
    assert_folds_false(&mut pool, spec, cand, "dsp-negate-path");
}

/// Mirrored subtraction through a swapped DSP port binding:
/// `d − (c · (b − a))  ≡  (a − b) · c + d`.
#[test]
fn mirrored_subtraction_folds_false() {
    let mut pool = TermPool::without_simplification();
    let a = pool.var("a", 8);
    let b = pool.var("b", 8);
    let c = pool.var("c", 8);
    let d = pool.var("d", 8);
    let amb = pool.sub(a, b);
    let prod = pool.mul(amb, c);
    let spec = pool.add(prod, d);
    let bma = pool.sub(b, a);
    let mirrored = pool.mul(c, bma);
    let cand = pool.sub(d, mirrored);
    assert_folds_false(&mut pool, spec, cand, "mirrored-subtraction");
}

/// The carry-chain / wide-compute form: a DSP computing `a · b` at 48 bits with the
/// subtract-via-carry constant chain, truncated back to the design width, against
/// the behavioral spec computing at 8 bits:
/// `extract[7:0]( (zext48(a) · zext48(b) + 0xFFFF…FF) + 1 )  ≡  a · b`.
#[test]
fn carry_chain_truncation_folds_false() {
    let mut pool = TermPool::without_simplification();
    let a = pool.var("a", 8);
    let b = pool.var("b", 8);
    let spec = pool.mul(a, b);
    let wa = pool.zext(a, 48);
    let wb = pool.zext(b, 48);
    let wide_prod = pool.mul(wa, wb);
    let all_ones = pool.all_ones(48);
    let one = pool.constant(BitVec::from_u64(1, 48));
    let t = pool.add(wide_prod, all_ones);
    let t = pool.add(t, one);
    let cand = pool.extract(t, 7, 0);
    assert_folds_false(&mut pool, spec, cand, "carry-chain-truncation");
}
