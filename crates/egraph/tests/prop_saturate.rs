//! Differential properties of equality saturation: saturating + extracting any
//! term must agree with the term's own semantics *and* with `TermPool`'s one-shot
//! constructor rewriting, over randomly generated programs and inputs.

use proptest::prelude::*;

use lr_bv::BitVec;
use lr_egraph::rules::bv_rules;
use lr_egraph::{fold_term, Limits};
use lr_smt::{Env, TermId, TermPool};

/// A pool-independent recipe for a random 8-bit expression over three variables,
/// so the same term can be realized in differently-configured pools.
#[derive(Debug, Clone)]
enum Ast {
    Var(u8),
    Const(u64),
    Not(Box<Ast>),
    Neg(Box<Ast>),
    /// extract[3:0] followed by zext back to 8 — exercises the parameterized ops.
    NarrowWiden(Box<Ast>),
    Add(Box<Ast>, Box<Ast>),
    Sub(Box<Ast>, Box<Ast>),
    Mul(Box<Ast>, Box<Ast>),
    And(Box<Ast>, Box<Ast>),
    Or(Box<Ast>, Box<Ast>),
    Xor(Box<Ast>, Box<Ast>),
    Shl(Box<Ast>, Box<Ast>),
    /// `ite(a <u b, a, b)` over sub-expressions — exercises predicates and ite.
    Min(Box<Ast>, Box<Ast>),
}

const VARS: [&str; 3] = ["a", "b", "c"];

fn realize(pool: &mut TermPool, ast: &Ast) -> TermId {
    match ast {
        Ast::Var(i) => pool.var(VARS[*i as usize % VARS.len()], 8),
        Ast::Const(v) => pool.constant(BitVec::from_u64(*v, 8)),
        Ast::Not(a) => {
            let a = realize(pool, a);
            pool.not(a)
        }
        Ast::Neg(a) => {
            let a = realize(pool, a);
            pool.neg(a)
        }
        Ast::NarrowWiden(a) => {
            let a = realize(pool, a);
            let low = pool.extract(a, 3, 0);
            pool.zext(low, 8)
        }
        Ast::Add(a, b) => bin(pool, a, b, TermPool::add),
        Ast::Sub(a, b) => bin(pool, a, b, TermPool::sub),
        Ast::Mul(a, b) => bin(pool, a, b, TermPool::mul),
        Ast::And(a, b) => bin(pool, a, b, TermPool::and),
        Ast::Or(a, b) => bin(pool, a, b, TermPool::or),
        Ast::Xor(a, b) => bin(pool, a, b, TermPool::xor),
        Ast::Shl(a, b) => bin(pool, a, b, TermPool::shl),
        Ast::Min(a, b) => {
            let a = realize(pool, a);
            let b = realize(pool, b);
            let lt = pool.ult(a, b);
            pool.ite(lt, a, b)
        }
    }
}

fn bin(
    pool: &mut TermPool,
    a: &Ast,
    b: &Ast,
    f: impl Fn(&mut TermPool, TermId, TermId) -> TermId,
) -> TermId {
    let a = realize(pool, a);
    let b = realize(pool, b);
    f(pool, a, b)
}

fn ast_strategy() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![(0u8..3).prop_map(Ast::Var), (0u64..=0xff).prop_map(Ast::Const),];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Ast::Not(Box::new(a))),
            inner.clone().prop_map(|a| Ast::Neg(Box::new(a))),
            inner.clone().prop_map(|a| Ast::NarrowWiden(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ast::Shl(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Ast::Min(Box::new(a), Box::new(b))),
        ]
    })
}

/// Tight limits keep the whole suite fast: soundness (what these tests check)
/// holds at any budget, because a limited run simply discovers fewer equalities.
fn test_limits() -> Limits {
    Limits { max_iterations: 10, max_nodes: 4_000 }
}

fn env(a: u64, b: u64, c: u64) -> Env {
    [
        ("a".to_string(), BitVec::from_u64(a, 8)),
        ("b".to_string(), BitVec::from_u64(b, 8)),
        ("c".to_string(), BitVec::from_u64(c, 8)),
    ]
    .into_iter()
    .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Saturating + extracting a term preserves its value, and agrees with what
    /// the simplifying pool computes for the same expression — over random
    /// expressions and random inputs.
    #[test]
    fn saturation_agrees_with_one_shot_rewriting(
        ast in ast_strategy(),
        inputs in proptest::collection::vec((0u64..=0xff, 0u64..=0xff, 0u64..=0xff), 4),
    ) {
        // Realize in a non-simplifying pool: the e-graph gets the raw term.
        let mut plain = TermPool::without_simplification();
        let raw = realize(&mut plain, &ast);
        let (folded, report) = fold_term(&mut plain, raw, &bv_rules(), &test_limits());

        // Realize the same recipe in a simplifying pool: one-shot rewriting.
        let mut simp = TermPool::new();
        let one_shot = realize(&mut simp, &ast);

        for (a, b, c) in inputs {
            let e = env(a, b, c);
            let reference = plain.eval(raw, &e).unwrap();
            prop_assert_eq!(
                &plain.eval(folded, &e).unwrap(), &reference,
                "saturated term changed semantics for inputs ({}, {}, {})", a, b, c
            );
            prop_assert_eq!(
                &simp.eval(one_shot, &e).unwrap(), &reference,
                "one-shot rewriting disagrees for inputs ({}, {}, {})", a, b, c
            );
        }
        // Extraction never grows the term beyond its input.
        prop_assert!(report.output_nodes <= report.input_nodes.max(1));
    }

    /// If the pool's one-shot rewriting proves a term constant, saturation must
    /// reach (at least) the same constant.
    #[test]
    fn saturation_subsumes_pool_constant_folding(ast in ast_strategy()) {
        let mut simp = TermPool::new();
        let one_shot = realize(&mut simp, &ast);
        if let Some(expected) = simp.as_const(one_shot).cloned() {
            let mut plain = TermPool::without_simplification();
            let raw = realize(&mut plain, &ast);
            let (folded, _) = fold_term(&mut plain, raw, &bv_rules(), &test_limits());
            prop_assert_eq!(plain.as_const(folded), Some(&expected));
        }
    }
}
