//! Unit tests for the algebraic-gap rules — `x − x → 0`, `x ^ x → 0`, `x & x → x`,
//! and shift-by-zero — on the e-graph side. The matching pool-side tests live in
//! `crates/smt/src/pool.rs` (`gap_rules_fold_in_the_pool`): every rule must hold in
//! *both* rewriting engines so neither path regresses the other.

use lr_bv::BitVec;
use lr_egraph::rules::bv_rules;
use lr_egraph::{saturate, EClassId, EGraph, ENode, Limits};
use lr_smt::BvOp;

fn sym(eg: &mut EGraph, name: &str, w: u32) -> EClassId {
    eg.add(ENode::Symbol { name: name.to_string(), width: w })
}

fn op2(eg: &mut EGraph, op: BvOp, a: EClassId, b: EClassId) -> EClassId {
    eg.add(ENode::Op { op, args: vec![a, b] })
}

#[test]
fn sub_self_is_zero() {
    let mut eg = EGraph::new();
    let x = sym(&mut eg, "x", 8);
    let diff = op2(&mut eg, BvOp::Sub, x, x);
    let zero = eg.add(ENode::Const(BitVec::zeros(8)));
    saturate(&mut eg, &bv_rules(), &Limits::default());
    assert!(eg.equiv(diff, zero));
    assert_eq!(eg.constant(diff), Some(&BitVec::zeros(8)));
}

#[test]
fn xor_self_is_zero() {
    let mut eg = EGraph::new();
    let x = sym(&mut eg, "x", 8);
    let xored = op2(&mut eg, BvOp::Xor, x, x);
    let zero = eg.add(ENode::Const(BitVec::zeros(8)));
    saturate(&mut eg, &bv_rules(), &Limits::default());
    assert!(eg.equiv(xored, zero));
}

#[test]
fn and_self_is_identity() {
    let mut eg = EGraph::new();
    let x = sym(&mut eg, "x", 8);
    let anded = op2(&mut eg, BvOp::And, x, x);
    saturate(&mut eg, &bv_rules(), &Limits::default());
    assert!(eg.equiv(anded, x));
}

#[test]
fn or_self_is_identity() {
    let mut eg = EGraph::new();
    let x = sym(&mut eg, "x", 8);
    let ored = op2(&mut eg, BvOp::Or, x, x);
    saturate(&mut eg, &bv_rules(), &Limits::default());
    assert!(eg.equiv(ored, x));
}

#[test]
fn shifts_by_zero_are_identity() {
    for op in [BvOp::Shl, BvOp::Lshr, BvOp::Ashr] {
        let mut eg = EGraph::new();
        let x = sym(&mut eg, "x", 8);
        let zero = eg.add(ENode::Const(BitVec::zeros(8)));
        let shifted = op2(&mut eg, op, x, zero);
        saturate(&mut eg, &bv_rules(), &Limits::default());
        assert!(eg.equiv(shifted, x), "{op} by zero must be the identity");
    }
}

#[test]
fn comparisons_against_self_decide() {
    let mut eg = EGraph::new();
    let x = sym(&mut eg, "x", 8);
    let eq = op2(&mut eg, BvOp::Eq, x, x);
    let ult = op2(&mut eg, BvOp::Ult, x, x);
    let ule = op2(&mut eg, BvOp::Ule, x, x);
    saturate(&mut eg, &bv_rules(), &Limits::default());
    assert_eq!(eg.constant(eq), Some(&BitVec::from_bool(true)));
    assert_eq!(eg.constant(ult), Some(&BitVec::from_bool(false)));
    assert_eq!(eg.constant(ule), Some(&BitVec::from_bool(true)));
}
