//! The [`TermPool`] bridge: embed a pool term into an e-graph, saturate, and read
//! the cheapest equivalent term back out — the e-graph's role as a pre-folder for
//! CEGIS verification disequalities.

use std::collections::HashMap;

use lr_smt::{Term, TermId, TermPool};

use crate::extract::{Extractor, NodeCount, RecExpr, RecNode};
use crate::graph::{EClassId, EGraph, ENode};
use crate::pattern::Rewrite;
use crate::runner::{saturate_with_goal, Limits, SaturationStats, StopReason};

/// What one [`fold_term`] call did.
#[derive(Debug, Clone)]
pub struct FoldReport {
    /// Size of the input term (distinct pool nodes reachable from the root).
    pub input_nodes: usize,
    /// Size of the extracted term.
    pub output_nodes: usize,
    /// Whether saturation proved the term constant (the decisive case for
    /// verification disequalities: a `false` constant means "equivalent, no SAT
    /// needed").
    pub folded_const: bool,
    /// Saturation counters.
    pub stats: SaturationStats,
}

impl Default for FoldReport {
    fn default() -> Self {
        FoldReport {
            input_nodes: 0,
            output_nodes: 0,
            folded_const: false,
            stats: SaturationStats {
                iterations: 0,
                matches: 0,
                unions: 0,
                enodes: 0,
                classes: 0,
                stop: StopReason::Saturated,
            },
        }
    }
}

/// Embeds a pool term into the e-graph, returning its class. Pool variables
/// become [`ENode::Symbol`] leaves under their own names, so the extracted term
/// re-enters the pool with identical variable bindings.
pub fn term_to_egraph(pool: &TermPool, root: TermId, egraph: &mut EGraph) -> EClassId {
    let mut memo: HashMap<TermId, EClassId> = HashMap::new();
    // Iterative post-order: pool terms can nest deeply (ripple structures), so no
    // recursion on the term height.
    let mut stack: Vec<(TermId, bool)> = vec![(root, false)];
    while let Some((id, ready)) = stack.pop() {
        if memo.contains_key(&id) {
            continue;
        }
        match pool.term(id) {
            Term::Const(bv) => {
                let class = egraph.add(ENode::Const(bv.clone()));
                memo.insert(id, class);
            }
            Term::Var { name, width } => {
                let class = egraph.add(ENode::Symbol { name: name.clone(), width: *width });
                memo.insert(id, class);
            }
            Term::Op { op, args, .. } => {
                if ready {
                    let arg_classes: Vec<EClassId> = args.iter().map(|a| memo[a]).collect();
                    let class = egraph.add(ENode::Op { op: *op, args: arg_classes });
                    memo.insert(id, class);
                } else {
                    stack.push((id, true));
                    for &a in args {
                        stack.push((a, false));
                    }
                }
            }
        }
    }
    memo[&root]
}

/// Rebuilds an extracted expression as a pool term. The pool's own
/// constructor-time rewriting applies, so the result may be simpler still.
pub fn recexpr_to_term(pool: &mut TermPool, expr: &RecExpr) -> TermId {
    let mut ids: Vec<TermId> = Vec::with_capacity(expr.len());
    for node in &expr.nodes {
        let id = match node {
            RecNode::Const(bv) => pool.constant(bv.clone()),
            RecNode::Symbol { name, width } => pool.var(name, *width),
            RecNode::Op { op, args } => {
                let args: Vec<TermId> = args.iter().map(|&i| ids[i]).collect();
                pool.mk_op(*op, args)
            }
        };
        ids.push(id);
    }
    *ids.last().expect("extracted expression is non-empty")
}

fn reachable_pool_nodes(pool: &TermPool, root: TermId) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        if let Term::Op { args, .. } = pool.term(id) {
            stack.extend(args.iter().copied());
        }
    }
    seen.len()
}

/// Saturates `root` under `rules` and returns the cheapest equivalent term,
/// written back into the same pool. If saturation proves the term constant, the
/// result is that constant (and [`FoldReport::folded_const`] is set) — for a
/// verification disequality, a `false` result decides the query with no SAT work.
pub fn fold_term(
    pool: &mut TermPool,
    root: TermId,
    rules: &[Rewrite],
    limits: &Limits,
) -> (TermId, FoldReport) {
    let mut report =
        FoldReport { input_nodes: reachable_pool_nodes(pool, root), ..Default::default() };
    let mut egraph = EGraph::new();
    let class = term_to_egraph(pool, root, &mut egraph);
    // The goal short-circuit: stop as soon as the root's value is decided.
    report.stats = saturate_with_goal(&mut egraph, rules, limits, Some(class));
    if let Some(value) = egraph.constant(class) {
        let folded = pool.constant(value.clone());
        report.folded_const = true;
        report.output_nodes = 1;
        return (folded, report);
    }
    let extractor = Extractor::new(&egraph, &NodeCount);
    let expr = extractor.extract(class);
    report.output_nodes = expr.len();
    let folded = recexpr_to_term(pool, &expr);
    // The pool's constructor rewriting can finish what saturation started.
    report.folded_const = pool.as_const(folded).is_some();
    (folded, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::bv_rules;
    use lr_bv::BitVec;

    #[test]
    fn round_trip_preserves_structure() {
        let mut pool = TermPool::without_simplification();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let sum = pool.add(x, y);
        let prod = pool.mul(sum, sum);
        let mut eg = EGraph::new();
        let class = term_to_egraph(&pool, prod, &mut eg);
        eg.rebuild();
        let extractor = Extractor::new(&eg, &NodeCount);
        let expr = extractor.extract(class);
        let back = recexpr_to_term(&mut pool, &expr);
        // Same pool, same variables, same structure → the hash-cons returns the
        // original term.
        assert_eq!(back, prod);
    }

    /// Embedding, cost computation, and extraction must all be recursion-free:
    /// a chain deep enough to overflow a 2 MB test-thread stack if any of them
    /// recursed on term depth round-trips fine.
    #[test]
    fn deep_chains_round_trip_without_recursion() {
        let mut pool = TermPool::without_simplification();
        let x = pool.var("x", 8);
        let one = pool.constant(BitVec::from_u64(1, 8));
        let mut t = x;
        const DEPTH: usize = 20_000;
        for _ in 0..DEPTH {
            t = pool.add(t, one);
        }
        let mut eg = EGraph::new();
        let class = term_to_egraph(&pool, t, &mut eg);
        eg.rebuild();
        let extractor = Extractor::new(&eg, &NodeCount);
        let expr = extractor.extract(class);
        // x, the constant 1, and one add per level.
        assert_eq!(expr.len(), DEPTH + 2);
        let back = recexpr_to_term(&mut pool, &expr);
        assert_eq!(back, t, "hash-consing must reproduce the original chain");
    }

    #[test]
    fn fold_decides_a_disequality_without_sat() {
        // x + y ≠ y + x is false; in a non-simplifying pool only saturation can
        // see that.
        let mut pool = TermPool::without_simplification();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let xy = pool.add(x, y);
        let yx = pool.add(y, x);
        let ne = pool.ne(xy, yx);
        assert!(pool.as_const(ne).is_none(), "the pool alone must not decide this");
        let (folded, report) = fold_term(&mut pool, ne, &bv_rules(), &Limits::default());
        assert_eq!(pool.as_const(folded), Some(&BitVec::from_bool(false)));
        assert!(report.folded_const);
        assert!(report.input_nodes > report.output_nodes);
    }

    #[test]
    fn fold_shrinks_but_preserves_open_terms() {
        let mut pool = TermPool::without_simplification();
        let x = pool.var("x", 8);
        let zero = pool.zero(8);
        let sum = pool.add(x, zero);
        let doubled = pool.add(sum, sum);
        let (folded, report) = fold_term(&mut pool, doubled, &bv_rules(), &Limits::default());
        assert!(!report.folded_const);
        // x + 0 collapsed to x, so the result is x + x.
        let env: lr_smt::Env = [("x".to_string(), BitVec::from_u64(21, 8))].into_iter().collect();
        assert_eq!(pool.eval(folded, &env).unwrap(), BitVec::from_u64(42, 8));
        assert!(report.output_nodes <= report.input_nodes);
    }
}
