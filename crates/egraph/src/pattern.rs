//! Patterns, substitutions, and rewrite rules, plus the small builder DSL used to
//! state rules declaratively.
//!
//! A [`Pattern`] matches e-classes structurally: [`Pattern::Any`] binds any class,
//! [`Pattern::Const`] binds a class the analysis has proved constant, and the
//! width-generic literals [`Pattern::Zero`] / [`Pattern::One`] / [`Pattern::AllOnes`]
//! match classes with those constant values at any width. The same type is used for
//! right-hand sides: width-generic literals instantiate at the width of the class
//! being rewritten.
//!
//! The [`p`] module is the builder DSL. A rule is two patterns and a name:
//!
//! ```
//! use lr_egraph::pattern::{p, Rewrite};
//! use lr_egraph::{saturate, EGraph, ENode, Limits};
//! use lr_bv::BitVec;
//!
//! // x + 0 → x, stated declaratively.
//! let add_zero = Rewrite::rule("add-zero", p::add(p::any("x"), p::zero()), p::any("x"));
//!
//! let mut eg = EGraph::new();
//! let x = eg.add(ENode::Symbol { name: "x".into(), width: 8 });
//! let zero = eg.add(ENode::Const(BitVec::zeros(8)));
//! let sum = eg.add(ENode::Op { op: lr_smt::BvOp::Add, args: vec![x, zero] });
//!
//! saturate(&mut eg, &[add_zero], &Limits::default());
//! assert!(eg.equiv(sum, x), "saturation proves x + 0 ≡ x");
//! ```

use lr_bv::BitVec;
use lr_smt::BvOp;

use crate::graph::{EClass, EClassId, EGraph, ENode};

/// A structural pattern over e-classes (used for both sides of a rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pattern {
    /// Binds any e-class to the given name (`?x` in egg notation).
    Any(&'static str),
    /// Binds an e-class whose constant value is known to the analysis.
    Const(&'static str),
    /// The all-zeros constant of the matched/instantiated width.
    Zero,
    /// The constant 1 of the matched/instantiated width (also Boolean true at
    /// width 1).
    One,
    /// The all-ones constant of the matched/instantiated width.
    AllOnes,
    /// An operator applied to sub-patterns.
    Op(BvOp, Vec<Pattern>),
}

/// A binding of pattern variables to e-classes.
#[derive(Debug, Clone, Default)]
pub struct Subst {
    binds: Vec<(&'static str, EClassId)>,
}

impl Subst {
    /// The class bound to `name`.
    ///
    /// # Panics
    /// Panics if the name is unbound (a rule whose right side mentions a variable
    /// its left side does not bind is malformed).
    pub fn get(&self, name: &str) -> EClassId {
        self.binds
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, id)| id)
            .unwrap_or_else(|| panic!("pattern variable `{name}` is unbound"))
    }

    fn try_bind(&self, name: &'static str, id: EClassId, eg: &EGraph) -> Option<Subst> {
        if let Some(&(_, bound)) = self.binds.iter().find(|(n, _)| *n == name) {
            return eg.equiv(bound, id).then(|| self.clone());
        }
        let mut next = self.clone();
        next.binds.push((name, id));
        Some(next)
    }
}

/// A recipe for building one new term into the e-graph — what a dynamic rule
/// returns. `Class` references existing classes; `Const` and `Node` build new ones.
#[derive(Debug, Clone)]
pub enum Recipe {
    /// An existing class, unchanged.
    Class(EClassId),
    /// A constant leaf.
    Const(BitVec),
    /// An operator over sub-recipes.
    Node(BvOp, Vec<Recipe>),
}

impl Recipe {
    /// Builds the recipe into the graph, returning the resulting class.
    pub fn build(&self, eg: &mut EGraph) -> EClassId {
        match self {
            Recipe::Class(id) => *id,
            Recipe::Const(bv) => eg.add(ENode::Const(bv.clone())),
            Recipe::Node(op, args) => {
                let args: Vec<EClassId> = args.iter().map(|a| a.build(eg)).collect();
                eg.add(ENode::Op { op: *op, args })
            }
        }
    }
}

/// A dynamic rule body: inspects one `(class, node)` pair and proposes equivalent
/// forms. Used for rules over parameterized operators (`extract`, `zext`, `sext`)
/// whose embedded widths a static pattern cannot bind.
pub type DynFn = fn(&EGraph, &EClass, &ENode) -> Vec<Recipe>;

/// How a rewrite finds and produces terms.
#[derive(Debug)]
pub enum RewriteKind {
    /// A pattern pair: match `lhs`, instantiate `rhs`, union.
    Rule {
        /// The pattern to search for.
        lhs: Pattern,
        /// The equivalent form to add.
        rhs: Pattern,
    },
    /// A dynamic rule (see [`DynFn`]).
    Dyn(DynFn),
}

/// A named rewrite rule.
#[derive(Debug)]
pub struct Rewrite {
    /// Rule name (reported in saturation statistics).
    pub name: &'static str,
    /// The matching/production behaviour.
    pub kind: RewriteKind,
}

impl Rewrite {
    /// Builds a pattern rule: wherever `lhs` matches, `rhs` is added and unioned.
    pub fn rule(name: &'static str, lhs: Pattern, rhs: Pattern) -> Rewrite {
        Rewrite { name, kind: RewriteKind::Rule { lhs, rhs } }
    }

    /// Builds a dynamic rule from a function over `(graph, class, node)`.
    pub fn dynamic(name: &'static str, f: DynFn) -> Rewrite {
        Rewrite { name, kind: RewriteKind::Dyn(f) }
    }
}

/// Matches `pattern` against a class, returning every substitution that works.
pub fn match_in_class(eg: &EGraph, pattern: &Pattern, class: &EClass, subst: &Subst) -> Vec<Subst> {
    match pattern {
        Pattern::Any(name) => subst.try_bind(name, class.id, eg).into_iter().collect(),
        Pattern::Const(name) => {
            if class.constant.is_some() {
                subst.try_bind(name, class.id, eg).into_iter().collect()
            } else {
                Vec::new()
            }
        }
        Pattern::Zero => match &class.constant {
            Some(c) if c.is_zero() => vec![subst.clone()],
            _ => Vec::new(),
        },
        Pattern::One => match &class.constant {
            Some(c) if c.to_u64() == Some(1) => vec![subst.clone()],
            _ => Vec::new(),
        },
        Pattern::AllOnes => match &class.constant {
            Some(c) if c.is_all_ones() => vec![subst.clone()],
            _ => Vec::new(),
        },
        Pattern::Op(op, arg_pats) => {
            let mut out = Vec::new();
            for node in &class.nodes {
                let ENode::Op { op: nop, args } = node else { continue };
                if nop != op || args.len() != arg_pats.len() {
                    continue;
                }
                let mut partial = vec![subst.clone()];
                for (pat, &arg) in arg_pats.iter().zip(args) {
                    let arg_class = eg.class(arg);
                    let mut next = Vec::new();
                    for s in &partial {
                        next.extend(match_in_class(eg, pat, arg_class, s));
                    }
                    partial = next;
                    if partial.is_empty() {
                        break;
                    }
                }
                out.extend(partial);
            }
            out
        }
    }
}

/// Instantiates a right-hand-side pattern under a substitution. `width` is the
/// width of the class being rewritten; width-generic literals and nested
/// width-preserving operators instantiate at it.
pub fn instantiate(eg: &mut EGraph, pattern: &Pattern, subst: &Subst, width: u32) -> EClassId {
    match pattern {
        Pattern::Any(name) | Pattern::Const(name) => subst.get(name),
        Pattern::Zero => eg.add(ENode::Const(BitVec::zeros(width))),
        Pattern::One => eg.add(ENode::Const(BitVec::from_u64(1, width))),
        Pattern::AllOnes => eg.add(ENode::Const(BitVec::ones(width))),
        Pattern::Op(op, args) => {
            let args: Vec<EClassId> =
                args.iter().map(|a| instantiate(eg, a, subst, width)).collect();
            eg.add(ENode::Op { op: *op, args })
        }
    }
}

/// The pattern builder DSL: terse constructors for the operators the rule set uses.
pub mod p {
    use super::Pattern;
    use lr_smt::BvOp;

    /// Binds any class to `name`.
    pub fn any(name: &'static str) -> Pattern {
        Pattern::Any(name)
    }

    /// Binds a class with a known constant value to `name`.
    pub fn konst(name: &'static str) -> Pattern {
        Pattern::Const(name)
    }

    /// The all-zeros constant (width-generic).
    pub fn zero() -> Pattern {
        Pattern::Zero
    }

    /// The constant one (width-generic; Boolean true at width 1).
    pub fn one() -> Pattern {
        Pattern::One
    }

    /// The all-ones constant (width-generic).
    pub fn all_ones() -> Pattern {
        Pattern::AllOnes
    }

    macro_rules! op2 {
        ($(#[$doc:meta])* $name:ident, $op:expr) => {
            $(#[$doc])*
            pub fn $name(a: Pattern, b: Pattern) -> Pattern {
                Pattern::Op($op, vec![a, b])
            }
        };
    }

    macro_rules! op1 {
        ($(#[$doc:meta])* $name:ident, $op:expr) => {
            $(#[$doc])*
            pub fn $name(a: Pattern) -> Pattern {
                Pattern::Op($op, vec![a])
            }
        };
    }

    op2!(/** Wrapping addition. */ add, BvOp::Add);
    op2!(/** Wrapping subtraction. */ sub, BvOp::Sub);
    op2!(/** Wrapping multiplication. */ mul, BvOp::Mul);
    op2!(/** Bitwise AND. */ and, BvOp::And);
    op2!(/** Bitwise OR. */ or, BvOp::Or);
    op2!(/** Bitwise XOR. */ xor, BvOp::Xor);
    op2!(/** Logical shift left. */ shl, BvOp::Shl);
    op2!(/** Logical shift right. */ lshr, BvOp::Lshr);
    op2!(/** Arithmetic shift right. */ ashr, BvOp::Ashr);
    op2!(/** Equality (1-bit result). */ eq, BvOp::Eq);
    op2!(/** Unsigned less-than. */ ult, BvOp::Ult);
    op2!(/** Unsigned less-than-or-equal. */ ule, BvOp::Ule);
    op2!(/** Signed less-than. */ slt, BvOp::Slt);
    op2!(/** Signed less-than-or-equal. */ sle, BvOp::Sle);
    op1!(/** Bitwise NOT. */ not, BvOp::Not);
    op1!(/** Two's-complement negation. */ neg, BvOp::Neg);

    /// If-then-else.
    pub fn ite(c: Pattern, t: Pattern, e: Pattern) -> Pattern {
        Pattern::Op(BvOp::Ite, vec![c, t, e])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_binds_and_checks_consistency() {
        let mut eg = EGraph::new();
        let x = eg.add(ENode::Symbol { name: "x".into(), width: 8 });
        let y = eg.add(ENode::Symbol { name: "y".into(), width: 8 });
        let xx = eg.add(ENode::Op { op: BvOp::Sub, args: vec![x, x] });
        let xy = eg.add(ENode::Op { op: BvOp::Sub, args: vec![x, y] });

        // sub(?a, ?a) matches x − x but not x − y.
        let pat = p::sub(p::any("a"), p::any("a"));
        assert_eq!(match_in_class(&eg, &pat, eg.class(xx), &Subst::default()).len(), 1);
        assert!(match_in_class(&eg, &pat, eg.class(xy), &Subst::default()).is_empty());
    }

    #[test]
    fn const_literals_match_analysis_values() {
        let mut eg = EGraph::new();
        let x = eg.add(ENode::Symbol { name: "x".into(), width: 8 });
        let z = eg.add(ENode::Const(BitVec::zeros(8)));
        let sum = eg.add(ENode::Op { op: BvOp::Add, args: vec![x, z] });
        let pat = p::add(p::any("x"), p::zero());
        let matches = match_in_class(&eg, &pat, eg.class(sum), &Subst::default());
        assert_eq!(matches.len(), 1);
        assert_eq!(eg.find(matches[0].get("x")), eg.find(x));
    }

    #[test]
    fn instantiate_builds_width_correct_constants() {
        let mut eg = EGraph::new();
        let subst = Subst::default();
        let z = instantiate(&mut eg, &Pattern::Zero, &subst, 12);
        assert_eq!(eg.constant(z), Some(&BitVec::zeros(12)));
        let o = instantiate(&mut eg, &Pattern::AllOnes, &subst, 3);
        assert_eq!(eg.constant(o), Some(&BitVec::ones(3)));
    }

    #[test]
    #[should_panic]
    fn unbound_rhs_variable_panics() {
        let subst = Subst::default();
        subst.get("nope");
    }
}
