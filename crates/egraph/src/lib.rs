//! # lr-egraph: equality saturation over the QF_BV operator set
//!
//! This crate is the principled successor to `lr_smt::TermPool`'s one-shot,
//! constructor-time rewriting, following *Scaling Program Synthesis Based
//! Technology Mapping with Equality Saturation* (arXiv 2411.11036): instead of
//! committing to one rewrite order, an **e-graph** keeps every equivalent form
//! discovered so far, rules only ever add information, and a cost-based extraction
//! picks the best representative at the end. The pieces:
//!
//! * [`EGraph`] — hash-consed e-nodes over a union-find of e-classes, congruence
//!   closure with a deferred [`EGraph::rebuild`], and a constant-folding analysis
//!   (every class whose value is decided carries it, and is unioned with the
//!   literal constant);
//! * [`pattern`] — the [`Pattern`]/[`Rewrite`] representation and the [`pattern::p`]
//!   builder DSL for stating rules declaratively;
//! * [`rules::bv_rules`] — the rule set shared with the rest of the workspace: the
//!   `TermPool` rewrites in declarative form, plus associativity/commutativity,
//!   which one-shot rewriting cannot exploit;
//! * [`saturate`] — bounded saturation ([`Limits`] caps iterations and nodes) with
//!   [`SaturationStats`] counters;
//! * [`Extractor`] — cost-based extraction under [`NodeCount`] or per-operator
//!   [`OpCost`] functions;
//! * [`fold_term`] — the `TermPool` bridge: embed a term, saturate, extract. Used
//!   by `lr_synth`'s CEGIS verifier to pre-fold disequalities before any SAT work,
//!   and by `lr_ir`'s `Prog::saturated` canonicalization pass.
//!
//! ```
//! use lr_egraph::{fold_term, Limits};
//! use lr_egraph::rules::bv_rules;
//! use lr_smt::TermPool;
//! use lr_bv::BitVec;
//!
//! // A disequality the pool's one-shot rewriting cannot decide…
//! let mut pool = TermPool::without_simplification();
//! let (a, b) = (pool.var("a", 8), pool.var("b", 8));
//! let ab = pool.sub(a, b);
//! let ba = pool.sub(b, a);
//! let neg = pool.neg(ba);
//! let ne = pool.ne(ab, neg);      // (a − b) ≠ −(b − a)
//! assert!(pool.as_const(ne).is_none());
//!
//! // …folds to false by saturation alone.
//! let (folded, report) = fold_term(&mut pool, ne, &bv_rules(), &Limits::default());
//! assert_eq!(pool.as_const(folded), Some(&BitVec::from_bool(false)));
//! assert!(report.folded_const);
//! ```

mod extract;
mod fold;
mod graph;
pub mod pattern;
pub mod rules;
mod runner;

pub use extract::{CostFunction, Extractor, NodeCount, OpCost, RecExpr, RecNode};
pub use fold::{fold_term, recexpr_to_term, term_to_egraph, FoldReport};
pub use graph::{EClass, EClassId, EGraph, ENode};
pub use pattern::{Pattern, Recipe, Rewrite, Subst};
pub use runner::{saturate, saturate_with_goal, Limits, SaturationStats, StopReason};
