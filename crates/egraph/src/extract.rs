//! Cost-based extraction: pick the cheapest concrete term representing each class.

use std::collections::HashMap;

use lr_bv::BitVec;
use lr_smt::BvOp;

use crate::graph::{EClassId, EGraph, ENode};

/// Assigns a local cost to an e-node; a term's cost is its node's cost plus the
/// best costs of its children.
pub trait CostFunction {
    /// The cost contributed by `node` itself (children not included).
    fn node_cost(&self, node: &ENode) -> u64;
}

/// Every node costs one — extraction minimizes term size.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeCount;

impl CostFunction for NodeCount {
    fn node_cost(&self, _node: &ENode) -> u64 {
        1
    }
}

/// Per-operator costs: leaves cost one, operators cost what the function says.
/// Used to steer extraction toward hardware-cheap forms (e.g. pricing multiplies
/// above adds so extraction prefers shift-add decompositions when both exist).
pub struct OpCost<F: Fn(BvOp) -> u64>(pub F);

impl<F: Fn(BvOp) -> u64> CostFunction for OpCost<F> {
    fn node_cost(&self, node: &ENode) -> u64 {
        match node {
            ENode::Const(_) | ENode::Symbol { .. } => 1,
            ENode::Op { op, .. } => (self.0)(*op),
        }
    }
}

/// One node of an extracted term; children refer to earlier indices of the
/// containing [`RecExpr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecNode {
    /// A constant leaf.
    Const(BitVec),
    /// An opaque leaf.
    Symbol {
        /// Leaf name.
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// An operator over earlier entries.
    Op {
        /// The operator.
        op: BvOp,
        /// Indices of the children within the expression.
        args: Vec<usize>,
    },
}

/// A concrete term extracted from an e-graph, in topological order (children
/// strictly before parents; the last entry is the root).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecExpr {
    /// The nodes, children-first.
    pub nodes: Vec<RecNode>,
}

impl RecExpr {
    /// Index of the root node.
    pub fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Number of nodes in the extracted term.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the expression is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// A bottom-up best-cost table over an e-graph, from which terms are extracted.
pub struct Extractor<'a> {
    egraph: &'a EGraph,
    /// Canonical class id → (best cost, best node).
    best: HashMap<u32, (u64, ENode)>,
}

impl<'a> Extractor<'a> {
    /// Computes best costs for every class under `cost` (call
    /// [`EGraph::rebuild`] first).
    pub fn new(egraph: &'a EGraph, cost: &impl CostFunction) -> Self {
        let mut best: HashMap<u32, (u64, ENode)> = HashMap::new();
        // Fixpoint: a class's best cost can only decrease as children resolve.
        // Ascending id order approximates bottom-up (children are hash-consed
        // before their parents), so even a deep linear chain resolves in a couple
        // of passes instead of one level per pass.
        let mut ids: Vec<EClassId> = egraph.class_ids();
        ids.sort_unstable();
        loop {
            let mut changed = false;
            for class in ids.iter().map(|&id| egraph.class(id)) {
                for node in &class.nodes {
                    let children: Option<u64> = node.children().iter().try_fold(0u64, |acc, &c| {
                        best.get(&egraph.find(c).0).map(|&(cost, _)| acc.saturating_add(cost))
                    });
                    let Some(children_cost) = children else { continue };
                    let total = cost.node_cost(node).saturating_add(children_cost);
                    // Equal-cost candidates (ubiquitous once commutativity has run:
                    // `a+b` and `b+a` share a class at the same cost) are broken by
                    // the total order on `ENode`, not by class-list position, so
                    // the extracted canonical form never depends on union history.
                    let replace = match best.get(&class.id.0) {
                        None => true,
                        Some((existing, chosen)) => {
                            total < *existing || (total == *existing && node < chosen)
                        }
                    };
                    if replace {
                        best.insert(class.id.0, (total, node.clone()));
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Extractor { egraph, best }
    }

    /// The best cost of a class, if any concrete term exists for it.
    pub fn cost(&self, id: EClassId) -> Option<u64> {
        self.best.get(&self.egraph.find(id).0).map(|&(c, _)| c)
    }

    /// Extracts the cheapest term for `root`.
    ///
    /// # Panics
    /// Panics if the class has no extractable term (impossible for classes built
    /// from concrete terms).
    pub fn extract(&self, root: EClassId) -> RecExpr {
        let mut expr = RecExpr::default();
        let mut memo: HashMap<u32, usize> = HashMap::new();
        self.extract_into(root, &mut expr, &mut memo);
        expr
    }

    /// Extracts several roots into one shared expression, returning each root's
    /// index. Shared structure is emitted once.
    pub fn extract_many(&self, roots: &[EClassId]) -> (RecExpr, Vec<usize>) {
        let mut expr = RecExpr::default();
        let mut memo: HashMap<u32, usize> = HashMap::new();
        let indices = roots.iter().map(|&r| self.extract_into(r, &mut expr, &mut memo)).collect();
        (expr, indices)
    }

    fn extract_into(
        &self,
        id: EClassId,
        expr: &mut RecExpr,
        memo: &mut HashMap<u32, usize>,
    ) -> usize {
        // Iterative post-order on (class, ready) pairs: extracted terms can be as
        // deep as the terms that were embedded (ripple structures nest one level
        // per bit), and the embedding side is deliberately recursion-free — the
        // read-back must not reintroduce a stack bound the write side avoided.
        let mut stack: Vec<(u32, bool)> = vec![(self.egraph.find(id).0, false)];
        while let Some((canon, ready)) = stack.pop() {
            if memo.contains_key(&canon) {
                continue;
            }
            let (_, node) = self
                .best
                .get(&canon)
                .unwrap_or_else(|| panic!("class {canon} has no extractable term"));
            let rec = match node {
                ENode::Const(bv) => RecNode::Const(bv.clone()),
                ENode::Symbol { name, width } => {
                    RecNode::Symbol { name: name.clone(), width: *width }
                }
                ENode::Op { op, args } => {
                    if !ready {
                        stack.push((canon, true));
                        for &a in args {
                            stack.push((self.egraph.find(a).0, false));
                        }
                        continue;
                    }
                    let args: Vec<usize> =
                        args.iter().map(|&a| memo[&self.egraph.find(a).0]).collect();
                    RecNode::Op { op: *op, args }
                }
            };
            expr.nodes.push(rec);
            memo.insert(canon, expr.nodes.len() - 1);
        }
        memo[&self.egraph.find(id).0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{p, Rewrite};
    use crate::runner::{saturate, Limits};

    #[test]
    fn extraction_picks_the_constant() {
        let mut eg = EGraph::new();
        let a = eg.add(ENode::Const(BitVec::from_u64(5, 8)));
        let b = eg.add(ENode::Const(BitVec::from_u64(7, 8)));
        let sum = eg.add(ENode::Op { op: BvOp::Add, args: vec![a, b] });
        eg.rebuild();
        let extractor = Extractor::new(&eg, &NodeCount);
        let expr = extractor.extract(sum);
        assert_eq!(expr.len(), 1);
        assert_eq!(expr.nodes[0], RecNode::Const(BitVec::from_u64(12, 8)));
    }

    #[test]
    fn extraction_picks_the_smaller_form_after_saturation() {
        let mut eg = EGraph::new();
        let x = eg.add(ENode::Symbol { name: "x".into(), width: 8 });
        let zero = eg.add(ENode::Const(BitVec::zeros(8)));
        let sum = eg.add(ENode::Op { op: BvOp::Add, args: vec![x, zero] });
        let rules = vec![Rewrite::rule("add-zero", p::add(p::any("x"), p::zero()), p::any("x"))];
        saturate(&mut eg, &rules, &Limits::default());
        let extractor = Extractor::new(&eg, &NodeCount);
        let expr = extractor.extract(sum);
        assert_eq!(expr.len(), 1);
        assert!(matches!(&expr.nodes[0], RecNode::Symbol { name, .. } if name == "x"));
    }

    #[test]
    fn per_op_costs_steer_extraction() {
        // x*2 and x+x in one class: a cost that prices Mul high picks the add.
        let mut eg = EGraph::new();
        let x = eg.add(ENode::Symbol { name: "x".into(), width: 8 });
        let two = eg.add(ENode::Const(BitVec::from_u64(2, 8)));
        let prod = eg.add(ENode::Op { op: BvOp::Mul, args: vec![x, two] });
        let sum = eg.add(ENode::Op { op: BvOp::Add, args: vec![x, x] });
        eg.union(prod, sum);
        eg.rebuild();
        let cost = OpCost(|op| if op == BvOp::Mul { 100 } else { 1 });
        let extractor = Extractor::new(&eg, &cost);
        let expr = extractor.extract(prod);
        assert!(expr.nodes.iter().all(|n| !matches!(n, RecNode::Op { op: BvOp::Mul, .. })));
    }

    /// Equal-cost candidates must extract identically regardless of the order
    /// they entered their class — the property the synthesis cache's stable
    /// keys rest on.
    #[test]
    fn equal_cost_ties_break_on_node_order_not_insertion_order() {
        let build = |swapped: bool| {
            let mut eg = EGraph::new();
            let x = eg.add(ENode::Symbol { name: "x".into(), width: 8 });
            let y = eg.add(ENode::Symbol { name: "y".into(), width: 8 });
            let (first, second) = if swapped { (y, x) } else { (x, y) };
            let a = eg.add(ENode::Op { op: BvOp::Add, args: vec![first, second] });
            let b = eg.add(ENode::Op { op: BvOp::Add, args: vec![second, first] });
            eg.union(a, b);
            eg.rebuild();
            let extractor = Extractor::new(&eg, &NodeCount);
            extractor.extract(a)
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn extract_many_shares_structure() {
        let mut eg = EGraph::new();
        let x = eg.add(ENode::Symbol { name: "x".into(), width: 8 });
        let y = eg.add(ENode::Symbol { name: "y".into(), width: 8 });
        let sum = eg.add(ENode::Op { op: BvOp::Add, args: vec![x, y] });
        let prod = eg.add(ENode::Op { op: BvOp::Mul, args: vec![sum, sum] });
        eg.rebuild();
        let extractor = Extractor::new(&eg, &NodeCount);
        let (expr, roots) = extractor.extract_many(&[sum, prod]);
        assert_eq!(roots.len(), 2);
        // x, y, sum, prod — the shared sum is emitted once.
        assert_eq!(expr.len(), 4);
    }
}
