//! The e-graph core: hash-consed e-nodes over a union-find of e-classes, with
//! congruence closure restored by a deferred [`EGraph::rebuild`] and a
//! constant-folding analysis attached to every class.
//!
//! Unlike [`lr_smt::TermPool`]'s constructor-time rewriting — which commits to one
//! rewrite order and cannot undo a bad choice — an e-graph keeps *every* equivalent
//! form it has discovered. Rewrites only ever add information (new e-nodes, new
//! unions), so the result is independent of rule application order.

use std::collections::HashMap;

use lr_bv::BitVec;
use lr_smt::{apply_op, BvOp};

/// A handle to an equivalence class of terms in an [`EGraph`].
///
/// Ids are stable for the lifetime of the graph but may stop being *canonical* as
/// classes merge; [`EGraph::find`] maps any id to the canonical representative of
/// its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EClassId(pub(crate) u32);

impl EClassId {
    /// The dense index behind the id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An e-node: one operator application (or leaf) whose children are e-classes.
///
/// The derived `Ord` (constants, then symbols, then operator nodes) is the total
/// order [`EGraph::rebuild`] sorts by before processing hash-table contents: every
/// iteration-order-dependent step runs over sorted data, so rebuilds — and
/// therefore saturation and extraction — are bit-for-bit reproducible across
/// processes. The content-addressed synthesis cache depends on this.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ENode {
    /// A constant bitvector.
    Const(BitVec),
    /// An opaque leaf: a free variable, or (when embedding ℒlr programs) a
    /// register/primitive/hole boundary the rules must not look through.
    Symbol {
        /// Leaf name; equal names of equal width are the same leaf.
        name: String,
        /// Width in bits.
        width: u32,
    },
    /// An operator over e-class children.
    Op {
        /// The operator.
        op: BvOp,
        /// Child classes.
        args: Vec<EClassId>,
    },
}

impl ENode {
    /// The child classes of the node.
    pub fn children(&self) -> &[EClassId] {
        match self {
            ENode::Const(_) | ENode::Symbol { .. } => &[],
            ENode::Op { args, .. } => args,
        }
    }

    fn map_children(&self, mut f: impl FnMut(EClassId) -> EClassId) -> ENode {
        match self {
            ENode::Const(_) | ENode::Symbol { .. } => self.clone(),
            ENode::Op { op, args } => {
                ENode::Op { op: *op, args: args.iter().map(|&a| f(a)).collect() }
            }
        }
    }
}

/// One equivalence class: the e-nodes known to denote the same value, the class
/// width, and the constant-folding analysis result.
#[derive(Debug, Clone)]
pub struct EClass {
    /// Canonical id of this class.
    pub id: EClassId,
    /// The e-nodes of the class (children canonical as of the last rebuild).
    pub nodes: Vec<ENode>,
    /// Width in bits shared by every member.
    pub width: u32,
    /// The class's value, if the analysis has proved it constant.
    pub constant: Option<BitVec>,
}

/// An e-graph over the QF_BV operator set.
///
/// Operations:
/// * [`EGraph::add`] hash-conses an e-node into the graph;
/// * [`EGraph::union`] asserts two classes equal (deferring congruence repair);
/// * [`EGraph::rebuild`] restores the congruence invariant — call it after a batch
///   of unions, before matching or extraction.
#[derive(Debug, Default)]
pub struct EGraph {
    /// Union-find parent array over all ids ever allocated.
    uf: Vec<u32>,
    /// Canonical id → class.
    classes: HashMap<u32, EClass>,
    /// Canonicalized node → class (the hash-cons table).
    memo: HashMap<ENode, EClassId>,
    /// Whether unions have happened since the last rebuild.
    dirty: bool,
    unions: u64,
    nodes_added: u64,
}

impl EGraph {
    /// Creates an empty e-graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical representative of `id`'s class.
    pub fn find(&self, id: EClassId) -> EClassId {
        let mut i = id.0;
        while self.uf[i as usize] != i {
            i = self.uf[i as usize];
        }
        EClassId(i)
    }

    fn find_compress(&mut self, id: EClassId) -> EClassId {
        let root = self.find(id);
        let mut i = id.0;
        while self.uf[i as usize] != root.0 {
            let next = self.uf[i as usize];
            self.uf[i as usize] = root.0;
            i = next;
        }
        root
    }

    /// Whether two ids denote the same class. Only meaningful on a clean graph
    /// (call [`EGraph::rebuild`] first).
    pub fn equiv(&self, a: EClassId, b: EClassId) -> bool {
        self.find(a) == self.find(b)
    }

    /// The class behind a (possibly stale) id.
    pub fn class(&self, id: EClassId) -> &EClass {
        let root = self.find(id);
        &self.classes[&root.0]
    }

    /// The constant value of a class, if the analysis has proved one.
    pub fn constant(&self, id: EClassId) -> Option<&BitVec> {
        self.class(id).constant.as_ref()
    }

    /// The width of a class in bits.
    pub fn width(&self, id: EClassId) -> u32 {
        self.class(id).width
    }

    /// Iterates over the canonical classes.
    pub fn classes(&self) -> impl Iterator<Item = &EClass> {
        self.classes.values()
    }

    /// Canonical class ids (snapshot).
    pub fn class_ids(&self) -> Vec<EClassId> {
        let mut ids: Vec<EClassId> = self.classes.keys().map(|&k| EClassId(k)).collect();
        ids.sort_unstable();
        ids
    }

    /// Number of canonical classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total e-nodes across all classes.
    pub fn total_enodes(&self) -> usize {
        self.classes.values().map(|c| c.nodes.len()).sum()
    }

    /// Number of unions performed so far (including congruence-induced ones).
    pub fn union_count(&self) -> u64 {
        self.unions
    }

    /// Number of distinct e-nodes ever hash-consed.
    pub fn nodes_added(&self) -> u64 {
        self.nodes_added
    }

    fn canonicalize(&mut self, node: &ENode) -> ENode {
        node.map_children(|c| {
            let mut i = c.0;
            while self.uf[i as usize] != i {
                i = self.uf[i as usize];
            }
            EClassId(i)
        })
    }

    /// The result width of `op` applied to the given classes (QF_BV width rules).
    pub fn op_width(&self, op: BvOp, args: &[EClassId]) -> u32 {
        let w = |i: usize| self.width(args[i]);
        match op {
            BvOp::Not | BvOp::Neg => w(0),
            BvOp::Concat => w(0) + w(1),
            BvOp::Extract { hi, lo } => hi - lo + 1,
            BvOp::ZeroExt { width } | BvOp::SignExt { width } => width,
            BvOp::Eq
            | BvOp::Ult
            | BvOp::Ule
            | BvOp::Slt
            | BvOp::Sle
            | BvOp::RedOr
            | BvOp::RedAnd
            | BvOp::RedXor => 1,
            BvOp::Ite => w(1),
            _ => w(0),
        }
    }

    /// Constant-folding analysis: the node's value if all children are constant.
    fn fold_node(&self, node: &ENode) -> Option<BitVec> {
        match node {
            ENode::Const(bv) => Some(bv.clone()),
            ENode::Symbol { .. } => None,
            ENode::Op { op, args } => {
                let consts: Option<Vec<BitVec>> =
                    args.iter().map(|&a| self.constant(a).cloned()).collect();
                let consts = consts?;
                let refs: Vec<&BitVec> = consts.iter().collect();
                Some(apply_op(*op, &refs))
            }
        }
    }

    /// Adds (or retrieves) an e-node, returning its class.
    ///
    /// If the constant-folding analysis decides the node's value, the class is
    /// immediately unioned with the corresponding [`ENode::Const`] class, so
    /// extraction can always pick the literal constant.
    pub fn add(&mut self, node: ENode) -> EClassId {
        let node = self.canonicalize(&node);
        if let Some(&id) = self.memo.get(&node) {
            return self.find_compress(id);
        }
        let width = match &node {
            ENode::Const(bv) => bv.width(),
            ENode::Symbol { width, .. } => *width,
            ENode::Op { op, args } => self.op_width(*op, args),
        };
        let constant = self.fold_node(&node);
        let id = EClassId(self.uf.len() as u32);
        self.uf.push(id.0);
        self.classes.insert(
            id.0,
            EClass { id, nodes: vec![node.clone()], width, constant: constant.clone() },
        );
        let is_const_node = matches!(node, ENode::Const(_));
        self.memo.insert(node, id);
        self.nodes_added += 1;
        if let Some(c) = constant {
            if !is_const_node {
                let cid = self.add(ENode::Const(c));
                return self.union(id, cid).0;
            }
        }
        id
    }

    /// Asserts that two classes denote the same value. Returns the surviving
    /// canonical id and whether anything changed. Congruence repair is deferred to
    /// [`EGraph::rebuild`].
    pub fn union(&mut self, a: EClassId, b: EClassId) -> (EClassId, bool) {
        let a = self.find_compress(a);
        let b = self.find_compress(b);
        if a == b {
            return (a, false);
        }
        // Merge the smaller class into the larger.
        let (keep, merge) = if self.classes[&a.0].nodes.len() >= self.classes[&b.0].nodes.len() {
            (a, b)
        } else {
            (b, a)
        };
        let merged = self.classes.remove(&merge.0).expect("canonical class exists");
        self.uf[merge.0 as usize] = keep.0;
        let kept = self.classes.get_mut(&keep.0).expect("canonical class exists");
        debug_assert_eq!(kept.width, merged.width, "union of classes with different widths");
        kept.nodes.extend(merged.nodes);
        if kept.constant.is_none() {
            kept.constant = merged.constant;
        } else if let (Some(k), Some(m)) = (&kept.constant, &merged.constant) {
            debug_assert_eq!(k, m, "union of classes with different constant values");
        }
        self.unions += 1;
        self.dirty = true;
        (keep, true)
    }

    /// Restores the congruence invariant after a batch of unions: re-canonicalizes
    /// every stored e-node, merges classes whose nodes have become identical, and
    /// propagates constants upward. Runs to a fixpoint; a no-op on a clean graph.
    pub fn rebuild(&mut self) {
        if !self.dirty {
            return;
        }
        loop {
            let mut changed = false;

            // Re-key the hash-cons table under canonical children/classes, and
            // union any classes that collide (congruence). The table is processed
            // in sorted order: HashMap iteration order is seeded per process, and
            // letting it leak into union order would make the surviving canonical
            // ids — and with them extraction tie-breaks, hence `Prog::saturated`
            // output — differ from run to run, which the content-addressed
            // synthesis cache cannot tolerate.
            let mut memo: Vec<(ENode, EClassId)> =
                std::mem::take(&mut self.memo).into_iter().collect();
            memo.sort_unstable();
            let mut pending: Vec<(EClassId, EClassId)> = Vec::new();
            let mut new_memo: HashMap<ENode, EClassId> = HashMap::with_capacity(memo.len());
            for (node, id) in memo {
                let node = self.canonicalize(&node);
                let id = self.find(id);
                match new_memo.get(&node) {
                    Some(&other) if self.find(other) != id => pending.push((other, id)),
                    Some(_) => {}
                    None => {
                        new_memo.insert(node, id);
                    }
                }
            }
            self.memo = new_memo;
            for (a, b) in pending {
                let (_, did) = self.union(a, b);
                changed |= did;
            }

            // Re-canonicalize and dedupe each class's node list, and fold any node
            // whose children have all become constant (upward propagation). Sorted
            // for the same reason as the memo loop above: the order of the
            // constant-unions below must not depend on hash-table iteration.
            let mut ids: Vec<u32> = self.classes.keys().copied().collect();
            ids.sort_unstable();
            let mut const_unions: Vec<(EClassId, BitVec)> = Vec::new();
            for raw in ids {
                let Some(class) = self.classes.get(&raw) else { continue };
                if self.find(EClassId(raw)).0 != raw {
                    continue;
                }
                let nodes = class.nodes.clone();
                let has_const = class.constant.is_some();
                let mut canon: Vec<ENode> = Vec::with_capacity(nodes.len());
                let mut folded: Option<BitVec> = None;
                for node in &nodes {
                    let c = self.canonicalize(node);
                    if !has_const && folded.is_none() {
                        folded = self.fold_node(&c);
                    }
                    if !canon.contains(&c) {
                        canon.push(c);
                    }
                }
                let class = self.classes.get_mut(&raw).expect("class still present");
                if canon != class.nodes {
                    class.nodes = canon;
                }
                if let Some(value) = folded {
                    class.constant = Some(value.clone());
                    const_unions.push((EClassId(raw), value));
                    changed = true;
                }
            }
            for (id, value) in const_unions {
                let cid = self.add(ENode::Const(value));
                let (_, did) = self.union(id, cid);
                changed |= did;
            }

            if !changed {
                break;
            }
        }
        self.dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(eg: &mut EGraph, v: u64, w: u32) -> EClassId {
        eg.add(ENode::Const(BitVec::from_u64(v, w)))
    }

    fn var(eg: &mut EGraph, name: &str, w: u32) -> EClassId {
        eg.add(ENode::Symbol { name: name.to_string(), width: w })
    }

    #[test]
    fn hash_consing_deduplicates() {
        let mut eg = EGraph::new();
        let x = var(&mut eg, "x", 8);
        let y = var(&mut eg, "y", 8);
        let a = eg.add(ENode::Op { op: BvOp::Add, args: vec![x, y] });
        let b = eg.add(ENode::Op { op: BvOp::Add, args: vec![x, y] });
        assert_eq!(a, b);
        assert_eq!(eg.num_classes(), 3);
        assert_eq!(eg.width(a), 8);
    }

    #[test]
    fn constant_folding_analysis() {
        let mut eg = EGraph::new();
        let a = c(&mut eg, 5, 8);
        let b = c(&mut eg, 7, 8);
        let sum = eg.add(ENode::Op { op: BvOp::Add, args: vec![a, b] });
        assert_eq!(eg.constant(sum), Some(&BitVec::from_u64(12, 8)));
        // The folded class contains the literal constant node.
        let twelve = c(&mut eg, 12, 8);
        assert!(eg.equiv(sum, twelve));
    }

    #[test]
    fn union_merges_and_congruence_propagates() {
        let mut eg = EGraph::new();
        let x = var(&mut eg, "x", 8);
        let y = var(&mut eg, "y", 8);
        let z = var(&mut eg, "z", 8);
        let xz = eg.add(ENode::Op { op: BvOp::Mul, args: vec![x, z] });
        let yz = eg.add(ENode::Op { op: BvOp::Mul, args: vec![y, z] });
        assert!(!eg.equiv(xz, yz));
        eg.union(x, y);
        eg.rebuild();
        // x = y forces x*z = y*z by congruence.
        assert!(eg.equiv(xz, yz));
    }

    #[test]
    fn union_with_constant_propagates_upward() {
        let mut eg = EGraph::new();
        let x = var(&mut eg, "x", 8);
        let two = c(&mut eg, 2, 8);
        let three = c(&mut eg, 3, 8);
        let sum = eg.add(ENode::Op { op: BvOp::Add, args: vec![x, three] });
        assert_eq!(eg.constant(sum), None);
        eg.union(x, two);
        eg.rebuild();
        assert_eq!(eg.constant(sum), Some(&BitVec::from_u64(5, 8)));
    }

    #[test]
    fn rebuild_is_idempotent() {
        let mut eg = EGraph::new();
        let x = var(&mut eg, "x", 4);
        let y = var(&mut eg, "y", 4);
        eg.union(x, y);
        eg.rebuild();
        let classes = eg.num_classes();
        let nodes = eg.total_enodes();
        eg.rebuild();
        assert_eq!(eg.num_classes(), classes);
        assert_eq!(eg.total_enodes(), nodes);
    }
}
