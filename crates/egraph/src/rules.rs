//! The QF_BV rewrite-rule set: the declarative port of `lr_smt::TermPool`'s
//! constructor-time rewrites, plus the associativity/commutativity axioms that
//! one-shot rewriting cannot exploit without committing to an application order.
//!
//! Constant folding is *not* a rule: it is the e-graph's analysis (every class
//! whose members fold carries its value and is unioned with the literal constant),
//! so re-associated constant chains such as `(x + 0xff) + 0x01` collapse as soon as
//! the associativity rules expose `0xff + 0x01` as a sub-term.
//!
//! Rules over parameterized operators (`extract`, `zext`, `sext`, the reductions)
//! are dynamic ([`Rewrite::dynamic`]) because a static pattern cannot bind the
//! widths embedded in the operator itself.

use std::sync::OnceLock;

use lr_bv::BitVec;
use lr_smt::BvOp;

use crate::graph::{EClass, EGraph, ENode};
use crate::pattern::{p, Recipe, Rewrite};

/// [`bv_rules`] built once and shared — callers on hot paths (the CEGIS
/// verification pre-fold runs per candidate) should use this instead of
/// re-allocating the rule set per query.
pub fn bv_rules_cached() -> &'static [Rewrite] {
    static RULES: OnceLock<Vec<Rewrite>> = OnceLock::new();
    RULES.get_or_init(bv_rules)
}

/// The full rule set over the shared bitvector operator language.
pub fn bv_rules() -> Vec<Rewrite> {
    let mut rules = vec![
        // --- commutativity ---
        Rewrite::rule(
            "add-comm",
            p::add(p::any("a"), p::any("b")),
            p::add(p::any("b"), p::any("a")),
        ),
        Rewrite::rule(
            "mul-comm",
            p::mul(p::any("a"), p::any("b")),
            p::mul(p::any("b"), p::any("a")),
        ),
        Rewrite::rule(
            "and-comm",
            p::and(p::any("a"), p::any("b")),
            p::and(p::any("b"), p::any("a")),
        ),
        Rewrite::rule("or-comm", p::or(p::any("a"), p::any("b")), p::or(p::any("b"), p::any("a"))),
        Rewrite::rule(
            "xor-comm",
            p::xor(p::any("a"), p::any("b")),
            p::xor(p::any("b"), p::any("a")),
        ),
        Rewrite::rule("eq-comm", p::eq(p::any("a"), p::any("b")), p::eq(p::any("b"), p::any("a"))),
        // --- associativity (one direction each; commutativity supplies the rest) ---
        Rewrite::rule(
            "add-assoc",
            p::add(p::add(p::any("a"), p::any("b")), p::any("c")),
            p::add(p::any("a"), p::add(p::any("b"), p::any("c"))),
        ),
        Rewrite::rule(
            "mul-assoc",
            p::mul(p::mul(p::any("a"), p::any("b")), p::any("c")),
            p::mul(p::any("a"), p::mul(p::any("b"), p::any("c"))),
        ),
        Rewrite::rule(
            "and-assoc",
            p::and(p::and(p::any("a"), p::any("b")), p::any("c")),
            p::and(p::any("a"), p::and(p::any("b"), p::any("c"))),
        ),
        Rewrite::rule(
            "or-assoc",
            p::or(p::or(p::any("a"), p::any("b")), p::any("c")),
            p::or(p::any("a"), p::or(p::any("b"), p::any("c"))),
        ),
        Rewrite::rule(
            "xor-assoc",
            p::xor(p::xor(p::any("a"), p::any("b")), p::any("c")),
            p::xor(p::any("a"), p::xor(p::any("b"), p::any("c"))),
        ),
        // --- identities and annihilators ---
        Rewrite::rule("add-zero", p::add(p::any("x"), p::zero()), p::any("x")),
        Rewrite::rule("mul-one", p::mul(p::any("x"), p::one()), p::any("x")),
        Rewrite::rule("mul-zero", p::mul(p::any("x"), p::zero()), p::zero()),
        Rewrite::rule("and-zero", p::and(p::any("x"), p::zero()), p::zero()),
        Rewrite::rule("and-ones", p::and(p::any("x"), p::all_ones()), p::any("x")),
        Rewrite::rule("and-self", p::and(p::any("x"), p::any("x")), p::any("x")),
        Rewrite::rule("or-zero", p::or(p::any("x"), p::zero()), p::any("x")),
        Rewrite::rule("or-ones", p::or(p::any("x"), p::all_ones()), p::all_ones()),
        Rewrite::rule("or-self", p::or(p::any("x"), p::any("x")), p::any("x")),
        Rewrite::rule("xor-zero", p::xor(p::any("x"), p::zero()), p::any("x")),
        Rewrite::rule("xor-self", p::xor(p::any("x"), p::any("x")), p::zero()),
        // --- subtraction and negation normalization (the PR-2 monster killers) ---
        Rewrite::rule("sub-self", p::sub(p::any("x"), p::any("x")), p::zero()),
        Rewrite::rule("sub-zero", p::sub(p::any("x"), p::zero()), p::any("x")),
        Rewrite::rule("zero-sub", p::sub(p::zero(), p::any("x")), p::neg(p::any("x"))),
        Rewrite::rule(
            "sub-to-add-neg",
            p::sub(p::any("x"), p::any("y")),
            p::add(p::any("x"), p::neg(p::any("y"))),
        ),
        Rewrite::rule(
            "sub-neg",
            p::sub(p::any("x"), p::neg(p::any("y"))),
            p::add(p::any("x"), p::any("y")),
        ),
        Rewrite::rule(
            "sub-mirror",
            p::sub(p::any("x"), p::any("y")),
            p::neg(p::sub(p::any("y"), p::any("x"))),
        ),
        Rewrite::rule("neg-neg", p::neg(p::neg(p::any("x"))), p::any("x")),
        Rewrite::rule("not-not", p::not(p::not(p::any("x"))), p::any("x")),
        Rewrite::rule(
            "neg-mul",
            p::mul(p::neg(p::any("x")), p::any("y")),
            p::neg(p::mul(p::any("x"), p::any("y"))),
        ),
        Rewrite::rule(
            "neg-add",
            p::neg(p::add(p::any("x"), p::any("y"))),
            p::add(p::neg(p::any("x")), p::neg(p::any("y"))),
        ),
        // --- shifts ---
        Rewrite::rule("shl-zero", p::shl(p::any("x"), p::zero()), p::any("x")),
        Rewrite::rule("lshr-zero", p::lshr(p::any("x"), p::zero()), p::any("x")),
        Rewrite::rule("ashr-zero", p::ashr(p::any("x"), p::zero()), p::any("x")),
        // --- comparisons against self (1-bit results, so One ≡ true) ---
        Rewrite::rule("eq-self", p::eq(p::any("x"), p::any("x")), p::one()),
        Rewrite::rule("ult-self", p::ult(p::any("x"), p::any("x")), p::zero()),
        Rewrite::rule("slt-self", p::slt(p::any("x"), p::any("x")), p::zero()),
        Rewrite::rule("ule-self", p::ule(p::any("x"), p::any("x")), p::one()),
        Rewrite::rule("sle-self", p::sle(p::any("x"), p::any("x")), p::one()),
        // --- if-then-else ---
        Rewrite::rule("ite-same", p::ite(p::any("c"), p::any("x"), p::any("x")), p::any("x")),
    ];
    rules.push(Rewrite::dynamic("ite-const", ite_const));
    rules.push(Rewrite::dynamic("ext-compose", ext_compose));
    rules.push(Rewrite::dynamic("extract-narrow", extract_narrow));
    rules.push(Rewrite::dynamic("reduce-1bit", reduce_1bit));
    rules
}

/// `ite(c, t, e)` with a constant condition selects a branch.
fn ite_const(eg: &EGraph, _class: &EClass, node: &ENode) -> Vec<Recipe> {
    let ENode::Op { op: BvOp::Ite, args } = node else { return Vec::new() };
    match eg.constant(args[0]) {
        Some(c) if c.is_zero() => vec![Recipe::Class(args[2])],
        Some(_) => vec![Recipe::Class(args[1])],
        None => Vec::new(),
    }
}

/// Extension simplification: `zext`/`sext` to the same width vanish, and nested
/// same-kind extensions compose.
fn ext_compose(eg: &EGraph, _class: &EClass, node: &ENode) -> Vec<Recipe> {
    let ENode::Op { op, args } = node else { return Vec::new() };
    let (new_width, signed) = match op {
        BvOp::ZeroExt { width } => (*width, false),
        BvOp::SignExt { width } => (*width, true),
        _ => return Vec::new(),
    };
    let arg = args[0];
    if eg.width(arg) == new_width {
        return vec![Recipe::Class(arg)];
    }
    let mut out = Vec::new();
    for inner in &eg.class(arg).nodes {
        let ENode::Op { op: inner_op, args: inner_args } = inner else { continue };
        match (signed, inner_op) {
            (false, BvOp::ZeroExt { .. }) => {
                out.push(Recipe::Node(
                    BvOp::ZeroExt { width: new_width },
                    vec![Recipe::Class(inner_args[0])],
                ));
            }
            (true, BvOp::SignExt { .. }) => {
                out.push(Recipe::Node(
                    BvOp::SignExt { width: new_width },
                    vec![Recipe::Class(inner_args[0])],
                ));
            }
            _ => {}
        }
    }
    out
}

/// The low-bit narrowing family: `extract[k:0]` distributes over operators whose
/// low result bits depend only on low operand bits, extract-of-extract composes,
/// and extracts resolve through `concat`/`zext`/`sext`. This is what lets a DSP
/// configuration computing at 48 bits and truncating meet the behavioral spec
/// computing at the design width.
fn extract_narrow(eg: &EGraph, class: &EClass, node: &ENode) -> Vec<Recipe> {
    let ENode::Op { op: BvOp::Extract { hi, lo }, args } = node else { return Vec::new() };
    let (hi, lo) = (*hi, *lo);
    let arg = args[0];
    if lo == 0 && hi + 1 == eg.width(arg) {
        return vec![Recipe::Class(arg)];
    }
    let mut out = Vec::new();
    let narrow = |target| Recipe::Node(BvOp::Extract { hi, lo: 0 }, vec![Recipe::Class(target)]);
    for inner in &eg.class(arg).nodes {
        let ENode::Op { op: inner_op, args: inner_args } = inner else { continue };
        match inner_op {
            BvOp::Add | BvOp::Sub | BvOp::Mul | BvOp::And | BvOp::Or | BvOp::Xor if lo == 0 => {
                out.push(Recipe::Node(
                    *inner_op,
                    vec![narrow(inner_args[0]), narrow(inner_args[1])],
                ));
            }
            BvOp::Not | BvOp::Neg if lo == 0 => {
                out.push(Recipe::Node(*inner_op, vec![narrow(inner_args[0])]));
            }
            BvOp::Ite if lo == 0 => {
                out.push(Recipe::Node(
                    BvOp::Ite,
                    vec![
                        Recipe::Class(inner_args[0]),
                        narrow(inner_args[1]),
                        narrow(inner_args[2]),
                    ],
                ));
            }
            BvOp::Shl if lo == 0 => {
                // Low bits of a left shift depend only on low bits of the value,
                // provided the (constant) amount still fits the narrowed width.
                if let Some(amount) = eg.constant(inner_args[1]).and_then(|a| a.to_u64()) {
                    if amount > u64::from(hi) {
                        out.push(Recipe::Const(BitVec::zeros(class.width)));
                    } else {
                        out.push(Recipe::Node(
                            BvOp::Shl,
                            vec![
                                narrow(inner_args[0]),
                                Recipe::Const(BitVec::from_u64(amount, hi + 1)),
                            ],
                        ));
                    }
                }
            }
            BvOp::Extract { lo: lo2, .. } => {
                out.push(Recipe::Node(
                    BvOp::Extract { hi: hi + lo2, lo: lo + lo2 },
                    vec![Recipe::Class(inner_args[0])],
                ));
            }
            BvOp::Concat => {
                let lo_width = eg.width(inner_args[1]);
                if hi < lo_width {
                    out.push(Recipe::Node(
                        BvOp::Extract { hi, lo },
                        vec![Recipe::Class(inner_args[1])],
                    ));
                } else if lo >= lo_width {
                    out.push(Recipe::Node(
                        BvOp::Extract { hi: hi - lo_width, lo: lo - lo_width },
                        vec![Recipe::Class(inner_args[0])],
                    ));
                }
            }
            BvOp::ZeroExt { .. } | BvOp::SignExt { .. } => {
                let orig_width = eg.width(inner_args[0]);
                if hi < orig_width {
                    out.push(Recipe::Node(
                        BvOp::Extract { hi, lo },
                        vec![Recipe::Class(inner_args[0])],
                    ));
                } else if matches!(inner_op, BvOp::ZeroExt { .. }) && lo >= orig_width {
                    out.push(Recipe::Const(BitVec::zeros(class.width)));
                }
            }
            _ => {}
        }
    }
    out
}

/// Reductions over 1-bit operands are the identity.
fn reduce_1bit(eg: &EGraph, _class: &EClass, node: &ENode) -> Vec<Recipe> {
    let ENode::Op { op: BvOp::RedOr | BvOp::RedAnd | BvOp::RedXor, args } = node else {
        return Vec::new();
    };
    if eg.width(args[0]) == 1 {
        vec![Recipe::Class(args[0])]
    } else {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{saturate, Limits};

    fn sym(eg: &mut EGraph, name: &str, w: u32) -> crate::graph::EClassId {
        eg.add(ENode::Symbol { name: name.to_string(), width: w })
    }

    fn op2(
        eg: &mut EGraph,
        op: BvOp,
        a: crate::graph::EClassId,
        b: crate::graph::EClassId,
    ) -> crate::graph::EClassId {
        eg.add(ENode::Op { op, args: vec![a, b] })
    }

    #[test]
    fn commutativity_and_identity_saturate() {
        let mut eg = EGraph::new();
        let x = sym(&mut eg, "x", 8);
        let y = sym(&mut eg, "y", 8);
        let xy = op2(&mut eg, BvOp::Add, x, y);
        let yx = op2(&mut eg, BvOp::Add, y, x);
        saturate(&mut eg, &bv_rules(), &Limits::default());
        assert!(eg.equiv(xy, yx));
    }

    #[test]
    fn constant_chains_reassociate_and_fold() {
        // ((x + 0xff) + 0x01) ≡ x: associativity exposes 0xff + 0x01 = 0.
        let mut eg = EGraph::new();
        let x = sym(&mut eg, "x", 8);
        let ff = eg.add(ENode::Const(BitVec::from_u64(0xff, 8)));
        let one = eg.add(ENode::Const(BitVec::from_u64(1, 8)));
        let t = op2(&mut eg, BvOp::Add, x, ff);
        let t = op2(&mut eg, BvOp::Add, t, one);
        saturate(&mut eg, &bv_rules(), &Limits::default());
        assert!(eg.equiv(t, x));
    }

    #[test]
    fn mirrored_subtraction_meets_negation() {
        // b − a ≡ −(a − b).
        let mut eg = EGraph::new();
        let a = sym(&mut eg, "a", 8);
        let b = sym(&mut eg, "b", 8);
        let ab = op2(&mut eg, BvOp::Sub, a, b);
        let ba = op2(&mut eg, BvOp::Sub, b, a);
        let neg_ab = eg.add(ENode::Op { op: BvOp::Neg, args: vec![ab] });
        saturate(&mut eg, &bv_rules(), &Limits::default());
        assert!(eg.equiv(ba, neg_ab));
    }

    #[test]
    fn extract_distributes_and_composes() {
        let mut eg = EGraph::new();
        let x = sym(&mut eg, "x", 8);
        let y = sym(&mut eg, "y", 8);
        // extract[3:0](x + y) ≡ extract[3:0](x) + extract[3:0](y).
        let sum = op2(&mut eg, BvOp::Add, x, y);
        let lhs = eg.add(ENode::Op { op: BvOp::Extract { hi: 3, lo: 0 }, args: vec![sum] });
        let ex = eg.add(ENode::Op { op: BvOp::Extract { hi: 3, lo: 0 }, args: vec![x] });
        let ey = eg.add(ENode::Op { op: BvOp::Extract { hi: 3, lo: 0 }, args: vec![y] });
        let rhs = op2(&mut eg, BvOp::Add, ex, ey);
        // extract over a zext resolves to the original term.
        let wide = eg.add(ENode::Op { op: BvOp::ZeroExt { width: 32 }, args: vec![x] });
        let low = eg.add(ENode::Op { op: BvOp::Extract { hi: 7, lo: 0 }, args: vec![wide] });
        saturate(&mut eg, &bv_rules(), &Limits::default());
        assert!(eg.equiv(lhs, rhs));
        assert!(eg.equiv(low, x));
    }
}
