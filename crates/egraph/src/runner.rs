//! Bounded equality saturation: apply every rule everywhere, rebuild, repeat until
//! a fixpoint or a resource limit.

use crate::graph::{EClassId, EGraph};
use crate::pattern::{instantiate, match_in_class, Recipe, Rewrite, RewriteKind, Subst};

/// Resource limits bounding a saturation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of search/apply/rebuild iterations.
    pub max_iterations: usize,
    /// Stop once the graph holds this many e-nodes (checked between iterations, so
    /// the final graph may overshoot by one iteration's growth).
    pub max_nodes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_iterations: 16, max_nodes: 10_000 }
    }
}

impl Limits {
    /// The tighter budget used when folding CEGIS verification disequalities: those
    /// queries sit on the synthesis hot path, so saturation must stay cheap even
    /// when it fails to decide the query. Decidable disequalities stop early via
    /// the goal short-circuit (the PR-2 monster forms fold within 6 iterations and
    /// ~300 e-nodes); this cap only bounds the wasted work on queries saturation
    /// cannot decide, which go to SAT regardless.
    pub fn verifier() -> Self {
        Limits { max_iterations: 7, max_nodes: 1_200 }
    }
}

/// Why a saturation run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A fixpoint: no rule application changed the graph.
    Saturated,
    /// The iteration limit was reached.
    IterationLimit,
    /// The node limit was reached.
    NodeLimit,
    /// The goal class's constant value was decided (see [`saturate_with_goal`]),
    /// so further saturation could not change the answer.
    GoalDecided,
}

/// Counters describing one saturation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaturationStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Total pattern/dynamic matches found across all iterations.
    pub matches: u64,
    /// Unions performed (including congruence repairs).
    pub unions: u64,
    /// E-nodes in the graph when the run stopped.
    pub enodes: usize,
    /// E-classes in the graph when the run stopped.
    pub classes: usize,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// Runs the rules to saturation (or a limit) and reports statistics.
pub fn saturate(egraph: &mut EGraph, rules: &[Rewrite], limits: &Limits) -> SaturationStats {
    saturate_with_goal(egraph, rules, limits, None)
}

/// [`saturate`] with an early exit: once `goal`'s constant value is decided the
/// run stops, because no further rewriting can change a constant. This is what
/// keeps the verification pre-fold cheap — a disequality that is going to fold to
/// `false` usually does so in the first few iterations, and paying the full node
/// budget after the answer is known would waste exactly the time the pre-fold is
/// supposed to save.
pub fn saturate_with_goal(
    egraph: &mut EGraph,
    rules: &[Rewrite],
    limits: &Limits,
    goal: Option<EClassId>,
) -> SaturationStats {
    let mut sp = lr_trace::span("egraph-saturate");
    let stats = saturate_goal_inner(egraph, rules, limits, goal);
    if sp.is_active() {
        sp.attr("iterations", stats.iterations as u64);
        sp.attr("matches", stats.matches);
        sp.attr("unions", stats.unions);
        sp.attr("enodes", stats.enodes as u64);
        sp.attr("classes", stats.classes as u64);
    }
    stats
}

fn saturate_goal_inner(
    egraph: &mut EGraph,
    rules: &[Rewrite],
    limits: &Limits,
    goal: Option<EClassId>,
) -> SaturationStats {
    egraph.rebuild();
    let mut stats = SaturationStats {
        iterations: 0,
        matches: 0,
        unions: 0,
        enodes: egraph.total_enodes(),
        classes: egraph.num_classes(),
        stop: StopReason::IterationLimit,
    };
    let unions_at_start = egraph.union_count();
    if let Some(goal) = goal {
        if egraph.constant(goal).is_some() {
            stats.stop = StopReason::GoalDecided;
            stats.unions = 0;
            return stats;
        }
    }
    for _ in 0..limits.max_iterations {
        stats.iterations += 1;
        let unions_before = egraph.union_count();
        let nodes_before = egraph.nodes_added();

        // Search phase (immutable): collect every (matched class, production).
        let mut pattern_apps: Vec<(EClassId, u32, &crate::pattern::Pattern, Subst)> = Vec::new();
        let mut dyn_apps: Vec<(EClassId, Recipe)> = Vec::new();
        let ids = egraph.class_ids();
        for rule in rules {
            match &rule.kind {
                RewriteKind::Rule { lhs, rhs } => {
                    for &id in &ids {
                        let class = egraph.class(id);
                        for subst in match_in_class(egraph, lhs, class, &Subst::default()) {
                            pattern_apps.push((id, class.width, rhs, subst));
                        }
                    }
                }
                RewriteKind::Dyn(f) => {
                    for &id in &ids {
                        let class = egraph.class(id);
                        for node in &class.nodes {
                            for recipe in f(egraph, class, node) {
                                dyn_apps.push((id, recipe));
                            }
                        }
                    }
                }
            }
        }
        stats.matches += (pattern_apps.len() + dyn_apps.len()) as u64;

        // Apply phase (mutable): instantiate productions and union.
        for (id, width, rhs, subst) in pattern_apps {
            let new = instantiate(egraph, rhs, &subst, width);
            egraph.union(id, new);
        }
        for (id, recipe) in dyn_apps {
            let new = recipe.build(egraph);
            egraph.union(id, new);
        }
        egraph.rebuild();

        stats.enodes = egraph.total_enodes();
        stats.classes = egraph.num_classes();
        if let Some(goal) = goal {
            if egraph.constant(goal).is_some() {
                stats.stop = StopReason::GoalDecided;
                break;
            }
        }
        if egraph.union_count() == unions_before && egraph.nodes_added() == nodes_before {
            stats.stop = StopReason::Saturated;
            break;
        }
        if stats.enodes >= limits.max_nodes {
            stats.stop = StopReason::NodeLimit;
            break;
        }
    }
    stats.unions = egraph.union_count() - unions_at_start;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ENode;
    use crate::pattern::{p, Rewrite};
    use crate::rules::bv_rules;
    use lr_bv::BitVec;
    use lr_smt::BvOp;

    #[test]
    fn saturation_reaches_fixpoint_on_identities() {
        let mut eg = EGraph::new();
        let x = eg.add(ENode::Symbol { name: "x".into(), width: 8 });
        let zero = eg.add(ENode::Const(BitVec::zeros(8)));
        let sum = eg.add(ENode::Op { op: BvOp::Add, args: vec![x, zero] });
        let rules = vec![Rewrite::rule("add-zero", p::add(p::any("x"), p::zero()), p::any("x"))];
        let stats = saturate(&mut eg, &rules, &Limits::default());
        assert_eq!(stats.stop, StopReason::Saturated);
        assert!(stats.matches >= 1);
        assert!(eg.equiv(sum, x));
    }

    #[test]
    fn node_limit_stops_runaway_growth() {
        // Associativity + commutativity over a long chain grows fast; a tiny node
        // budget must stop it without hanging.
        let mut eg = EGraph::new();
        let mut acc = eg.add(ENode::Symbol { name: "v0".into(), width: 8 });
        for i in 1..10 {
            let v = eg.add(ENode::Symbol { name: format!("v{i}"), width: 8 });
            acc = eg.add(ENode::Op { op: BvOp::Add, args: vec![acc, v] });
        }
        let limits = Limits { max_iterations: 50, max_nodes: 60 };
        let stats = saturate(&mut eg, &bv_rules(), &limits);
        assert_eq!(stats.stop, StopReason::NodeLimit);
    }

    #[test]
    fn iteration_limit_is_respected() {
        let mut eg = EGraph::new();
        let mut acc = eg.add(ENode::Symbol { name: "v0".into(), width: 8 });
        for i in 1..8 {
            let v = eg.add(ENode::Symbol { name: format!("v{i}"), width: 8 });
            acc = eg.add(ENode::Op { op: BvOp::Mul, args: vec![acc, v] });
        }
        let limits = Limits { max_iterations: 2, max_nodes: usize::MAX };
        let stats = saturate(&mut eg, &bv_rules(), &limits);
        assert!(stats.iterations <= 2);
    }
}
