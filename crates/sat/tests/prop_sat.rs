//! Property-based tests: the CDCL solver is checked against a brute-force truth-table
//! enumeration on small random CNF instances, for every portfolio configuration.

use lr_sat::{Lit, SolveResult, Solver, SolverConfig, Var};
use proptest::prelude::*;

/// A random CNF instance over `nvars` variables, as signed integers (DIMACS-style,
/// 1-based; negative = negated).
#[derive(Debug, Clone)]
struct Cnf {
    nvars: usize,
    clauses: Vec<Vec<i32>>,
}

fn cnf_strategy(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    (2..=max_vars).prop_flat_map(move |nvars| {
        let lit = (1..=nvars as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
        let clause = proptest::collection::vec(lit, 1..=3);
        proptest::collection::vec(clause, 1..=max_clauses)
            .prop_map(move |clauses| Cnf { nvars, clauses })
    })
}

fn brute_force_sat(cnf: &Cnf) -> bool {
    let n = cnf.nvars;
    for assignment in 0u64..(1u64 << n) {
        let ok = cnf.clauses.iter().all(|clause| {
            clause.iter().any(|&l| {
                let value = (assignment >> (l.unsigned_abs() - 1)) & 1 == 1;
                if l > 0 {
                    value
                } else {
                    !value
                }
            })
        });
        if ok {
            return true;
        }
    }
    false
}

fn run_solver(cnf: &Cnf, config: SolverConfig) -> (SolveResult, Option<Vec<bool>>) {
    let mut solver = Solver::with_config(config);
    let vars: Vec<Var> = (0..cnf.nvars).map(|_| solver.new_var()).collect();
    for clause in &cnf.clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
            .collect();
        solver.add_clause(&lits);
    }
    let result = solver.solve();
    let model = if result == SolveResult::Sat {
        Some(vars.iter().map(|&v| solver.value(v).unwrap()).collect())
    } else {
        None
    };
    (result, model)
}

fn model_satisfies(cnf: &Cnf, model: &[bool]) -> bool {
    cnf.clauses.iter().all(|clause| {
        clause.iter().any(|&l| {
            let value = model[(l.unsigned_abs() - 1) as usize];
            if l > 0 {
                value
            } else {
                !value
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn cdcl_agrees_with_brute_force(cnf in cnf_strategy(8, 24)) {
        let expected = brute_force_sat(&cnf);
        let (result, model) = run_solver(&cnf, SolverConfig::default());
        prop_assert_eq!(result, if expected { SolveResult::Sat } else { SolveResult::Unsat });
        if let Some(model) = model {
            prop_assert!(model_satisfies(&cnf, &model), "returned model does not satisfy the CNF");
        }
    }

    #[test]
    fn all_portfolio_configs_agree(cnf in cnf_strategy(6, 16)) {
        let expected = brute_force_sat(&cnf);
        for config in SolverConfig::portfolio() {
            let name = config.name.clone();
            let (result, model) = run_solver(&cnf, config);
            prop_assert_eq!(
                result,
                if expected { SolveResult::Sat } else { SolveResult::Unsat },
                "config {} disagrees with brute force", name
            );
            if let Some(model) = model {
                prop_assert!(model_satisfies(&cnf, &model));
            }
        }
    }

    #[test]
    fn assumptions_are_respected(cnf in cnf_strategy(6, 12), polarity in proptest::bool::ANY) {
        // Solve with an assumption on variable 1 and check the model honours it.
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..cnf.nvars).map(|_| solver.new_var()).collect();
        for clause in &cnf.clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
                .collect();
            solver.add_clause(&lits);
        }
        let assumption = Lit::new(vars[0], !polarity);
        if solver.solve_with_assumptions(&[assumption]) == SolveResult::Sat {
            prop_assert_eq!(solver.value(vars[0]), Some(polarity));
            let model: Vec<bool> = vars.iter().map(|&v| solver.value(v).unwrap()).collect();
            prop_assert!(model_satisfies(&cnf, &model));
        }
    }
}
