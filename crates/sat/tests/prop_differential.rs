//! Differential property tests for the modernized CDCL core: every random CNF
//! instance is solved by the old-style configuration (activity-only clause
//! deletion + Luby restarts) and the new-style one (LBD-tiered database + EMA
//! restarts); verdicts must agree, models must satisfy the clause set, and the
//! statistics invariants of the tiered database must hold after reduction.

use lr_sat::{ClauseDbMode, Lit, RestartMode, SolveResult, Solver, SolverConfig, Var};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Cnf {
    nvars: usize,
    clauses: Vec<Vec<i32>>,
}

fn cnf_strategy(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    (2..=max_vars).prop_flat_map(move |nvars| {
        let lit = (1..=nvars as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
        let clause = proptest::collection::vec(lit, 1..=4);
        proptest::collection::vec(clause, 1..=max_clauses)
            .prop_map(move |clauses| Cnf { nvars, clauses })
    })
}

fn old_style() -> SolverConfig {
    let cfg = SolverConfig::legacy();
    assert_eq!(cfg.restart_mode, RestartMode::Luby);
    assert_eq!(cfg.db_mode, ClauseDbMode::Activity);
    cfg
}

fn new_style() -> SolverConfig {
    let cfg = SolverConfig::default();
    assert_eq!(cfg.restart_mode, RestartMode::Ema);
    assert_eq!(cfg.db_mode, ClauseDbMode::Tiered);
    cfg
}

fn load(cnf: &Cnf, config: SolverConfig) -> (Solver, Vec<Var>) {
    let mut solver = Solver::with_config(config);
    let vars: Vec<Var> = (0..cnf.nvars).map(|_| solver.new_var()).collect();
    for clause in &cnf.clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0))
            .collect();
        solver.add_clause(&lits);
    }
    (solver, vars)
}

fn model_satisfies(cnf: &Cnf, model: &[bool]) -> bool {
    cnf.clauses.iter().all(|clause| {
        clause.iter().any(|&l| {
            let value = model[(l.unsigned_abs() - 1) as usize];
            if l > 0 {
                value
            } else {
                !value
            }
        })
    })
}

/// The counter invariants every solve must maintain.
fn check_stats_invariants(solver: &Solver, label: &str) -> Result<(), TestCaseError> {
    let st = solver.stats();
    prop_assert_eq!(
        st.total_learnt(),
        st.learnt_clauses + st.deleted_clauses,
        "{}: glue histogram must count every learnt clause exactly once",
        label
    );
    prop_assert_eq!(
        st.core_clauses + st.mid_clauses + st.local_clauses,
        st.learnt_clauses,
        "{}: tier sizes must partition the live learnt database",
        label
    );
    prop_assert!(
        st.learnt_literals >= 2 * st.total_learnt(),
        "{}: every stored learnt clause has at least two literals",
        label
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Old-style and new-style configurations must agree on every verdict, and any
    /// model either returns must satisfy the clause set.
    #[test]
    fn old_and_new_configs_agree(cnf in cnf_strategy(10, 40)) {
        let (mut old, old_vars) = load(&cnf, old_style());
        let (mut new, new_vars) = load(&cnf, new_style());
        let old_verdict = old.solve();
        let new_verdict = new.solve();
        prop_assert_eq!(old_verdict, new_verdict, "verdict drift between clause-db policies");
        for (solver, vars, label) in [(&old, &old_vars, "old"), (&new, &new_vars, "new")] {
            if old_verdict == SolveResult::Sat {
                let model: Vec<bool> = vars.iter().map(|&v| solver.value(v).unwrap()).collect();
                prop_assert!(model_satisfies(&cnf, &model), "{} model violates the CNF", label);
            }
        }
        check_stats_invariants(&old, "old")?;
        check_stats_invariants(&new, "new")?;
    }

    /// Aggressive database reduction must never change a verdict, and the stats
    /// invariants must hold right after `reduce_db` ran (forced via a tiny
    /// reduction interval).
    #[test]
    fn reduction_pressure_preserves_verdicts(cnf in cnf_strategy(10, 40)) {
        let (mut reference, _) = load(&cnf, new_style());
        let expected = reference.solve();
        for (label, config) in [
            ("tiered", SolverConfig { reduce_interval: 8, ..new_style() }),
            ("activity", SolverConfig { reduce_interval: 8, ..old_style() }),
        ] {
            let (mut solver, vars) = load(&cnf, config);
            prop_assert_eq!(solver.solve(), expected, "{} under reduction pressure", label);
            if expected == SolveResult::Sat {
                let model: Vec<bool> = vars.iter().map(|&v| solver.value(v).unwrap()).collect();
                prop_assert!(model_satisfies(&cnf, &model));
            }
            check_stats_invariants(&solver, label)?;
        }
    }

    /// Restarts and conflicts are monotone across repeated solves on the same
    /// solver (incremental use), and re-solving the same instance keeps the
    /// verdict.
    #[test]
    fn restarts_and_conflicts_are_monotone_across_solves(cnf in cnf_strategy(8, 24)) {
        let (mut solver, _) = load(&cnf, new_style());
        let v1 = solver.solve();
        let s1 = solver.stats();
        let v2 = solver.solve();
        let s2 = solver.stats();
        prop_assert_eq!(v1, v2);
        prop_assert!(s2.restarts >= s1.restarts, "restarts must never decrease");
        prop_assert!(s2.conflicts >= s1.conflicts, "conflicts must never decrease");
        prop_assert!(s2.propagations >= s1.propagations);
        prop_assert!(s2.deleted_clauses >= s1.deleted_clauses);
        check_stats_invariants(&solver, "resolve")?;
    }

    /// The DIMACS escape hatch round-trips arbitrary instances: the replayed
    /// solver reaches the same verdict under both configurations.
    #[test]
    fn dimacs_round_trip_agrees(cnf in cnf_strategy(8, 24)) {
        let (mut solver, _) = load(&cnf, new_style());
        let text = solver.to_dimacs();
        let expected = solver.solve();
        let mut modern = Solver::from_dimacs(&text).unwrap();
        prop_assert_eq!(modern.solve(), expected);
        let mut legacy = Solver::from_dimacs_with_config(&text, old_style()).unwrap();
        prop_assert_eq!(legacy.solve(), expected);
    }
}

/// Deterministic (non-proptest) check that deletion actually happens under
/// pressure and the histogram keeps accounting for deleted clauses.
#[test]
fn tiered_reduction_deletes_but_keeps_accounting() {
    let config = SolverConfig { reduce_interval: 40, ..SolverConfig::default() };
    let mut solver = Solver::with_config(config);
    // Pigeonhole 8→7: hard enough to force thousands of conflicts.
    let p: Vec<Vec<Var>> = (0..8).map(|_| (0..7).map(|_| solver.new_var()).collect()).collect();
    for row in &p {
        let clause: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
        solver.add_clause(&clause);
    }
    for j in 0..7 {
        for (i, row1) in p.iter().enumerate() {
            for row2 in &p[i + 1..] {
                solver.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
            }
        }
    }
    assert_eq!(solver.solve(), SolveResult::Unsat);
    let st = solver.stats();
    assert!(st.deleted_clauses > 0, "reduction must fire under a tiny interval");
    assert!(st.minimized_literals > 0, "pigeonhole learnt clauses minimize");
    assert_eq!(st.total_learnt(), st.learnt_clauses + st.deleted_clauses);
    assert_eq!(st.core_clauses + st.mid_clauses + st.local_clauses, st.learnt_clauses);
}
