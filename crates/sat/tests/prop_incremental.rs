//! Property-based tests for *incremental* solver use: the access pattern the
//! incremental CEGIS loop relies on. One solver instance is solved repeatedly while
//! clauses are added between calls (so learnt clauses from earlier solves stay in
//! the database), and queries are posed under assumptions. Every verdict must agree
//! with a fresh solver given the same final clause set, and contradictory
//! assumptions must yield Unsat without corrupting the trail for later solves.

use lr_sat::{Lit, SolveResult, Solver, SolverConfig, Var};
use proptest::prelude::*;

/// A random CNF instance over `nvars` variables, as signed integers (DIMACS-style,
/// 1-based; negative = negated).
#[derive(Debug, Clone)]
struct Cnf {
    nvars: usize,
    clauses: Vec<Vec<i32>>,
}

fn cnf_strategy(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    (2..=max_vars).prop_flat_map(move |nvars| {
        let lit = (1..=nvars as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
        let clause = proptest::collection::vec(lit, 1..=3);
        proptest::collection::vec(clause, 1..=max_clauses)
            .prop_map(move |clauses| Cnf { nvars, clauses })
    })
}

/// Two clause batches over a shared variable count, added to one solver in sequence.
fn two_batches(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = (Cnf, Vec<Vec<i32>>)> {
    cnf_strategy(max_vars, max_clauses).prop_flat_map(move |first| {
        let nvars = first.nvars;
        let lit = (1..=nvars as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
        let clause = proptest::collection::vec(lit, 1..=3);
        proptest::collection::vec(clause, 0..=max_clauses)
            .prop_map(move |second| (first.clone(), second))
    })
}

fn to_lits(vars: &[Var], clause: &[i32]) -> Vec<Lit> {
    clause.iter().map(|&l| Lit::new(vars[(l.unsigned_abs() - 1) as usize], l < 0)).collect()
}

fn brute_force_sat(nvars: usize, clauses: &[Vec<i32>]) -> bool {
    (0u64..(1u64 << nvars)).any(|assignment| {
        clauses.iter().all(|clause| {
            clause.iter().any(|&l| {
                let value = (assignment >> (l.unsigned_abs() - 1)) & 1 == 1;
                if l > 0 {
                    value
                } else {
                    !value
                }
            })
        })
    })
}

fn model_satisfies(clauses: &[Vec<i32>], model: &[bool]) -> bool {
    clauses.iter().all(|clause| {
        clause.iter().any(|&l| {
            let value = model[(l.unsigned_abs() - 1) as usize];
            if l > 0 {
                value
            } else {
                !value
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Solve, add more clauses (keeping whatever was learnt), and re-solve: the
    /// verdict must agree with a fresh solver on the union, and the model (if any)
    /// must satisfy every clause of both batches.
    #[test]
    fn reused_solver_agrees_with_fresh_solver((first, second) in two_batches(8, 16)) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..first.nvars).map(|_| solver.new_var()).collect();
        for clause in &first.clauses {
            solver.add_clause(&to_lits(&vars, clause));
        }
        let _ = solver.solve(); // populate learnt clauses / saved phases / trail
        for clause in &second {
            solver.add_clause(&to_lits(&vars, clause));
        }
        let reused = solver.solve();

        let union: Vec<Vec<i32>> =
            first.clauses.iter().chain(second.iter()).cloned().collect();
        let expected =
            if brute_force_sat(first.nvars, &union) { SolveResult::Sat } else { SolveResult::Unsat };
        prop_assert_eq!(reused, expected, "reused solver disagrees on the union clause set");
        if reused == SolveResult::Sat {
            let model: Vec<bool> = vars.iter().map(|&v| solver.value(v).unwrap()).collect();
            prop_assert!(model_satisfies(&union, &model), "reused solver's model violates a clause");
        }
    }

    /// Assumptions that contradict each other — or clauses the solver has already
    /// learnt from — must return Unsat and leave the solver able to answer the
    /// unassumed query correctly afterwards (no corrupted trail or stuck
    /// assignment).
    #[test]
    fn contradictory_assumptions_do_not_corrupt_the_trail(cnf in cnf_strategy(7, 14), pivot in 0usize..7) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..cnf.nvars).map(|_| solver.new_var()).collect();
        for clause in &cnf.clauses {
            solver.add_clause(&to_lits(&vars, clause));
        }
        let expected = if brute_force_sat(cnf.nvars, &cnf.clauses) {
            SolveResult::Sat
        } else {
            SolveResult::Unsat
        };
        // Learn something first, then pose a self-contradictory assumption pair.
        let _ = solver.solve();
        let v = vars[pivot % cnf.nvars];
        prop_assert_eq!(
            solver.solve_with_assumptions(&[Lit::pos(v), Lit::neg(v)]),
            SolveResult::Unsat,
            "x and !x assumed together must be Unsat"
        );
        // The contradiction must not persist: the unassumed query still gets the
        // right verdict and a genuine model.
        let after = solver.solve();
        prop_assert_eq!(after, expected, "verdict changed after contradictory assumptions");
        if after == SolveResult::Sat {
            let model: Vec<bool> = vars.iter().map(|&v| solver.value(v).unwrap()).collect();
            prop_assert!(model_satisfies(&cnf.clauses, &model));
        }
    }

    /// Solving the same instance under every single-literal assumption in turn on
    /// one solver must agree with a fresh solver per assumption (the per-candidate
    /// pattern of the incremental CEGIS verifier).
    #[test]
    fn assumption_sweep_matches_fresh_solvers(cnf in cnf_strategy(6, 12)) {
        let mut reused = Solver::new();
        let vars: Vec<Var> = (0..cnf.nvars).map(|_| reused.new_var()).collect();
        for clause in &cnf.clauses {
            reused.add_clause(&to_lits(&vars, clause));
        }
        for i in 0..cnf.nvars {
            for negated in [false, true] {
                let assumption = i as i32 + 1;
                let assumption = if negated { -assumption } else { assumption };
                let verdict =
                    reused.solve_with_assumptions(&[to_lits(&vars, &[assumption])[0]]);

                let mut fresh = Solver::with_config(SolverConfig::default());
                let fvars: Vec<Var> = (0..cnf.nvars).map(|_| fresh.new_var()).collect();
                for clause in &cnf.clauses {
                    fresh.add_clause(&to_lits(&fvars, clause));
                }
                let expected =
                    fresh.solve_with_assumptions(&[to_lits(&fvars, &[assumption])[0]]);
                prop_assert_eq!(
                    verdict, expected,
                    "assumption {} disagrees between reused and fresh solver", assumption
                );
                if verdict == SolveResult::Sat {
                    let model: Vec<bool> =
                        vars.iter().map(|&v| reused.value(v).unwrap()).collect();
                    prop_assert!(model_satisfies(&cnf.clauses, &model));
                    let idx = i;
                    prop_assert_eq!(model[idx], !negated, "assumption not honoured by the model");
                }
            }
        }
    }
}
