//! The CDCL solver proper.
//!
//! Beyond the textbook loop (two-watched-literal propagation, first-UIP learning,
//! VSIDS), this implementation carries the contemporary refinements the rest of the
//! system leans on:
//!
//! * **Binary implication lists** — two-literal clauses are propagated through a
//!   dedicated `(other, clause)` list per literal instead of the general watch
//!   scheme: no watch juggling, one cache line per implication, and the lists never
//!   need lazy cleanup because binary clauses are never deleted.
//! * **LBD ("glue") at learn time** — every learnt clause records the number of
//!   distinct decision levels among its literals. Low-glue clauses connect few
//!   search levels and tend to stay useful forever (Audemard & Simon, glucose).
//! * **Tiered clause database** ([`ClauseDbMode::Tiered`]) — learnt clauses live in
//!   core (glue ≤ `core_lbd`, never deleted), mid (kept while they keep appearing
//!   in conflicts, demoted otherwise), or local (reduced by activity) tiers. LBD is
//!   recomputed whenever a clause participates in a conflict and clauses promote as
//!   their glue improves. [`ClauseDbMode::Activity`] keeps the legacy policy.
//! * **Recursive learnt-clause minimization** — after first-UIP analysis, literals
//!   whose reason-side justification is already implied by the rest of the clause
//!   are removed (seen-stamp DFS with the abstraction-level pruning check).
//! * **Adaptive restarts** ([`RestartMode::Ema`]) — fast/slow exponential moving
//!   averages of conflict glue trigger a restart when recent clauses are worse than
//!   the long-run trend, with trail-depth blocking; [`RestartMode::Luby`] keeps the
//!   classic schedule.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::{ClauseDbMode, Lit, RestartMode, SolverConfig, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it back with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted, or an interrupt flag was raised,
    /// before a verdict was reached.
    Unknown,
}

/// Number of buckets in [`SolverStats::glue_histogram`]: bucket `i` counts learnt
/// clauses with LBD `i + 1`; the last bucket collects everything at or above
/// `GLUE_BUCKETS`.
pub const GLUE_BUCKETS: usize = 8;

/// Counters describing the work a solve performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// EMA mode: restarts that were due but postponed because the trail was
    /// unusually deep (the solver looked close to a model).
    pub blocked_restarts: u64,
    /// Number of learnt clauses currently in the database (including binary
    /// learnts; excluding learnt units, which become root assignments).
    pub learnt_clauses: u64,
    /// Number of learnt clauses deleted by database reduction. The total ever
    /// learned is `learnt_clauses + deleted_clauses`.
    pub deleted_clauses: u64,
    /// Literals removed from learnt clauses by recursive minimization.
    pub minimized_literals: u64,
    /// Total literals across learnt clauses as they were stored (i.e. after
    /// minimization). Monotone: deletion does not subtract.
    pub learnt_literals: u64,
    /// Glue histogram over stored learnt clauses: bucket `i` counts clauses learned
    /// with LBD `i + 1`, the last bucket collects LBD ≥ [`GLUE_BUCKETS`]. The
    /// bucket sum equals the total number of clauses ever learned.
    pub glue_histogram: [u64; GLUE_BUCKETS],
    /// Learnt clauses currently in the core tier (glue ≤ `core_lbd`, plus binary
    /// learnts; never deleted).
    pub core_clauses: u64,
    /// Learnt clauses currently in the mid tier.
    pub mid_clauses: u64,
    /// Learnt clauses currently in the local tier (the reduction victims).
    pub local_clauses: u64,
}

impl SolverStats {
    /// Total learnt-clause events: every clause ever stored, deleted or not.
    pub fn total_learnt(&self) -> u64 {
        self.glue_histogram.iter().sum()
    }
}

/// Which tier of the learnt-clause database a clause lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Tier {
    /// Never deleted: problem clauses, binary learnts, glue ≤ `core_lbd`.
    Core,
    /// Kept while it keeps participating in conflicts; demoted to local otherwise.
    Mid,
    /// Reduced by activity.
    Local,
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
    /// Literal-block distance at learn time, improved whenever the clause shows up
    /// in conflict analysis. 0 for problem clauses (never computed).
    lbd: u32,
    tier: Tier,
    /// Participated in conflict analysis since the last database reduction.
    used: bool,
}

/// One entry of a binary implication list: when the owning literal is falsified,
/// `other` is implied with `clause` as its reason.
#[derive(Debug, Clone, Copy)]
struct BinWatch {
    other: Lit,
    clause: u32,
}

const UNDEF: i8 = 0;
const TRUE: i8 = 1;
const FALSE: i8 = -1;

/// A CDCL SAT solver over clauses of [`Lit`]s.
///
/// Variables are created with [`Solver::new_var`]; clauses are added with
/// [`Solver::add_clause`]; [`Solver::solve`] (or
/// [`Solver::solve_with_assumptions`]) decides satisfiability, after which
/// [`Solver::value`] reads the model.
#[derive(Debug)]
pub struct Solver {
    config: SolverConfig,
    clauses: Vec<Clause>,
    /// watches[lit.index()] = indices of non-binary clauses currently watching `lit`.
    watches: Vec<Vec<u32>>,
    /// bin_watches[lit.index()] = implications fired when `lit` is falsified.
    bin_watches: Vec<Vec<BinWatch>>,
    values: Vec<i8>,
    saved_phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    // Indexed max-heap over activity for branching.
    heap: Vec<Var>,
    heap_pos: Vec<i32>,
    seen: Vec<bool>,
    /// Scratch for LBD computation: level → last stamp that counted it.
    level_stamp: Vec<u64>,
    lbd_stamp: u64,
    /// Scratch for recursive minimization: DFS worklist and extra seen-marks to
    /// clear after analysis.
    min_stack: Vec<Lit>,
    min_clear: Vec<Lit>,
    /// Fast/slow EMAs of conflict LBD and the trail-depth EMA (restart blocking).
    ema_fast: f64,
    ema_slow: f64,
    ema_trail: f64,
    ema_primed: bool,
    unsat_at_root: bool,
    rng_state: u64,
    /// Cooperative interrupt flags: when any becomes true, the search loop
    /// returns [`SolveResult::Unknown`] at its next check point. Solver state
    /// stays valid, so a later `solve` call resumes from the learnt clauses.
    interrupts: Vec<Arc<AtomicBool>>,
    stats: SolverStats,
}

const NO_REASON: u32 = u32::MAX;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit heuristic configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        let seed = if config.seed == 0 { 0x9e3779b97f4a7c15 } else { config.seed };
        Solver {
            rng_state: seed,
            config,
            clauses: Vec::new(),
            watches: Vec::new(),
            bin_watches: Vec::new(),
            values: Vec::new(),
            saved_phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            seen: Vec::new(),
            level_stamp: vec![0],
            lbd_stamp: 0,
            min_stack: Vec::new(),
            min_clear: Vec::new(),
            ema_fast: 0.0,
            ema_slow: 0.0,
            ema_trail: 0.0,
            ema_primed: false,
            unsat_at_root: false,
            interrupts: Vec::new(),
            stats: SolverStats::default(),
        }
    }

    /// Registers a shared interrupt flag. While any registered flag reads
    /// `true`, in-flight and future `solve` calls return
    /// [`SolveResult::Unknown`] promptly instead of searching to completion.
    pub fn add_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupts.push(flag);
    }

    fn interrupted(&self) -> bool {
        self.interrupts.iter().any(|f| f.load(Ordering::Relaxed))
    }

    /// The configuration this solver runs under.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Statistics from solving so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of problem (non-learnt, non-deleted) clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.learnt && !c.deleted).count()
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.values.len() as u32);
        self.values.push(UNDEF);
        self.saved_phase.push(self.config.default_polarity);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        // Decision levels are usually bounded by the variable count (dummy
        // assumption levels can exceed it; see `reserve_level_stamp`).
        self.level_stamp.push(0);
        self.heap_pos.push(-1);
        self.heap_insert(v);
        v
    }

    /// The current value of a variable: `Some(bool)` if assigned, `None` otherwise.
    /// After [`SolveResult::Sat`] every variable is assigned.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.values[v.index()] {
            TRUE => Some(true),
            FALSE => Some(false),
            _ => None,
        }
    }

    fn lit_value(&self, l: Lit) -> i8 {
        let v = self.values[l.var().index()];
        if v == UNDEF {
            UNDEF
        } else if l.is_neg() {
            -v
        } else {
            v
        }
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// May be called only before [`Solver::solve`] or between solves (the solver
    /// backtracks to the root level first). An empty clause makes the instance
    /// trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.backtrack_to(0);
        // Normalize: sort, dedup, drop tautologies and root-false literals.
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort_unstable();
        lits.dedup();
        let mut filtered = Vec::with_capacity(lits.len());
        for (i, &l) in lits.iter().enumerate() {
            if i + 1 < lits.len() && lits[i + 1] == l.not() {
                return; // tautology: contains both l and !l
            }
            match self.lit_value(l) {
                TRUE => return, // already satisfied at root level
                FALSE => continue,
                _ => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => self.unsat_at_root = true,
            1 => {
                if !self.enqueue(filtered[0], NO_REASON) || self.propagate().is_some() {
                    self.unsat_at_root = true;
                }
            }
            _ => {
                self.attach_clause(filtered, false, 0);
            }
        }
    }

    /// The problem (non-learnt, non-deleted) clauses, for the DIMACS writer.
    pub(crate) fn problem_clauses(&self) -> impl Iterator<Item = &[Lit]> {
        self.clauses.iter().filter(|c| !c.learnt && !c.deleted).map(|c| c.lits.as_slice())
    }

    /// Root-level assignments (added or derived unit clauses), for the DIMACS
    /// writer.
    pub(crate) fn root_units(&self) -> &[Lit] {
        let bound = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        &self.trail[..bound]
    }

    /// Whether the instance is already known unsatisfiable at the root level.
    pub(crate) fn known_unsat_at_root(&self) -> bool {
        self.unsat_at_root
    }

    fn tier_for(&self, len: usize, lbd: u32) -> Tier {
        if len == 2 || lbd <= self.config.core_lbd {
            Tier::Core
        } else if lbd <= self.config.mid_lbd {
            Tier::Mid
        } else {
            Tier::Local
        }
    }

    fn tier_count(&mut self, tier: Tier) -> &mut u64 {
        match tier {
            Tier::Core => &mut self.stats.core_clauses,
            Tier::Mid => &mut self.stats.mid_clauses,
            Tier::Local => &mut self.stats.local_clauses,
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> u32 {
        debug_assert!(lits.len() >= 2);
        let idx = self.clauses.len() as u32;
        if lits.len() == 2 {
            self.bin_watches[lits[0].index()].push(BinWatch { other: lits[1], clause: idx });
            self.bin_watches[lits[1].index()].push(BinWatch { other: lits[0], clause: idx });
        } else {
            self.watches[lits[0].index()].push(idx);
            self.watches[lits[1].index()].push(idx);
        }
        let tier = if learnt { self.tier_for(lits.len(), lbd) } else { Tier::Core };
        if learnt {
            self.stats.learnt_clauses += 1;
            self.stats.learnt_literals += lits.len() as u64;
            let bucket = (lbd.max(1) as usize).min(GLUE_BUCKETS) - 1;
            self.stats.glue_histogram[bucket] += 1;
            *self.tier_count(tier) += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
            deleted: false,
            lbd,
            tier,
            used: false,
        });
        idx
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: u32) -> bool {
        match self.lit_value(l) {
            TRUE => true,
            FALSE => false,
            _ => {
                let v = l.var();
                self.values[v.index()] = if l.is_neg() { FALSE } else { TRUE };
                self.level[v.index()] = self.decision_level();
                self.reason[v.index()] = reason;
                if self.config.phase_saving {
                    self.saved_phase[v.index()] = !l.is_neg();
                }
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.not();

            // Binary implications first: each entry is a direct implication, no
            // watch surgery, and the lists are immutable during search.
            for i in 0..self.bin_watches[false_lit.index()].len() {
                let BinWatch { other, clause } = self.bin_watches[false_lit.index()][i];
                match self.lit_value(other) {
                    TRUE => {}
                    FALSE => {
                        self.qhead = self.trail.len();
                        return Some(clause);
                    }
                    _ => {
                        // Keep the implied literal in slot 0: conflict analysis and
                        // minimization skip a reason clause's first literal.
                        let c = &mut self.clauses[clause as usize];
                        if c.lits[0] != other {
                            c.lits.swap(0, 1);
                        }
                        self.enqueue(other, clause);
                    }
                }
            }

            // Take the watch list for the literal that just became false.
            let mut watchers = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            let mut conflict = None;
            while i < watchers.len() {
                let ci = watchers[i];
                if self.clauses[ci as usize].deleted {
                    watchers.swap_remove(i);
                    continue;
                }
                // Ensure the false literal is at position 1.
                {
                    let c = &mut self.clauses[ci as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[ci as usize].lits[0];
                if self.lit_value(first) == TRUE {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci as usize].lits[k];
                    if self.lit_value(lk) != FALSE {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[lk.index()].push(ci);
                        watchers.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == FALSE {
                    conflict = Some(ci);
                    self.qhead = self.trail.len();
                    // Keep remaining watchers (including this clause) attached.
                    break;
                } else {
                    self.enqueue(first, ci);
                    i += 1;
                }
            }
            self.watches[false_lit.index()].append(&mut watchers);
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn backtrack_to(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let bound = self.trail_lim[target_level as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().unwrap();
            let v = l.var();
            self.values[v.index()] = UNDEF;
            self.reason[v.index()] = NO_REASON;
            if self.heap_pos[v.index()] < 0 {
                self.heap_insert(v);
            }
        }
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    // ----- activity bookkeeping -----

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in self.activity.iter_mut() {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap_update(v);
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= self.config.var_decay;
    }

    fn bump_clause(&mut self, ci: u32) {
        let c = &mut self.clauses[ci as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for c in self.clauses.iter_mut().filter(|c| c.learnt) {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// Bookkeeping for a learnt clause that participates in conflict analysis:
    /// activity bump, usage flag (reduction protection), and LBD refresh — the
    /// glue can only improve here, and a clause whose glue improves enough is
    /// promoted toward the core tier.
    fn notice_clause_use(&mut self, ci: u32) {
        self.bump_clause(ci);
        let c = &self.clauses[ci as usize];
        if !c.learnt {
            return;
        }
        let len = c.lits.len();
        if len == 2 {
            self.clauses[ci as usize].used = true;
            return;
        }
        let new_lbd = self.clause_lbd(ci);
        let c = &mut self.clauses[ci as usize];
        c.used = true;
        if new_lbd < c.lbd {
            c.lbd = new_lbd;
            let new_tier = self.tier_for(len, new_lbd);
            let old_tier = self.clauses[ci as usize].tier;
            if new_tier < old_tier {
                *self.tier_count(old_tier) -= 1;
                *self.tier_count(new_tier) += 1;
                self.clauses[ci as usize].tier = new_tier;
            }
        }
    }

    // ----- branching heap -----

    fn heap_less(&self, a: Var, b: Var) -> bool {
        self.activity[a.index()] > self.activity[b.index()]
    }

    fn heap_insert(&mut self, v: Var) {
        if self.heap_pos[v.index()] >= 0 {
            return;
        }
        self.heap.push(v);
        self.heap_pos[v.index()] = (self.heap.len() - 1) as i32;
        self.heap_up(self.heap.len() - 1);
    }

    fn heap_update(&mut self, v: Var) {
        let pos = self.heap_pos[v.index()];
        if pos >= 0 {
            self.heap_up(pos as usize);
        }
    }

    fn heap_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i].index()] = i as i32;
        self.heap_pos[self.heap[j].index()] = j as i32;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.len() - 1;
        self.heap_swap(0, last);
        self.heap.pop();
        self.heap_pos[top.index()] = -1;
        if !self.heap.is_empty() {
            self.heap_down(0);
        }
        Some(top)
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        // Occasionally pick a random unassigned variable to diversify the portfolio.
        if self.config.random_branch_per_1024 > 0
            && (self.next_rand() % 1024) < self.config.random_branch_per_1024 as u64
        {
            let n = self.values.len() as u64;
            if n > 0 {
                let start = (self.next_rand() % n) as usize;
                for off in 0..self.values.len() {
                    let idx = (start + off) % self.values.len();
                    if self.values[idx] == UNDEF {
                        return Some(Var(idx as u32));
                    }
                }
            }
        }
        while let Some(v) = self.heap_pop() {
            if self.values[v.index()] == UNDEF {
                return Some(v);
            }
        }
        None
    }

    // ----- LBD -----

    /// Grows the level-stamp scratch array to cover `level`. Decision levels are
    /// usually bounded by the variable count, but already-implied assumptions open
    /// dummy levels, so `solve_with_assumptions` can push levels past it.
    fn reserve_level_stamp(&mut self, level: usize) {
        if self.level_stamp.len() <= level {
            self.level_stamp.resize(level + 1, 0);
        }
    }

    /// Number of distinct non-root decision levels among `lits` (the literal block
    /// distance), via a stamped scratch array — O(len), no clearing pass.
    fn lbd_of(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_stamp += 1;
        let mut lbd = 0u32;
        for &l in lits {
            let lev = self.level[l.var().index()] as usize;
            self.reserve_level_stamp(lev);
            if lev > 0 && self.level_stamp[lev] != self.lbd_stamp {
                self.level_stamp[lev] = self.lbd_stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// [`Solver::lbd_of`] for a stored clause (index-walked to appease borrows).
    fn clause_lbd(&mut self, ci: u32) -> u32 {
        self.lbd_stamp += 1;
        let stamp = self.lbd_stamp;
        let mut lbd = 0u32;
        for k in 0..self.clauses[ci as usize].lits.len() {
            let l = self.clauses[ci as usize].lits[k];
            let lev = self.level[l.var().index()] as usize;
            self.reserve_level_stamp(lev);
            if lev > 0 && self.level_stamp[lev] != stamp {
                self.level_stamp[lev] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    // ----- conflict analysis -----

    /// First-UIP conflict analysis with recursive minimization. Returns the learnt
    /// clause (asserting literal first), the backjump level, and the clause's LBD.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the asserting literal
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut trail_idx = self.trail.len();
        let current_level = self.decision_level();

        loop {
            self.notice_clause_use(confl);
            // Collect literals of the conflicting/reason clause.
            let lits: Vec<Lit> = self.clauses[confl as usize].lits.clone();
            let skip_first = p.is_some();
            for (k, &q) in lits.iter().enumerate() {
                if skip_first && k == 0 {
                    continue;
                }
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal to resolve on: last seen literal on the trail.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[trail_idx];
            let v = pl.var();
            self.seen[v.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = pl.not();
                break;
            }
            p = Some(pl);
            confl = self.reason[v.index()];
            debug_assert_ne!(confl, NO_REASON, "non-decision literal must have a reason");
        }

        // `seen` is now set exactly for learnt[1..]; minimization relies on it.
        let learnt = self.minimize_learnt(learnt);

        // Clear the `seen` flags of kept literals and minimization marks.
        for &l in learnt.iter().skip(1) {
            self.seen[l.var().index()] = false;
        }
        let mut min_clear = std::mem::take(&mut self.min_clear);
        for l in min_clear.drain(..) {
            self.seen[l.var().index()] = false;
        }
        // Hand the (emptied) buffer back so its capacity is reused.
        self.min_clear = min_clear;

        // Compute the backjump level and move the corresponding literal to slot 1.
        let mut learnt = learnt;
        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        let lbd = self.lbd_of(&learnt);
        (learnt, backjump, lbd)
    }

    /// Removes literals whose negation is already implied by the rest of the learnt
    /// clause (recursive minimization). Expects `seen` to be set for `learnt[1..]`;
    /// literals it removes stay marked (their redundancy proof may be reused), and
    /// any extra marks made along the way land in `min_clear`.
    fn minimize_learnt(&mut self, learnt: Vec<Lit>) -> Vec<Lit> {
        if learnt.len() <= 2 {
            return learnt;
        }
        let abstract_levels =
            learnt[1..].iter().fold(0u32, |acc, &l| acc | self.abstract_level(l.var()));
        let mut kept = Vec::with_capacity(learnt.len());
        kept.push(learnt[0]);
        for &l in &learnt[1..] {
            if self.reason[l.var().index()] == NO_REASON || !self.lit_redundant(l, abstract_levels)
            {
                kept.push(l);
            } else {
                self.stats.minimized_literals += 1;
                // Keep the mark: `seen` doubles as the "known redundant" memo, and
                // the flag is cleared via `min_clear` after analysis.
                self.min_clear.push(l);
            }
        }
        kept
    }

    /// Level signature for the minimization pruning check: literals whose level is
    /// not in the learnt clause's signature can never be redundant.
    fn abstract_level(&self, v: Var) -> u32 {
        1 << (self.level[v.index()] & 31)
    }

    /// Whether `p`'s reason-side justification is already implied by the learnt
    /// clause: DFS through reasons, succeeding only if every path bottoms out in
    /// `seen` (in-clause or known-redundant) literals or root assignments.
    fn lit_redundant(&mut self, p: Lit, abstract_levels: u32) -> bool {
        self.min_stack.clear();
        self.min_stack.push(p);
        let top = self.min_clear.len();
        while let Some(q) = self.min_stack.pop() {
            let ci = self.reason[q.var().index()];
            debug_assert_ne!(ci, NO_REASON);
            let len = self.clauses[ci as usize].lits.len();
            for k in 1..len {
                let l = self.clauses[ci as usize].lits[k];
                let v = l.var();
                if self.seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                if self.reason[v.index()] != NO_REASON
                    && (self.abstract_level(v) & abstract_levels) != 0
                {
                    self.seen[v.index()] = true;
                    self.min_stack.push(l);
                    self.min_clear.push(l);
                } else {
                    // Not redundant: undo the marks this probe made.
                    for j in top..self.min_clear.len() {
                        self.seen[self.min_clear[j].var().index()] = false;
                    }
                    self.min_clear.truncate(top);
                    return false;
                }
            }
        }
        true
    }

    // ----- clause DB reduction -----

    fn reduce_db(&mut self) {
        match self.config.db_mode {
            ClauseDbMode::Activity => self.reduce_db_activity(),
            ClauseDbMode::Tiered => self.reduce_db_tiered(),
        }
    }

    fn locked_clauses(&self) -> std::collections::HashSet<u32> {
        self.reason.iter().copied().filter(|&r| r != NO_REASON).collect()
    }

    fn delete_clause(&mut self, ci: u32) {
        let tier = self.clauses[ci as usize].tier;
        *self.tier_count(tier) -= 1;
        let c = &mut self.clauses[ci as usize];
        c.deleted = true;
        c.lits.clear();
        self.stats.deleted_clauses += 1;
        self.stats.learnt_clauses = self.stats.learnt_clauses.saturating_sub(1);
    }

    /// Legacy policy: sort all non-binary learnt clauses by activity, delete the
    /// less active half.
    fn reduce_db_activity(&mut self) {
        let mut learnt: Vec<(u32, f64)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted && c.lits.len() > 2)
            .map(|(i, c)| (i as u32, c.activity))
            .collect();
        if learnt.len() < 64 {
            return;
        }
        learnt.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let locked = self.locked_clauses();
        let to_remove = learnt.len() / 2;
        let mut removed = 0;
        for &(ci, _) in learnt.iter() {
            if removed >= to_remove {
                break;
            }
            if locked.contains(&ci) {
                continue;
            }
            self.delete_clause(ci);
            removed += 1;
        }
    }

    /// Glucose-style tiered policy. Core clauses are untouchable. Mid-tier clauses
    /// that did not participate in any conflict since the last reduction demote to
    /// local. Local-tier clauses used since the last reduction are spared one
    /// round; the remainder is sorted by activity and the less active half deleted.
    fn reduce_db_tiered(&mut self) {
        let locked = self.locked_clauses();
        let mut victims: Vec<(u32, f64)> = Vec::new();
        for i in 0..self.clauses.len() {
            let ci = i as u32;
            let c = &self.clauses[i];
            if !c.learnt || c.deleted || c.lits.len() == 2 {
                continue;
            }
            match c.tier {
                Tier::Core => {}
                Tier::Mid => {
                    if !c.used {
                        self.stats.mid_clauses -= 1;
                        self.stats.local_clauses += 1;
                        self.clauses[i].tier = Tier::Local;
                        victims.push((ci, self.clauses[i].activity));
                    }
                }
                Tier::Local => {
                    if !c.used {
                        victims.push((ci, c.activity));
                    }
                }
            }
            self.clauses[i].used = false;
        }
        if self.stats.local_clauses < 64 {
            return;
        }
        victims.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let to_remove = victims.len() / 2;
        let mut removed = 0;
        for &(ci, _) in victims.iter() {
            if removed >= to_remove {
                break;
            }
            if locked.contains(&ci) {
                continue;
            }
            self.delete_clause(ci);
            removed += 1;
        }
    }

    // ----- restarts -----

    fn luby(mut x: u64) -> u64 {
        // The Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
        // Find the finite subsequence containing index `x` and its size.
        let mut size = 1u64;
        let mut seq = 0u64;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) / 2;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Feeds one conflict's LBD (and the current trail depth) into the restart
    /// EMAs. Returns `true` when a due restart was blocked by trail depth — a
    /// restart counts as due only once `conflicts_since_restart` clears the
    /// [`SolverConfig::restart_base`] minimum distance (mirroring
    /// [`Solver::restart_due`]), so `blocked_restarts` never counts restarts
    /// that could not have fired anyway.
    fn update_restart_emas(&mut self, lbd: u32, conflicts_since_restart: u64) -> bool {
        let glue = lbd as f64;
        let depth = self.trail.len() as f64;
        if !self.ema_primed {
            self.ema_fast = glue;
            self.ema_slow = glue;
            self.ema_trail = depth;
            self.ema_primed = true;
            return false;
        }
        self.ema_fast += self.config.ema_fast_alpha * (glue - self.ema_fast);
        self.ema_slow += self.config.ema_slow_alpha * (glue - self.ema_slow);
        self.ema_trail += self.config.ema_slow_alpha * (depth - self.ema_trail);
        if self.config.restart_mode == RestartMode::Ema
            && conflicts_since_restart >= self.config.restart_base.max(1)
            && self.ema_fast > self.config.restart_margin * self.ema_slow
            && depth > self.config.restart_block_margin * self.ema_trail
        {
            // The assignment is unusually deep: the solver may be closing in on a
            // model, so damp the restart urge instead of throwing the trail away.
            self.ema_fast = self.ema_slow;
            self.stats.blocked_restarts += 1;
            return true;
        }
        false
    }

    fn restart_due(&self, conflicts_since_restart: u64, luby_target: u64) -> bool {
        match self.config.restart_mode {
            RestartMode::Luby => conflicts_since_restart >= luby_target,
            RestartMode::Ema => {
                conflicts_since_restart >= self.config.restart_base.max(1)
                    && self.ema_primed
                    && self.ema_fast > self.config.restart_margin * self.ema_slow
            }
        }
    }

    // ----- top-level search -----

    /// Decides satisfiability of the clauses added so far.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Decides satisfiability under the given assumption literals.
    ///
    /// Assumptions are treated as forced decisions at the bottom of the search tree;
    /// they do not persist after the call.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.unsat_at_root {
            return SolveResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.unsat_at_root = true;
            return SolveResult::Unsat;
        }

        let mut restart_count = 0u64;
        let mut conflicts_until_restart =
            Self::luby(restart_count).saturating_mul(self.config.restart_base);
        let mut conflicts_since_restart = 0u64;
        let mut conflicts_until_reduce = self.config.reduce_interval;
        let budget_start = self.stats.conflicts;

        loop {
            if !self.interrupts.is_empty() && self.interrupted() {
                return SolveResult::Unknown;
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.unsat_at_root = true;
                    return SolveResult::Unsat;
                }
                // A conflict while some assumptions are still being (re)established
                // below the assumption levels means UNSAT under assumptions once it
                // reaches level <= #assumptions and analysis backjumps above it.
                let (learnt, backjump, lbd) = self.analyze(confl);
                self.update_restart_emas(lbd, conflicts_since_restart);
                // If the conflict is entirely below the assumption prefix we cannot
                // backjump past the assumptions; treat reaching level 0 naturally.
                self.backtrack_to(backjump.min(self.decision_level().saturating_sub(1)));
                if learnt.len() == 1 {
                    if !self.enqueue(learnt[0], NO_REASON) {
                        self.unsat_at_root = true;
                        return SolveResult::Unsat;
                    }
                } else {
                    let ci = self.attach_clause(learnt.clone(), true, lbd);
                    self.bump_clause(ci);
                    self.enqueue(learnt[0], ci);
                }
                self.decay_var_activity();
                if let Some(budget) = self.config.conflict_budget {
                    if self.stats.conflicts - budget_start >= budget {
                        return SolveResult::Unknown;
                    }
                }
                if conflicts_until_reduce > 0 {
                    conflicts_until_reduce -= 1;
                } else {
                    self.reduce_db();
                    conflicts_until_reduce = self.config.reduce_interval;
                }
            } else {
                // No conflict: maybe restart, then decide.
                if self.restart_due(conflicts_since_restart, conflicts_until_restart) {
                    self.stats.restarts += 1;
                    restart_count += 1;
                    conflicts_since_restart = 0;
                    conflicts_until_restart =
                        Self::luby(restart_count).saturating_mul(self.config.restart_base);
                    if self.config.restart_mode == RestartMode::Ema {
                        // Forget the spike that triggered this restart.
                        self.ema_fast = self.ema_slow;
                    }
                    self.backtrack_to(0);
                    continue;
                }
                // Establish assumptions first.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        TRUE => {
                            // Already implied: open a dummy decision level so indices line up.
                            self.trail_lim.push(self.trail.len());
                            continue;
                        }
                        FALSE => return SolveResult::Unsat,
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                            continue;
                        }
                    }
                }
                match self.pick_branch_var() {
                    None => return SolveResult::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        let phase = self.saved_phase[v.index()];
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(Lit::new(v, !phase), NO_REASON);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClauseDbMode;

    fn lit(solver_vars: &[Var], i: i32) -> Lit {
        let v = solver_vars[(i.unsigned_abs() - 1) as usize];
        Lit::new(v, i < 0)
    }

    fn make_solver(nvars: usize) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
        (s, vars)
    }

    fn pigeonhole(n: usize, m: usize, config: SolverConfig) -> Solver {
        let mut s = Solver::with_config(config);
        let p: Vec<Vec<Var>> = (0..n).map(|_| (0..m).map(|_| s.new_var()).collect()).collect();
        for row in p.iter() {
            let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&c);
        }
        for j in 0..m {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
        s
    }

    #[test]
    fn trivially_sat() {
        let (mut s, v) = make_solver(2);
        s.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let (mut s, v) = make_solver(4);
        s.add_clause(&[lit(&v, 1)]);
        s.add_clause(&[lit(&v, -1), lit(&v, 2)]);
        s.add_clause(&[lit(&v, -2), lit(&v, 3)]);
        s.add_clause(&[lit(&v, -3), lit(&v, 4)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for &x in &v {
            assert_eq!(s.value(x), Some(true));
        }
    }

    #[test]
    fn simple_unsat() {
        let (mut s, v) = make_solver(1);
        s.add_clause(&[lit(&v, 1)]);
        s.add_clause(&[lit(&v, -1)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let (mut s, _) = make_solver(1);
        s.add_clause(&[]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn no_clauses_is_sat() {
        let (mut s, _) = make_solver(3);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        let mut s = pigeonhole(3, 2, SolverConfig::default());
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_is_unsat() {
        let mut s = pigeonhole(5, 4, SolverConfig::default());
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // A mixed instance: graph 3-coloring of a 5-cycle (satisfiable).
        let n = 5;
        let mut s = Solver::new();
        let color: Vec<Vec<Var>> = (0..n).map(|_| (0..3).map(|_| s.new_var()).collect()).collect();
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for node in &color {
            clauses.push(node.iter().map(|&x| Lit::pos(x)).collect());
            for c1 in 0..3 {
                for c2 in (c1 + 1)..3 {
                    clauses.push(vec![Lit::neg(node[c1]), Lit::neg(node[c2])]);
                }
            }
        }
        for v in 0..n {
            let w = (v + 1) % n;
            for (cv, cw) in color[v].iter().zip(&color[w]) {
                clauses.push(vec![Lit::neg(*cv), Lit::neg(*cw)]);
            }
        }
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for c in &clauses {
            assert!(
                c.iter().any(|&l| l.eval(s.value(l.var()).unwrap())),
                "model violates clause {c:?}"
            );
        }
    }

    #[test]
    fn assumptions_flip_result() {
        let (mut s, v) = make_solver(2);
        s.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -1), lit(&v, -2)]), SolveResult::Unsat);
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -1)]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
        // Without assumptions still satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn conflicting_assumptions_unsat() {
        let (mut s, v) = make_solver(1);
        s.add_clause(&[lit(&v, 1), lit(&v, -1)]); // tautology, dropped
        assert_eq!(s.solve_with_assumptions(&[lit(&v, 1), lit(&v, -1)]), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        // A hard instance with a tiny budget must return Unknown.
        let cfg = SolverConfig { conflict_budget: Some(3), ..SolverConfig::default() };
        let mut s = pigeonhole(8, 7, cfg);
        assert_eq!(s.solve(), SolveResult::Unknown);
    }

    #[test]
    fn raised_interrupt_flag_reports_unknown() {
        // A hard instance with a pre-raised interrupt must bail out immediately,
        // and clearing the flag lets the same solver finish the search.
        let mut s = pigeonhole(8, 7, SolverConfig::default());
        let flag = Arc::new(AtomicBool::new(true));
        s.add_interrupt(Arc::clone(&flag));
        assert_eq!(s.solve(), SolveResult::Unknown);
        flag.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_handled() {
        let (mut s, v) = make_solver(2);
        s.add_clause(&[lit(&v, 1), lit(&v, 1), lit(&v, 1)]);
        s.add_clause(&[lit(&v, 2), lit(&v, -2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
    }

    #[test]
    fn xor_chain_sat_and_unsat() {
        // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsat;
        // changing the last constraint to = 0 makes it sat.
        fn add_xor(s: &mut Solver, a: Lit, b: Lit, value: bool) {
            if value {
                s.add_clause(&[a, b]);
                s.add_clause(&[a.not(), b.not()]);
            } else {
                s.add_clause(&[a, b.not()]);
                s.add_clause(&[a.not(), b]);
            }
        }
        let (mut s, v) = make_solver(3);
        add_xor(&mut s, lit(&v, 1), lit(&v, 2), true);
        add_xor(&mut s, lit(&v, 2), lit(&v, 3), true);
        add_xor(&mut s, lit(&v, 1), lit(&v, 3), true);
        assert_eq!(s.solve(), SolveResult::Unsat);

        let (mut s, v) = make_solver(3);
        add_xor(&mut s, lit(&v, 1), lit(&v, 2), true);
        add_xor(&mut s, lit(&v, 2), lit(&v, 3), true);
        add_xor(&mut s, lit(&v, 1), lit(&v, 3), false);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn portfolio_configs_agree_on_verdict() {
        for cfg in SolverConfig::portfolio() {
            let mut s = Solver::with_config(cfg.clone());
            let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
            s.add_clause(&[Lit::pos(vars[0]), Lit::pos(vars[1])]);
            s.add_clause(&[Lit::neg(vars[0]), Lit::pos(vars[2])]);
            s.add_clause(&[Lit::neg(vars[1]), Lit::pos(vars[3])]);
            s.add_clause(&[Lit::neg(vars[2]), Lit::neg(vars[3])]);
            assert_eq!(s.solve(), SolveResult::Sat, "config {}", cfg.name);
        }
    }

    #[test]
    fn stats_accumulate() {
        let (mut s, v) = make_solver(3);
        s.add_clause(&[lit(&v, 1), lit(&v, 2), lit(&v, 3)]);
        s.add_clause(&[lit(&v, -1), lit(&v, -2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.stats().propagations + s.stats().decisions > 0);
    }

    #[test]
    fn glue_histogram_and_tiers_account_for_every_learnt_clause() {
        let mut s = pigeonhole(6, 5, SolverConfig::default());
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert_eq!(
            st.total_learnt(),
            st.learnt_clauses + st.deleted_clauses,
            "glue histogram must count every learnt clause exactly once"
        );
        assert_eq!(
            st.core_clauses + st.mid_clauses + st.local_clauses,
            st.learnt_clauses,
            "tier sizes must partition the live learnt database"
        );
    }

    #[test]
    fn minimization_strictly_shrinks_learnt_clauses_on_structured_instances() {
        let mut s = pigeonhole(7, 6, SolverConfig::default());
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(
            s.stats().minimized_literals > 0,
            "pigeonhole conflicts have redundant reason-side literals"
        );
    }

    #[test]
    fn tiered_reduction_never_deletes_core_clauses() {
        // Force frequent reductions and check the invariant afterwards.
        let cfg = SolverConfig { reduce_interval: 50, ..SolverConfig::default() };
        let mut s = pigeonhole(8, 7, cfg);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let st = s.stats();
        assert!(st.deleted_clauses > 0, "reduction should have fired");
        for c in s.clauses.iter().filter(|c| c.learnt && c.deleted) {
            assert!(c.lits.is_empty());
        }
        for c in s.clauses.iter().filter(|c| c.learnt && !c.deleted && c.tier == Tier::Core) {
            assert!(c.lits.len() == 2 || c.lbd <= s.config.core_lbd);
        }
    }

    #[test]
    fn legacy_activity_mode_still_reduces_and_agrees() {
        let cfg = SolverConfig {
            reduce_interval: 50,
            db_mode: ClauseDbMode::Activity,
            ..SolverConfig::legacy()
        };
        let mut s = pigeonhole(8, 7, cfg);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().deleted_clauses > 0);
    }

    #[test]
    fn ema_restarts_fire_on_hard_instances() {
        let cfg = SolverConfig { restart_base: 10, ..SolverConfig::default() };
        let mut s = pigeonhole(8, 7, cfg);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().restarts > 0, "EMA restarts should trigger on pigeonhole");
    }

    #[test]
    fn binary_clauses_propagate_through_implication_lists() {
        // A pure-binary implication chain: 1 → 2 → 3 → 4, plus unit 1.
        let (mut s, v) = make_solver(4);
        s.add_clause(&[lit(&v, -1), lit(&v, 2)]);
        s.add_clause(&[lit(&v, -2), lit(&v, 3)]);
        s.add_clause(&[lit(&v, -3), lit(&v, 4)]);
        s.add_clause(&[lit(&v, 1)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for &x in &v {
            assert_eq!(s.value(x), Some(true));
        }
        // All three implications live in binary lists, not the general watches.
        assert!(s.watches.iter().all(|w| w.is_empty()));
        assert!(s.bin_watches.iter().map(|w| w.len()).sum::<usize>() == 6);
    }

    /// Regression: already-implied assumptions open dummy decision levels, so the
    /// decision level during conflict analysis can exceed the variable count; the
    /// LBD level-stamp scratch array must grow rather than index out of bounds.
    #[test]
    fn repeated_assumptions_beyond_var_count_do_not_panic() {
        let (mut s, v) = make_solver(4);
        // A chain whose conflict fires after a decision: assuming 1 implies 2;
        // clauses force a conflict among 3 and 4 only after branching.
        s.add_clause(&[lit(&v, -1), lit(&v, 2)]);
        s.add_clause(&[lit(&v, -2), lit(&v, 3), lit(&v, 4)]);
        s.add_clause(&[lit(&v, -3), lit(&v, -4)]);
        s.add_clause(&[lit(&v, 3), lit(&v, 4)]);
        // Six copies of the same assumption: five of them are already implied and
        // open dummy levels, pushing the decision level past num_vars.
        let assumptions = [lit(&v, 1); 6];
        let r = s.solve_with_assumptions(&assumptions);
        assert_eq!(r, SolveResult::Sat);
    }

    #[test]
    fn binary_conflict_is_analyzed_correctly() {
        // 1→2 and 1→¬2 makes assuming 1 contradictory: solver must derive ¬1.
        let (mut s, v) = make_solver(3);
        s.add_clause(&[lit(&v, -1), lit(&v, 2)]);
        s.add_clause(&[lit(&v, -1), lit(&v, -2)]);
        s.add_clause(&[lit(&v, 1), lit(&v, 3)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(false));
        assert_eq!(s.value(v[2]), Some(true));
    }
}
