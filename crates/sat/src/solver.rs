//! The CDCL solver proper.

use crate::{Lit, SolverConfig, Var};

/// Result of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it back with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict was reached.
    Unknown,
}

/// Counters describing the work a solve performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of branching decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
}

const UNDEF: i8 = 0;
const TRUE: i8 = 1;
const FALSE: i8 = -1;

/// A CDCL SAT solver over clauses of [`Lit`]s.
///
/// Variables are created with [`Solver::new_var`]; clauses are added with
/// [`Solver::add_clause`]; [`Solver::solve`] (or
/// [`Solver::solve_with_assumptions`]) decides satisfiability, after which
/// [`Solver::value`] reads the model.
#[derive(Debug)]
pub struct Solver {
    config: SolverConfig,
    clauses: Vec<Clause>,
    /// watches[lit.index()] = indices of clauses currently watching `lit`.
    watches: Vec<Vec<u32>>,
    values: Vec<i8>,
    saved_phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    // Indexed max-heap over activity for branching.
    heap: Vec<Var>,
    heap_pos: Vec<i32>,
    seen: Vec<bool>,
    unsat_at_root: bool,
    rng_state: u64,
    stats: SolverStats,
}

const NO_REASON: u32 = u32::MAX;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit heuristic configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        let seed = if config.seed == 0 { 0x9e3779b97f4a7c15 } else { config.seed };
        Solver {
            rng_state: seed,
            config,
            clauses: Vec::new(),
            watches: Vec::new(),
            values: Vec::new(),
            saved_phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            seen: Vec::new(),
            unsat_at_root: false,
            stats: SolverStats::default(),
        }
    }

    /// Statistics from solving so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Number of variables created.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of problem (non-learnt, non-deleted) clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.learnt && !c.deleted).count()
    }

    /// Creates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.values.len() as u32);
        self.values.push(UNDEF);
        self.saved_phase.push(self.config.default_polarity);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_pos.push(-1);
        self.heap_insert(v);
        v
    }

    /// The current value of a variable: `Some(bool)` if assigned, `None` otherwise.
    /// After [`SolveResult::Sat`] every variable is assigned.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.values[v.index()] {
            TRUE => Some(true),
            FALSE => Some(false),
            _ => None,
        }
    }

    fn lit_value(&self, l: Lit) -> i8 {
        let v = self.values[l.var().index()];
        if v == UNDEF {
            UNDEF
        } else if l.is_neg() {
            -v
        } else {
            v
        }
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// May be called only before [`Solver::solve`] or between solves (the solver
    /// backtracks to the root level first). An empty clause makes the instance
    /// trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.backtrack_to(0);
        // Normalize: sort, dedup, drop tautologies and root-false literals.
        let mut lits: Vec<Lit> = lits.to_vec();
        lits.sort_unstable();
        lits.dedup();
        let mut filtered = Vec::with_capacity(lits.len());
        for (i, &l) in lits.iter().enumerate() {
            if i + 1 < lits.len() && lits[i + 1] == l.not() {
                return; // tautology: contains both l and !l
            }
            match self.lit_value(l) {
                TRUE => return, // already satisfied at root level
                FALSE => continue,
                _ => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => self.unsat_at_root = true,
            1 => {
                if !self.enqueue(filtered[0], NO_REASON) || self.propagate().is_some() {
                    self.unsat_at_root = true;
                }
            }
            _ => {
                self.attach_clause(filtered, false);
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        debug_assert!(lits.len() >= 2);
        let idx = self.clauses.len() as u32;
        self.watches[lits[0].index()].push(idx);
        self.watches[lits[1].index()].push(idx);
        self.clauses.push(Clause { lits, learnt, activity: 0.0, deleted: false });
        if learnt {
            self.stats.learnt_clauses += 1;
        }
        idx
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: u32) -> bool {
        match self.lit_value(l) {
            TRUE => true,
            FALSE => false,
            _ => {
                let v = l.var();
                self.values[v.index()] = if l.is_neg() { FALSE } else { TRUE };
                self.level[v.index()] = self.decision_level();
                self.reason[v.index()] = reason;
                if self.config.phase_saving {
                    self.saved_phase[v.index()] = !l.is_neg();
                }
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation. Returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = p.not();
            // Take the watch list for the literal that just became false.
            let mut watchers = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            let mut conflict = None;
            while i < watchers.len() {
                let ci = watchers[i];
                if self.clauses[ci as usize].deleted {
                    watchers.swap_remove(i);
                    continue;
                }
                // Ensure the false literal is at position 1.
                {
                    let c = &mut self.clauses[ci as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[ci as usize].lits[0];
                if self.lit_value(first) == TRUE {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let mut found = false;
                let len = self.clauses[ci as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[ci as usize].lits[k];
                    if self.lit_value(lk) != FALSE {
                        self.clauses[ci as usize].lits.swap(1, k);
                        self.watches[lk.index()].push(ci);
                        watchers.swap_remove(i);
                        found = true;
                        break;
                    }
                }
                if found {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == FALSE {
                    conflict = Some(ci);
                    self.qhead = self.trail.len();
                    // Keep remaining watchers (including this clause) attached.
                    break;
                } else {
                    self.enqueue(first, ci);
                    i += 1;
                }
            }
            self.watches[false_lit.index()].append(&mut watchers);
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    fn backtrack_to(&mut self, target_level: u32) {
        if self.decision_level() <= target_level {
            return;
        }
        let bound = self.trail_lim[target_level as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().unwrap();
            let v = l.var();
            self.values[v.index()] = UNDEF;
            self.reason[v.index()] = NO_REASON;
            if self.heap_pos[v.index()] < 0 {
                self.heap_insert(v);
            }
        }
        self.trail_lim.truncate(target_level as usize);
        self.qhead = self.trail.len();
    }

    // ----- activity bookkeeping -----

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in self.activity.iter_mut() {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap_update(v);
    }

    fn decay_var_activity(&mut self) {
        self.var_inc /= self.config.var_decay;
    }

    fn bump_clause(&mut self, ci: u32) {
        let c = &mut self.clauses[ci as usize];
        if !c.learnt {
            return;
        }
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for c in self.clauses.iter_mut().filter(|c| c.learnt) {
                c.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    // ----- branching heap -----

    fn heap_less(&self, a: Var, b: Var) -> bool {
        self.activity[a.index()] > self.activity[b.index()]
    }

    fn heap_insert(&mut self, v: Var) {
        if self.heap_pos[v.index()] >= 0 {
            return;
        }
        self.heap.push(v);
        self.heap_pos[v.index()] = (self.heap.len() - 1) as i32;
        self.heap_up(self.heap.len() - 1);
    }

    fn heap_update(&mut self, v: Var) {
        let pos = self.heap_pos[v.index()];
        if pos >= 0 {
            self.heap_up(pos as usize);
        }
    }

    fn heap_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[i], self.heap[parent]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i].index()] = i as i32;
        self.heap_pos[self.heap[j].index()] = j as i32;
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.len() - 1;
        self.heap_swap(0, last);
        self.heap.pop();
        self.heap_pos[top.index()] = -1;
        if !self.heap.is_empty() {
            self.heap_down(0);
        }
        Some(top)
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        // Occasionally pick a random unassigned variable to diversify the portfolio.
        if self.config.random_branch_per_1024 > 0
            && (self.next_rand() % 1024) < self.config.random_branch_per_1024 as u64
        {
            let n = self.values.len() as u64;
            if n > 0 {
                let start = (self.next_rand() % n) as usize;
                for off in 0..self.values.len() {
                    let idx = (start + off) % self.values.len();
                    if self.values[idx] == UNDEF {
                        return Some(Var(idx as u32));
                    }
                }
            }
        }
        while let Some(v) = self.heap_pop() {
            if self.values[v.index()] == UNDEF {
                return Some(v);
            }
        }
        None
    }

    // ----- conflict analysis -----

    /// First-UIP conflict analysis. Returns the learnt clause (asserting literal
    /// first) and the backjump level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the asserting literal
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut trail_idx = self.trail.len();
        let current_level = self.decision_level();

        loop {
            self.bump_clause(confl);
            // Collect literals of the conflicting/reason clause.
            let lits: Vec<Lit> = self.clauses[confl as usize].lits.clone();
            let skip_first = p.is_some();
            for (k, &q) in lits.iter().enumerate() {
                if skip_first && k == 0 {
                    continue;
                }
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal to resolve on: last seen literal on the trail.
            loop {
                trail_idx -= 1;
                if self.seen[self.trail[trail_idx].var().index()] {
                    break;
                }
            }
            let pl = self.trail[trail_idx];
            let v = pl.var();
            self.seen[v.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = pl.not();
                break;
            }
            p = Some(pl);
            confl = self.reason[v.index()];
            debug_assert_ne!(confl, NO_REASON, "non-decision literal must have a reason");
        }

        // Clear the `seen` flags of kept literals.
        for &l in learnt.iter().skip(1) {
            self.seen[l.var().index()] = false;
        }

        // Compute the backjump level and move the corresponding literal to slot 1.
        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        (learnt, backjump)
    }

    // ----- clause DB reduction -----

    fn reduce_db(&mut self) {
        let mut learnt: Vec<(u32, f64, usize)> = self
            .clauses
            .iter()
            .enumerate()
            .filter(|(_, c)| c.learnt && !c.deleted && c.lits.len() > 2)
            .map(|(i, c)| (i as u32, c.activity, c.lits.len()))
            .collect();
        if learnt.len() < 64 {
            return;
        }
        learnt.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let locked: std::collections::HashSet<u32> = self
            .reason
            .iter()
            .copied()
            .filter(|&r| r != NO_REASON)
            .collect();
        let to_remove = learnt.len() / 2;
        let mut removed = 0;
        for &(ci, _, _) in learnt.iter() {
            if removed >= to_remove {
                break;
            }
            if locked.contains(&ci) {
                continue;
            }
            self.clauses[ci as usize].deleted = true;
            self.clauses[ci as usize].lits.clear();
            removed += 1;
            self.stats.deleted_clauses += 1;
            self.stats.learnt_clauses = self.stats.learnt_clauses.saturating_sub(1);
        }
    }

    // ----- top-level search -----

    fn luby(mut x: u64) -> u64 {
        // The Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
        // Find the finite subsequence containing index `x` and its size.
        let mut size = 1u64;
        let mut seq = 0u64;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) / 2;
            seq -= 1;
            x %= size;
        }
        1u64 << seq
    }

    /// Decides satisfiability of the clauses added so far.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Decides satisfiability under the given assumption literals.
    ///
    /// Assumptions are treated as forced decisions at the bottom of the search tree;
    /// they do not persist after the call.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        if self.unsat_at_root {
            return SolveResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.unsat_at_root = true;
            return SolveResult::Unsat;
        }

        let mut restart_count = 0u64;
        let mut conflicts_until_restart =
            Self::luby(restart_count).saturating_mul(self.config.restart_base);
        let mut conflicts_since_restart = 0u64;
        let mut conflicts_until_reduce = self.config.reduce_interval;
        let budget_start = self.stats.conflicts;

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.unsat_at_root = true;
                    return SolveResult::Unsat;
                }
                // A conflict while some assumptions are still being (re)established
                // below the assumption levels means UNSAT under assumptions once it
                // reaches level <= #assumptions and analysis backjumps above it.
                let (learnt, backjump) = self.analyze(confl);
                // If the conflict is entirely below the assumption prefix we cannot
                // backjump past the assumptions; treat reaching level 0 naturally.
                self.backtrack_to(backjump.min(self.decision_level().saturating_sub(1)));
                if learnt.len() == 1 {
                    if !self.enqueue(learnt[0], NO_REASON) {
                        self.unsat_at_root = true;
                        return SolveResult::Unsat;
                    }
                } else {
                    let ci = self.attach_clause(learnt.clone(), true);
                    self.bump_clause(ci);
                    self.enqueue(learnt[0], ci);
                }
                self.decay_var_activity();
                if let Some(budget) = self.config.conflict_budget {
                    if self.stats.conflicts - budget_start >= budget {
                        return SolveResult::Unknown;
                    }
                }
                if conflicts_until_reduce > 0 {
                    conflicts_until_reduce -= 1;
                } else {
                    self.reduce_db();
                    conflicts_until_reduce = self.config.reduce_interval;
                }
            } else {
                // No conflict: maybe restart, then decide.
                if conflicts_since_restart >= conflicts_until_restart {
                    self.stats.restarts += 1;
                    restart_count += 1;
                    conflicts_since_restart = 0;
                    conflicts_until_restart =
                        Self::luby(restart_count).saturating_mul(self.config.restart_base);
                    self.backtrack_to(0);
                    continue;
                }
                // Establish assumptions first.
                if (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.lit_value(a) {
                        TRUE => {
                            // Already implied: open a dummy decision level so indices line up.
                            self.trail_lim.push(self.trail.len());
                            continue;
                        }
                        FALSE => return SolveResult::Unsat,
                        _ => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, NO_REASON);
                            continue;
                        }
                    }
                }
                match self.pick_branch_var() {
                    None => return SolveResult::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        let phase = self.saved_phase[v.index()];
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(Lit::new(v, !phase), NO_REASON);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(solver_vars: &[Var], i: i32) -> Lit {
        let v = solver_vars[(i.unsigned_abs() - 1) as usize];
        Lit::new(v, i < 0)
    }

    fn make_solver(nvars: usize) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
        (s, vars)
    }

    #[test]
    fn trivially_sat() {
        let (mut s, v) = make_solver(2);
        s.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let (mut s, v) = make_solver(4);
        s.add_clause(&[lit(&v, 1)]);
        s.add_clause(&[lit(&v, -1), lit(&v, 2)]);
        s.add_clause(&[lit(&v, -2), lit(&v, 3)]);
        s.add_clause(&[lit(&v, -3), lit(&v, 4)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        for &x in &v {
            assert_eq!(s.value(x), Some(true));
        }
    }

    #[test]
    fn simple_unsat() {
        let (mut s, v) = make_solver(1);
        s.add_clause(&[lit(&v, 1)]);
        s.add_clause(&[lit(&v, -1)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let (mut s, _) = make_solver(1);
        s.add_clause(&[]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn no_clauses_is_sat() {
        let (mut s, _) = make_solver(3);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| (0..2).map(|_| s.new_var()).collect()).collect();
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        for j in 0..2 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_5_into_4_is_unsat() {
        let n = 5;
        let m = 4;
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..n).map(|_| (0..m).map(|_| s.new_var()).collect()).collect();
        for row in p.iter() {
            let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&c);
        }
        for j in 0..m {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // A mixed instance: graph 3-coloring of a 5-cycle (satisfiable).
        let n = 5;
        let mut s = Solver::new();
        let color: Vec<Vec<Var>> = (0..n).map(|_| (0..3).map(|_| s.new_var()).collect()).collect();
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for node in &color {
            clauses.push(node.iter().map(|&x| Lit::pos(x)).collect());
            for c1 in 0..3 {
                for c2 in (c1 + 1)..3 {
                    clauses.push(vec![Lit::neg(node[c1]), Lit::neg(node[c2])]);
                }
            }
        }
        for v in 0..n {
            let w = (v + 1) % n;
            for (cv, cw) in color[v].iter().zip(&color[w]) {
                clauses.push(vec![Lit::neg(*cv), Lit::neg(*cw)]);
            }
        }
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        for c in &clauses {
            assert!(
                c.iter().any(|&l| l.eval(s.value(l.var()).unwrap())),
                "model violates clause {c:?}"
            );
        }
    }

    #[test]
    fn assumptions_flip_result() {
        let (mut s, v) = make_solver(2);
        s.add_clause(&[lit(&v, 1), lit(&v, 2)]);
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -1), lit(&v, -2)]), SolveResult::Unsat);
        assert_eq!(s.solve_with_assumptions(&[lit(&v, -1)]), SolveResult::Sat);
        assert_eq!(s.value(v[1]), Some(true));
        // Without assumptions still satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn conflicting_assumptions_unsat() {
        let (mut s, v) = make_solver(1);
        s.add_clause(&[lit(&v, 1), lit(&v, -1)]); // tautology, dropped
        assert_eq!(s.solve_with_assumptions(&[lit(&v, 1), lit(&v, -1)]), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        // A hard instance with a tiny budget must return Unknown.
        let n = 8;
        let m = 7;
        let cfg = SolverConfig { conflict_budget: Some(3), ..SolverConfig::default() };
        let mut s = Solver::with_config(cfg);
        let p: Vec<Vec<Var>> = (0..n).map(|_| (0..m).map(|_| s.new_var()).collect()).collect();
        for row in p.iter() {
            let c: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&c);
        }
        for j in 0..m {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unknown);
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_handled() {
        let (mut s, v) = make_solver(2);
        s.add_clause(&[lit(&v, 1), lit(&v, 1), lit(&v, 1)]);
        s.add_clause(&[lit(&v, 2), lit(&v, -2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.value(v[0]), Some(true));
    }

    #[test]
    fn xor_chain_sat_and_unsat() {
        // x1 xor x2 = 1, x2 xor x3 = 1, x1 xor x3 = 1 is unsat;
        // changing the last constraint to = 0 makes it sat.
        fn add_xor(s: &mut Solver, a: Lit, b: Lit, value: bool) {
            if value {
                s.add_clause(&[a, b]);
                s.add_clause(&[a.not(), b.not()]);
            } else {
                s.add_clause(&[a, b.not()]);
                s.add_clause(&[a.not(), b]);
            }
        }
        let (mut s, v) = make_solver(3);
        add_xor(&mut s, lit(&v, 1), lit(&v, 2), true);
        add_xor(&mut s, lit(&v, 2), lit(&v, 3), true);
        add_xor(&mut s, lit(&v, 1), lit(&v, 3), true);
        assert_eq!(s.solve(), SolveResult::Unsat);

        let (mut s, v) = make_solver(3);
        add_xor(&mut s, lit(&v, 1), lit(&v, 2), true);
        add_xor(&mut s, lit(&v, 2), lit(&v, 3), true);
        add_xor(&mut s, lit(&v, 1), lit(&v, 3), false);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(Solver::luby(i as u64), e, "luby({i})");
        }
    }

    #[test]
    fn portfolio_configs_agree_on_verdict() {
        for cfg in SolverConfig::portfolio() {
            let mut s = Solver::with_config(cfg.clone());
            let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
            s.add_clause(&[Lit::pos(vars[0]), Lit::pos(vars[1])]);
            s.add_clause(&[Lit::neg(vars[0]), Lit::pos(vars[2])]);
            s.add_clause(&[Lit::neg(vars[1]), Lit::pos(vars[3])]);
            s.add_clause(&[Lit::neg(vars[2]), Lit::neg(vars[3])]);
            assert_eq!(s.solve(), SolveResult::Sat, "config {}", cfg.name);
        }
    }

    #[test]
    fn stats_accumulate() {
        let (mut s, v) = make_solver(3);
        s.add_clause(&[lit(&v, 1), lit(&v, 2), lit(&v, 3)]);
        s.add_clause(&[lit(&v, -1), lit(&v, -2)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.stats().propagations + s.stats().decisions > 0);
    }
}
