//! Core literal/variable types shared by the solver and its clients.

use std::fmt;

/// A propositional variable, identified by a dense index starting at 0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable together with a polarity.
///
/// Encoded as `var * 2 + (negated as usize)` so that literals can directly index
/// watch lists.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn neg(var: Var) -> Lit {
        Lit((var.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = negated).
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit((var.0 << 1) | negated as u32)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is negated.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The literal with opposite polarity.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index usable for watch lists (`2 * var + sign`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Evaluates this literal under an assignment of its variable.
    pub fn eval(self, var_value: bool) -> bool {
        var_value ^ self.is_neg()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "!v{}", self.var().0)
        } else {
            write!(f, "v{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var(7);
        assert_eq!(Lit::pos(v).index(), 14);
        assert_eq!(Lit::neg(v).index(), 15);
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert!(!Lit::pos(v).is_neg());
        assert!(Lit::neg(v).is_neg());
    }

    #[test]
    fn negation_is_involutive() {
        let l = Lit::new(Var(3), true);
        assert_eq!(l.not().not(), l);
        assert_eq!(!!l, l);
        assert_ne!(l.not(), l);
        assert_eq!(l.not().var(), l.var());
    }

    #[test]
    fn literal_eval() {
        let v = Var(0);
        assert!(Lit::pos(v).eval(true));
        assert!(!Lit::pos(v).eval(false));
        assert!(!Lit::neg(v).eval(true));
        assert!(Lit::neg(v).eval(false));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Lit::pos(Var(2))), "v2");
        assert_eq!(format!("{}", Lit::neg(Var(2))), "!v2");
        assert_eq!(format!("{}", Var(9)), "v9");
    }
}
