//! # lr-sat: a from-scratch CDCL SAT solver
//!
//! This crate is the decision-procedure substrate of the Lakeroad reproduction. The
//! original system relies on Rosette dispatching to external SMT solvers (Bitwuzla,
//! cvc5, Yices2, STP); here the QF_BV queries produced by `lr-smt` are bit-blasted to
//! CNF and decided by this solver.
//!
//! The solver implements the standard modern CDCL loop:
//!
//! * two-watched-literal unit propagation,
//! * first-UIP conflict analysis with clause learning and non-chronological
//!   backjumping,
//! * exponential VSIDS variable activities with an indexed max-heap and phase saving,
//! * Luby restarts,
//! * activity-driven learnt-clause database reduction,
//! * solving under assumptions (used by the incremental CEGIS loop).
//!
//! [`SolverConfig`] exposes the heuristic knobs (branching polarity, restart interval,
//! decay factors, random seed) that the portfolio in `lr-synth` varies to emulate the
//! paper's four-solver portfolio.
//!
//! ```
//! use lr_sat::{Lit, Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! solver.add_clause(&[Lit::neg(a)]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.value(b), Some(true));
//! ```

mod solver;
mod types;

pub use solver::{SolveResult, Solver, SolverStats};
pub use types::{Lit, Var};

/// Heuristic configuration for the solver. Different configurations form the
/// "solver portfolio" of the synthesis engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Human-readable name, used in the portfolio experiment report.
    pub name: String,
    /// Default polarity assigned to a variable the first time it is branched on.
    pub default_polarity: bool,
    /// Whether to use saved phases after the first assignment of a variable.
    pub phase_saving: bool,
    /// Multiplicative decay applied to variable activities after each conflict
    /// (the solver actually bumps by a growing increment, MiniSat-style).
    pub var_decay: f64,
    /// Base (unit) of the Luby restart sequence, in conflicts.
    pub restart_base: u64,
    /// Number of conflicts between learnt-clause database reductions.
    pub reduce_interval: u64,
    /// Probability (in 1/1024 units) of making a random decision instead of the
    /// highest-activity one.
    pub random_branch_per_1024: u32,
    /// Seed for the solver's internal PRNG.
    pub seed: u64,
    /// Conflict budget; `None` means unlimited. When exhausted, `solve` returns
    /// [`SolveResult::Unknown`].
    pub conflict_budget: Option<u64>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            name: "default".to_string(),
            default_polarity: false,
            phase_saving: true,
            var_decay: 0.95,
            restart_base: 100,
            reduce_interval: 2000,
            random_branch_per_1024: 16,
            seed: 0x1a4e_40ad,
            conflict_budget: None,
        }
    }
}

impl SolverConfig {
    /// The four portfolio configurations used by `lr-synth`, standing in for the
    /// paper's Bitwuzla / STP / Yices2 / cvc5 portfolio (§4.5).
    pub fn portfolio() -> Vec<SolverConfig> {
        vec![
            SolverConfig { name: "bitblaze".into(), ..Default::default() },
            SolverConfig {
                name: "stipple".into(),
                default_polarity: true,
                var_decay: 0.90,
                restart_base: 64,
                seed: 0xfeed_beef,
                ..Default::default()
            },
            SolverConfig {
                name: "yolanda".into(),
                phase_saving: false,
                var_decay: 0.99,
                restart_base: 256,
                random_branch_per_1024: 64,
                seed: 0x0dd_c0de,
                ..Default::default()
            },
            SolverConfig {
                name: "cinqve".into(),
                default_polarity: true,
                phase_saving: true,
                var_decay: 0.80,
                restart_base: 32,
                reduce_interval: 1000,
                random_branch_per_1024: 128,
                seed: 0x5eed_5eed,
                ..Default::default()
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portfolio_has_four_distinct_configs() {
        let p = SolverConfig::portfolio();
        assert_eq!(p.len(), 4);
        let names: std::collections::HashSet<_> = p.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn default_config_is_unbounded() {
        assert_eq!(SolverConfig::default().conflict_budget, None);
    }
}
