//! # lr-sat: a from-scratch CDCL SAT solver
//!
//! This crate is the decision-procedure substrate of the Lakeroad reproduction. The
//! original system relies on Rosette dispatching to external SMT solvers (Bitwuzla,
//! cvc5, Yices2, STP); here the QF_BV queries produced by `lr-smt` are bit-blasted to
//! CNF and decided by this solver.
//!
//! The solver implements the standard modern CDCL loop:
//!
//! * two-watched-literal unit propagation, with binary clauses propagated through
//!   dedicated implication lists instead of the general watch scheme,
//! * first-UIP conflict analysis with clause learning, recursive learnt-clause
//!   minimization (seen-stamp abstraction-level check), and non-chronological
//!   backjumping,
//! * exponential VSIDS variable activities with an indexed max-heap and phase saving,
//! * LBD ("glue") computation at learn time feeding a tiered learnt-clause database —
//!   core (low glue, never deleted) / mid / local — with glucose-style reduction,
//!   or the legacy pure-activity reduction ([`ClauseDbMode`]),
//! * Luby restarts or adaptive restarts driven by fast/slow exponential moving
//!   averages of conflict LBD ([`RestartMode`]),
//! * solving under assumptions (used by the incremental CEGIS loop),
//! * a DIMACS escape hatch ([`Solver::to_dimacs`] / [`Solver::from_dimacs`]) so a
//!   misbehaving query can be replayed outside the harness.
//!
//! [`SolverConfig`] exposes the heuristic knobs (branching polarity, restart strategy,
//! clause-database tiers, decay factors, random seed) that the portfolio in `lr-synth`
//! varies to emulate the paper's four-solver portfolio.
//!
//! ```
//! use lr_sat::{Lit, Solver, SolveResult};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! solver.add_clause(&[Lit::neg(a)]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! assert_eq!(solver.value(b), Some(true));
//! ```

mod dimacs;
mod solver;
mod types;

pub use solver::{SolveResult, Solver, SolverStats, GLUE_BUCKETS};
pub use types::{Lit, Var};

/// Restart strategy of the search loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RestartMode {
    /// Restart after a Luby-sequence number of conflicts
    /// (unit = [`SolverConfig::restart_base`]).
    Luby,
    /// Glucose-style adaptive restarts: restart when the fast exponential moving
    /// average of conflict LBD exceeds [`SolverConfig::restart_margin`] times the
    /// slow one (search is producing worse-than-usual clauses), with
    /// [`SolverConfig::restart_base`] as the minimum conflict distance between
    /// restarts. Restarts are postponed while the trail is unusually deep — the
    /// solver may be closing in on a model ([`SolverStats::blocked_restarts`]).
    Ema,
}

/// Learnt-clause database management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClauseDbMode {
    /// The legacy policy: every non-binary learnt clause competes on clause
    /// activity alone; reduction deletes the less active half.
    Activity,
    /// Glue-tiered policy: clauses with LBD ≤ [`SolverConfig::core_lbd`] are kept
    /// forever, LBD ≤ [`SolverConfig::mid_lbd`] survives while it keeps being used,
    /// and the rest (the local tier) is reduced by activity. Binary learnt clauses
    /// always count as core.
    Tiered,
}

/// Heuristic configuration for the solver. Different configurations form the
/// "solver portfolio" of the synthesis engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverConfig {
    /// Human-readable name, used in the portfolio experiment report.
    pub name: String,
    /// Default polarity assigned to a variable the first time it is branched on.
    pub default_polarity: bool,
    /// Whether to use saved phases after the first assignment of a variable.
    pub phase_saving: bool,
    /// Multiplicative decay applied to variable activities after each conflict
    /// (the solver actually bumps by a growing increment, MiniSat-style).
    pub var_decay: f64,
    /// Restart strategy; see [`RestartMode`].
    pub restart_mode: RestartMode,
    /// Luby unit, or minimum conflict distance between EMA restarts, in conflicts.
    pub restart_base: u64,
    /// EMA mode: smoothing factor of the fast (recent) conflict-LBD average.
    pub ema_fast_alpha: f64,
    /// EMA mode: smoothing factor of the slow (long-run) conflict-LBD average.
    pub ema_slow_alpha: f64,
    /// EMA mode: restart once `fast > restart_margin * slow`.
    pub restart_margin: f64,
    /// EMA mode: postpone a pending restart while the trail is deeper than
    /// `restart_block_margin` times its long-run average (`f64::INFINITY`
    /// disables blocking; measured best on the bit-blasted synthesis tier, where
    /// rapid restarts win — portfolio members re-enable it for diversity).
    pub restart_block_margin: f64,
    /// Learnt-clause database policy; see [`ClauseDbMode`].
    pub db_mode: ClauseDbMode,
    /// Tiered mode: learnt clauses with LBD at or below this never leave the DB.
    pub core_lbd: u32,
    /// Tiered mode: learnt clauses with LBD at or below this (but above
    /// [`SolverConfig::core_lbd`]) stay while they keep participating in conflicts.
    pub mid_lbd: u32,
    /// Number of conflicts between learnt-clause database reductions.
    pub reduce_interval: u64,
    /// Probability (in 1/1024 units) of making a random decision instead of the
    /// highest-activity one.
    pub random_branch_per_1024: u32,
    /// Seed for the solver's internal PRNG.
    pub seed: u64,
    /// Conflict budget; `None` means unlimited. When exhausted, `solve` returns
    /// [`SolveResult::Unknown`].
    pub conflict_budget: Option<u64>,
}

impl Default for SolverConfig {
    /// The modernized default: glue-tiered clause database and adaptive EMA
    /// restarts. [`SolverConfig::legacy`] restores the early-MiniSat-style policy.
    fn default() -> Self {
        SolverConfig {
            name: "default".to_string(),
            default_polarity: false,
            phase_saving: true,
            var_decay: 0.95,
            restart_mode: RestartMode::Ema,
            restart_base: 50,
            ema_fast_alpha: 1.0 / 32.0,
            ema_slow_alpha: 1.0 / 4096.0,
            restart_margin: 1.25,
            restart_block_margin: f64::INFINITY,
            db_mode: ClauseDbMode::Tiered,
            core_lbd: 2,
            mid_lbd: 6,
            reduce_interval: 2000,
            random_branch_per_1024: 16,
            seed: 0x1a4e_40ad,
            conflict_budget: None,
        }
    }
}

impl SolverConfig {
    /// The pre-modernization configuration: pure-activity clause deletion and Luby
    /// restarts, as the solver shipped before the tiered database landed. Kept as
    /// the differential-testing oracle and the `exp_sat` comparison point.
    pub fn legacy() -> SolverConfig {
        SolverConfig {
            name: "legacy".to_string(),
            restart_mode: RestartMode::Luby,
            // The seed solver's Luby unit, pinned independently of the modern
            // default's EMA minimum-distance value.
            restart_base: 100,
            db_mode: ClauseDbMode::Activity,
            ..SolverConfig::default()
        }
    }

    /// The four portfolio configurations used by `lr-synth`, standing in for the
    /// paper's Bitwuzla / STP / Yices2 / cvc5 portfolio (§4.5). The members span
    /// restart strategy (EMA vs. Luby) × clause-database policy and tier
    /// thresholds (tight vs. roomy core/mid cut-offs vs. activity-only) ×
    /// branching polarity, so they fail differently on the same query.
    pub fn portfolio() -> Vec<SolverConfig> {
        vec![
            // The modernized default: EMA restarts, standard glucose tiers.
            SolverConfig { name: "bitblaze".into(), ..Default::default() },
            // Positive polarity, fast decay, eager EMA restarts with trail-depth
            // blocking enabled, roomy tiers that hoard more mid-glue clauses.
            SolverConfig {
                name: "stipple".into(),
                default_polarity: true,
                var_decay: 0.90,
                restart_base: 50,
                restart_margin: 1.15,
                restart_block_margin: 1.4,
                core_lbd: 3,
                mid_lbd: 8,
                seed: 0xfeed_beef,
                ..Default::default()
            },
            // Luby restarts over the tiered database, no phase saving, slow decay,
            // heavy random branching: the "diversifier".
            SolverConfig {
                name: "yolanda".into(),
                phase_saving: false,
                var_decay: 0.99,
                restart_mode: RestartMode::Luby,
                restart_base: 256,
                random_branch_per_1024: 64,
                seed: 0x0dd_c0de,
                ..Default::default()
            },
            // The throwback member: Luby restarts and activity-only deletion
            // (the legacy policy), positive polarity, very fast decay.
            SolverConfig {
                name: "cinqve".into(),
                default_polarity: true,
                phase_saving: true,
                var_decay: 0.80,
                restart_mode: RestartMode::Luby,
                restart_base: 32,
                db_mode: ClauseDbMode::Activity,
                reduce_interval: 1000,
                random_branch_per_1024: 128,
                seed: 0x5eed_5eed,
                ..Default::default()
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portfolio_has_four_distinct_configs() {
        let p = SolverConfig::portfolio();
        assert_eq!(p.len(), 4);
        let names: std::collections::HashSet<_> = p.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn portfolio_spans_restart_and_db_strategies() {
        let p = SolverConfig::portfolio();
        assert!(p.iter().any(|c| c.restart_mode == RestartMode::Ema));
        assert!(p.iter().any(|c| c.restart_mode == RestartMode::Luby));
        assert!(p.iter().any(|c| c.db_mode == ClauseDbMode::Tiered));
        assert!(p.iter().any(|c| c.db_mode == ClauseDbMode::Activity));
        assert!(p.iter().any(|c| c.default_polarity));
        assert!(p.iter().any(|c| !c.default_polarity));
        // Tier thresholds differ between at least two tiered members.
        let tiers: std::collections::HashSet<(u32, u32)> = p
            .iter()
            .filter(|c| c.db_mode == ClauseDbMode::Tiered)
            .map(|c| (c.core_lbd, c.mid_lbd))
            .collect();
        assert!(tiers.len() >= 2);
    }

    #[test]
    fn default_config_is_unbounded() {
        assert_eq!(SolverConfig::default().conflict_budget, None);
    }

    #[test]
    fn default_is_modern_and_legacy_is_not() {
        let modern = SolverConfig::default();
        assert_eq!(modern.restart_mode, RestartMode::Ema);
        assert_eq!(modern.db_mode, ClauseDbMode::Tiered);
        let legacy = SolverConfig::legacy();
        assert_eq!(legacy.restart_mode, RestartMode::Luby);
        assert_eq!(legacy.db_mode, ClauseDbMode::Activity);
        // Legacy differs only in restart/database policy.
        assert_eq!(legacy.var_decay, modern.var_decay);
        assert_eq!(legacy.seed, modern.seed);
    }
}
