//! Property tests for the observability primitives: histogram merge is
//! associative bucket-for-bucket, the count/sum invariants hold under any
//! recording sequence, quantiles bound the exact order statistics to within
//! one bucket, and span recording keeps per-thread nesting well-formed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use lr_trace::{span, Histogram, TraceEvent};
use proptest::prelude::*;

fn build(values: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn count_and_sum_invariants_hold(values in proptest::collection::vec(0u64..=u64::MAX, 0..200)) {
        let h = build(&values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
        let exact: u64 = values.iter().fold(0u64, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(h.sum(), exact);
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..1_000_000, 0..60),
        b in proptest::collection::vec(0u64..1_000_000, 0..60),
        c in proptest::collection::vec(0u64..1_000_000, 0..60),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_inner = hb.clone();
        right_inner.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);

        // a ⊕ b == b ⊕ a, and merging equals recording the concatenation.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(&ab, &build(&concat));
    }

    #[test]
    fn quantiles_stay_within_one_bucket_of_exact(
        values in proptest::collection::vec(0u64..10_000_000, 1..150),
        q_permille in 0u64..=1000,
    ) {
        let h = build(&values);
        let q = q_permille as f64 / 1000.0;
        let est = h.quantile(q).expect("non-empty");

        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];

        // The estimate is the inclusive upper bound of the exact order
        // statistic's bucket: never below it, and in the same bucket.
        prop_assert!(est >= exact, "estimate {est} below exact {exact}");
        prop_assert_eq!(
            Histogram::bucket_index(est),
            Histogram::bucket_index(exact),
            "estimate {} and exact {} land in different buckets",
            est,
            exact
        );
    }
}

/// Span tests mutate process-global tracer state, so they serialize on one
/// lock and claim a unique context id each, filtering their own events out of
/// the shared sink.
static SPAN_TEST_LOCK: Mutex<()> = Mutex::new(());
static NEXT_CTX: AtomicU64 = AtomicU64::new(0);

const CTX_BASE: u64 = 0x5EED_0000;

fn claim_ctx(_guard: &MutexGuard<'_, ()>) -> u64 {
    CTX_BASE + NEXT_CTX.fetch_add(1, Ordering::Relaxed)
}

/// Recursively opens `shape[depth]` spans at each level, `levels` deep.
fn nest(levels: usize, fanout: usize) {
    if levels == 0 {
        return;
    }
    for _ in 0..fanout {
        let mut g = span("prop-nest");
        g.attr("level", levels as u64);
        nest(levels - 1, fanout);
    }
}

/// Every recorded event at depth d+1 must be contained (interval and thread)
/// in some event at depth d: the close-matches-innermost-open property, as
/// observable from the completed-event log.
fn assert_well_nested(events: &[TraceEvent]) {
    for child in events.iter().filter(|e| e.depth > 0) {
        let contained = events.iter().any(|parent| {
            parent.tid == child.tid
                && parent.depth + 1 == child.depth
                && parent.start_ns <= child.start_ns
                && child.start_ns + child.dur_ns <= parent.start_ns + parent.dur_ns
        });
        assert!(
            contained,
            "event at depth {} (tid {}, [{}, +{}]) has no enclosing parent",
            child.depth, child.tid, child.start_ns, child.dur_ns
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn span_nesting_is_well_formed_per_thread(levels in 1usize..5, fanout in 1usize..4) {
        let guard = SPAN_TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let ctx = claim_ctx(&guard);
        lr_trace::set_enabled(true);
        lr_trace::set_context(ctx);
        nest(levels, fanout);
        lr_trace::set_context(0);
        lr_trace::set_enabled(false);

        let events: Vec<TraceEvent> =
            lr_trace::take_events().into_iter().filter(|e| e.ctx == ctx).collect();
        let expected: usize = (1..=levels).map(|l| fanout.pow(l as u32)).sum();
        prop_assert_eq!(events.len(), expected, "one event per span guard");
        prop_assert!(events.iter().all(|e| (e.depth as usize) < levels));
        assert_well_nested(&events);
    }

    #[test]
    fn spans_across_threads_keep_independent_depths(workers in 1usize..4) {
        let guard = SPAN_TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let ctx = claim_ctx(&guard);
        lr_trace::set_enabled(true);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || {
                    lr_trace::set_context(ctx);
                    let _outer = span("prop-thread-outer");
                    let _inner = span("prop-thread-inner");
                });
            }
        });
        lr_trace::set_enabled(false);

        let events: Vec<TraceEvent> =
            lr_trace::take_events().into_iter().filter(|e| e.ctx == ctx).collect();
        prop_assert_eq!(events.len(), workers * 2);
        for tid in events.iter().map(|e| e.tid).collect::<std::collections::BTreeSet<_>>() {
            let per_thread: Vec<_> = events.iter().filter(|e| e.tid == tid).cloned().collect();
            prop_assert_eq!(per_thread.len(), 2, "each worker thread owns exactly one pair");
            prop_assert_eq!(per_thread.iter().filter(|e| e.depth == 0).count(), 1);
            assert_well_nested(&per_thread);
        }
    }
}
