//! Property tests for the windowed-rate primitives and the OpenMetrics
//! renderer: rolling totals match a brute-force model over any event
//! sequence, slot reuse (wrap) never leaks expired counts, merge reports the
//! sum of its parts, and rendered expositions keep cumulative buckets
//! monotone, escape labels reversibly, and round-trip float samples.

use lr_trace::openmetrics::{escape_label, format_value, sanitize_name};
use lr_trace::{Histogram, OpenMetricsWriter, RollingCounter, RollingHistogram};
use proptest::prelude::*;

/// Brute-force reference: the number of events whose interval falls inside
/// the (ring-clamped) window ending at `now_ms`. Exact for queries at or
/// after every event, because an interval old enough to have been overwritten
/// is also old enough to be outside every queryable window.
fn model_total(
    events: &[(u64, u64)],
    width_ms: u64,
    slots: usize,
    now_ms: u64,
    window_ms: u64,
) -> u64 {
    let cur = now_ms / width_ms;
    let span = (window_ms / width_ms).clamp(1, slots as u64);
    events
        .iter()
        .filter(|(t, _)| {
            let i = t / width_ms;
            i <= cur && cur - i < span
        })
        .map(|(_, d)| d)
        .sum()
}

fn event_seq() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..100_000, 1u64..100), 0..80)
}

/// Text with the characters that matter for exposition framing: printable
/// ASCII mixed with backslashes, quotes, newlines, and one non-ASCII char.
fn tricky_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..68, 0..60).prop_map(|codes| {
        codes
            .into_iter()
            .map(|c| match c {
                64 => '\\',
                65 => '"',
                66 => '\n',
                67 => 'λ',
                c => char::from_u32(c + 33).unwrap(),
            })
            .collect()
    })
}

/// Finite, varied floats: signed mantissa scaled by a power of ten.
fn finite_f64() -> impl Strategy<Value = f64> {
    (-1_000_000_000_000i64..1_000_000_000_000, -200i32..200)
        .prop_map(|(m, e)| m as f64 * 10f64.powi(e))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn rolling_counter_matches_the_model(
        events in event_seq(),
        width_ms in 1u64..3_000,
        slots in 1usize..48,
        window_ms in 0u64..200_000,
        after in 0u64..50_000,
    ) {
        let mut c = RollingCounter::new(width_ms, slots);
        let mut latest = 0u64;
        for &(t, d) in &events {
            c.add(t, d);
            latest = latest.max(t);
        }
        let now = latest + after;
        prop_assert_eq!(
            c.total(now, window_ms),
            model_total(&events, width_ms, slots, now, window_ms)
        );
    }

    #[test]
    fn rolling_counter_wrap_never_leaks(
        width_ms in 1u64..1_000,
        slots in 1usize..16,
        laps in 1u64..5,
        delta in 1u64..50,
    ) {
        // Write into interval 0, then into the interval exactly `laps` ring
        // lengths later — the same slot. Only the newer count may survive.
        let mut c = RollingCounter::new(width_ms, slots);
        c.add(0, 7);
        let later = laps * slots as u64 * width_ms;
        c.add(later, delta);
        prop_assert_eq!(c.total(later, width_ms * slots as u64), delta);
    }

    #[test]
    fn rolling_counter_merge_is_additive(
        a_events in event_seq(),
        b_events in event_seq(),
        width_ms in 1u64..3_000,
        slots in 1usize..48,
        window_ms in 0u64..200_000,
    ) {
        let mut a = RollingCounter::new(width_ms, slots);
        let mut b = RollingCounter::new(width_ms, slots);
        let mut latest = 0u64;
        for &(t, d) in &a_events {
            a.add(t, d);
            latest = latest.max(t);
        }
        for &(t, d) in &b_events {
            b.add(t, d);
            latest = latest.max(t);
        }
        let separate = a.total(latest, window_ms) + b.total(latest, window_ms);
        a.merge(&b);
        prop_assert_eq!(a.total(latest, window_ms), separate);
    }

    #[test]
    fn rolling_histogram_matches_the_model(
        events in event_seq(),
        width_ms in 1u64..3_000,
        slots in 1usize..48,
        window_ms in 0u64..200_000,
    ) {
        let mut h = RollingHistogram::new(width_ms, slots);
        let mut latest = 0u64;
        for &(t, v) in &events {
            h.record(t, v);
            latest = latest.max(t);
        }
        let windowed = h.windowed(latest, window_ms);
        let cur = latest / width_ms;
        let span = (window_ms / width_ms).clamp(1, slots as u64);
        let in_window: Vec<u64> = events
            .iter()
            .filter(|(t, _)| {
                let i = t / width_ms;
                i <= cur && cur - i < span
            })
            .map(|(_, v)| *v)
            .collect();
        prop_assert_eq!(windowed.count(), in_window.len() as u64);
        prop_assert_eq!(windowed.sum(), in_window.iter().sum::<u64>());
    }

    #[test]
    fn rolling_histogram_merge_is_additive(
        a_events in event_seq(),
        b_events in event_seq(),
        width_ms in 1u64..3_000,
        slots in 1usize..48,
        window_ms in 0u64..200_000,
    ) {
        let mut a = RollingHistogram::new(width_ms, slots);
        let mut b = RollingHistogram::new(width_ms, slots);
        let mut latest = 0u64;
        for &(t, v) in &a_events {
            a.record(t, v);
            latest = latest.max(t);
        }
        for &(t, v) in &b_events {
            b.record(t, v);
            latest = latest.max(t);
        }
        let mut separate = a.windowed(latest, window_ms);
        separate.merge(&b.windowed(latest, window_ms));
        a.merge(&b);
        prop_assert_eq!(a.windowed(latest, window_ms), separate);
    }

    #[test]
    fn sanitized_names_stay_in_the_charset(name in tricky_text()) {
        let clean = sanitize_name(&name);
        prop_assert!(!clean.is_empty());
        prop_assert!(clean.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));
        prop_assert!(!clean.chars().next().unwrap().is_ascii_digit());
    }

    #[test]
    fn label_escaping_is_reversible(value in tricky_text()) {
        let escaped = escape_label(&value);
        // Escaped text never contains a raw quote or newline (what would
        // break the `label="..."` framing).
        prop_assert!(!escaped.contains('\n'));
        let mut unescaped = String::new();
        let mut chars = escaped.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('\\') => unescaped.push('\\'),
                    Some('"') => unescaped.push('"'),
                    Some('n') => unescaped.push('\n'),
                    other => prop_assert!(false, "dangling escape: {other:?}"),
                }
            } else {
                prop_assert!(c != '"', "unescaped quote survived");
                unescaped.push(c);
            }
        }
        prop_assert_eq!(unescaped, value);
    }

    #[test]
    fn float_samples_round_trip(value in finite_f64()) {
        let text = format_value(value);
        prop_assert_eq!(text.parse::<f64>().unwrap(), value, "{}", text);
    }

    #[test]
    fn rendered_histograms_are_cumulative_and_consistent(
        values in proptest::collection::vec(0u64..1_000_000_000, 0..120),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut w = OpenMetricsWriter::new();
        w.histogram("lat_us", &[], &h);
        let text = w.finish();

        let mut cumulative: Vec<u64> = Vec::new();
        let mut count_line = None;
        let mut sum_line = None;
        for line in text.lines() {
            if line.starts_with("lat_us_bucket") {
                let v = line.rsplit(' ').next().unwrap().parse::<u64>().unwrap();
                cumulative.push(v);
            } else if let Some(rest) = line.strip_prefix("lat_us_count ") {
                count_line = Some(rest.parse::<u64>().unwrap());
            } else if let Some(rest) = line.strip_prefix("lat_us_sum ") {
                sum_line = Some(rest.parse::<u64>().unwrap());
            }
        }
        prop_assert!(cumulative.windows(2).all(|w| w[0] <= w[1]), "monotone: {:?}", cumulative);
        prop_assert_eq!(*cumulative.last().unwrap(), h.count(), "+Inf bucket equals count");
        prop_assert_eq!(count_line, Some(h.count()));
        prop_assert_eq!(sum_line, Some(h.sum()));
        prop_assert!(text.ends_with("# EOF\n"));
    }
}
