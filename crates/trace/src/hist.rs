//! Log-bucketed latency histograms: mergeable, with exact count/sum
//! invariants and quantile queries.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: bucket 0 holds the value 0; bucket `i ≥ 1` holds values
/// in `[2^(i-1), 2^i - 1]`; the last bucket's upper bound is `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// A log-bucketed histogram over `u64` samples (power-of-two bucket bounds).
///
/// Invariants, maintained by construction and checked by the property tests:
/// `count == Σ buckets`, and `sum` is the exact (saturating) total of every
/// recorded sample. [`Histogram::merge`] is lossless — merging is bucket-wise
/// addition, so it is associative and commutative, which is what lets
/// per-worker histograms combine into batch totals without coordination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: [0; HIST_BUCKETS], count: 0, sum: 0 }
    }

    /// The bucket a value lands in: 0 for 0, else `floor(log2 v) + 1`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The inclusive upper bound of a bucket.
    pub fn bucket_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            i if i >= HIST_BUCKETS - 1 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Adds another histogram into this one, bucket-wise.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating total of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// The `q`-quantile as the inclusive upper bound of the bucket holding
    /// the sample of that rank — i.e. within one power-of-two bucket of the
    /// exact order statistic, and never below it. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_bound(i));
            }
        }
        Some(Self::bucket_bound(HIST_BUCKETS - 1))
    }

    /// Median upper bound. `None` when empty.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th-percentile upper bound. `None` when empty.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th-percentile upper bound. `None` when empty.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Renders the occupied bucket range as a text bar chart with a summary
    /// line (count, mean, p50/p90/p99), all in the given unit.
    pub fn render(&self, unit: &str) -> String {
        let mut out = String::new();
        if self.count == 0 {
            let _ = writeln!(out, "  (no samples)");
            return out;
        }
        let _ = writeln!(
            out,
            "  n={} mean={:.1}{unit} p50≤{}{unit} p90≤{}{unit} p99≤{}{unit}",
            self.count,
            self.mean(),
            self.p50().unwrap_or(0),
            self.p90().unwrap_or(0),
            self.p99().unwrap_or(0),
        );
        let lo = self.buckets.iter().position(|&c| c > 0).unwrap_or(0);
        let hi = self.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
        let peak = *self.buckets.iter().max().unwrap_or(&1);
        for i in lo..=hi {
            let c = self.buckets[i];
            let width = (c * 40).checked_div(peak).unwrap_or(0) as usize;
            let _ = writeln!(
                out,
                "  ≤{:>12}{unit} |{:<40}| {c}",
                Self::bucket_bound(i),
                "#".repeat(width)
            );
        }
        out
    }
}

/// A histogram whose buckets are `AtomicU64`s, for concurrent recording
/// (e.g. the daemon's live request-latency and queue-wait metrics).
///
/// [`AtomicHistogram::snapshot`] derives `count` from the bucket loads so the
/// snapshot always satisfies `count == Σ buckets`; `sum` is read separately
/// and may lag by in-flight recordings under concurrency.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram::new()
    }
}

impl AtomicHistogram {
    /// An empty atomic histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample (relaxed ordering; counters, not synchronization).
    pub fn record(&self, value: u64) {
        self.buckets[Histogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy as a plain [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            h.buckets[i] = c;
            h.count += c;
        }
        h.sum = self.sum.load(Ordering::Relaxed);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_domain() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 17, 1023, 1024, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_bound(i), "{v} within its bucket bound");
            if i > 0 {
                assert!(v > Histogram::bucket_bound(i - 1), "{v} above the previous bound");
            }
        }
    }

    #[test]
    fn quantiles_bound_the_order_statistics() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 10, 100, 1000, 1000, 1000, 5000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 1 + 2 + 3 + 10 + 100 + 1000 + 1000 + 1000 + 5000 + 100_000);
        // Exact p50 (rank 5) is 100; the estimate is its bucket's bound.
        assert_eq!(h.p50(), Some(127));
        assert!(h.p99() >= h.p90() && h.p90() >= h.p50());
        assert_eq!(Histogram::new().p50(), None);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1u64, 5, 9] {
            a.record(v);
        }
        for v in [2u64, 5, 1_000_000] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge commutes");
        assert_eq!(ab.count(), 6);
        assert_eq!(ab.sum(), a.sum() + b.sum());
        assert_eq!(ab.buckets().iter().sum::<u64>(), ab.count());
    }

    #[test]
    fn atomic_snapshot_matches_serial_recording() {
        let ah = AtomicHistogram::new();
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 1999, 1 << 40] {
            ah.record(v);
            h.record(v);
        }
        assert_eq!(ah.snapshot(), h);
    }

    #[test]
    fn render_marks_occupied_buckets() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(900);
        let text = h.render("us");
        assert!(text.contains("n=2"), "{text}");
        assert!(text.contains("≤"), "{text}");
        assert!(Histogram::new().render("us").contains("no samples"));
    }
}
