//! OpenMetrics / Prometheus text exposition for the metrics registry and the
//! workspace's log-bucketed histograms.
//!
//! The writer builds one self-contained exposition: `# TYPE` metadata per
//! family, `name{label="value"} value` samples, histograms as *cumulative*
//! `_bucket{le="..."}` series plus `_sum`/`_count`, and a final `# EOF`
//! terminator. Counter families follow the OpenMetrics convention of a bare
//! family name in metadata and a `_total`-suffixed sample name.
//!
//! Everything is `std`-only and deliberately small: names are sanitized to
//! the metric charset (`[a-zA-Z0-9_:]`, non-digit first), label values are
//! escaped (`\\`, `\"`, `\n`), integer samples are rendered as integers
//! (lossless for `u64`, which `f64` is not), and float samples use Rust's
//! shortest round-trip formatting so a scraper recovers the exact value.

use std::fmt::Write as _;

use crate::hist::{Histogram, HIST_BUCKETS};
use crate::registry::MetricsSnapshot;

/// Maps an internal metric name (dots, dashes, anything) onto the exposition
/// charset: `[a-zA-Z0-9_:]` with a non-digit first character.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value for `label="..."` position: backslash, quote, and
/// newline get backslash escapes; everything else passes through.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders a float sample value: shortest form that parses back to the same
/// `f64` (Rust's `{}`), with the exposition spellings for the non-finite
/// values (`+Inf`, `-Inf`, `NaN`).
pub fn format_value(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

fn format_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_name(k), escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// An in-progress OpenMetrics exposition. Build with the typed appenders,
/// then [`finish`](OpenMetricsWriter::finish) to get the terminated text.
#[derive(Debug, Default)]
pub struct OpenMetricsWriter {
    out: String,
    last_family: String,
}

impl OpenMetricsWriter {
    /// An empty exposition.
    pub fn new() -> Self {
        OpenMetricsWriter::default()
    }

    fn type_line(&mut self, family: &str, kind: &str) {
        if self.last_family != family {
            let _ = writeln!(self.out, "# TYPE {family} {kind}");
            self.last_family = family.to_string();
        }
    }

    /// Appends a monotonic counter sample. The family is `name` sanitized;
    /// the sample itself carries the `_total` suffix.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let family = sanitize_name(name);
        let family = family.strip_suffix("_total").unwrap_or(&family).to_string();
        self.type_line(&family, "counter");
        let _ = writeln!(self.out, "{family}_total{} {value}", format_labels(labels));
    }

    /// Appends an integer gauge sample.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let family = sanitize_name(name);
        self.type_line(&family, "gauge");
        let _ = writeln!(self.out, "{family}{} {value}", format_labels(labels));
    }

    /// Appends a float gauge sample (shortest round-trip formatting).
    pub fn gauge_f64(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let family = sanitize_name(name);
        self.type_line(&family, "gauge");
        let _ = writeln!(self.out, "{family}{} {}", format_labels(labels), format_value(value));
    }

    /// Appends a histogram family: cumulative `_bucket{le="..."}` series
    /// (bounds up to the highest occupied bucket, then `+Inf`), `_sum`, and
    /// `_count`. Extra labels are carried on every series.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], hist: &Histogram) {
        let family = sanitize_name(name);
        self.type_line(&family, "histogram");
        let hi = hist.buckets().iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        let mut cumulative = 0u64;
        for (i, &c) in hist.buckets().iter().enumerate().take(hi.min(HIST_BUCKETS - 1)) {
            cumulative += c;
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            let bound = Histogram::bucket_bound(i).to_string();
            with_le.push(("le", &bound));
            let _ = writeln!(self.out, "{family}_bucket{} {cumulative}", format_labels(&with_le));
        }
        let mut with_le: Vec<(&str, &str)> = labels.to_vec();
        with_le.push(("le", "+Inf"));
        let _ = writeln!(self.out, "{family}_bucket{} {}", format_labels(&with_le), hist.count());
        let _ = writeln!(self.out, "{family}_sum{} {}", format_labels(labels), hist.sum());
        let _ = writeln!(self.out, "{family}_count{} {}", format_labels(labels), hist.count());
    }

    /// Appends every metric in a registry snapshot, each name prefixed with
    /// `prefix` before sanitization.
    pub fn snapshot(&mut self, prefix: &str, snap: &MetricsSnapshot) {
        for (name, value) in &snap.counters {
            self.counter(&format!("{prefix}{name}"), &[], *value);
        }
        for (name, value) in &snap.gauges {
            self.gauge(&format!("{prefix}{name}"), &[], *value);
        }
        for (name, hist) in &snap.histograms {
            self.histogram(&format!("{prefix}{name}"), &[], hist);
        }
    }

    /// Terminates the exposition with `# EOF` and returns the text.
    pub fn finish(mut self) -> String {
        self.out.push_str("# EOF\n");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitization_and_escaping() {
        assert_eq!(sanitize_name("daemon.queue_wait_us"), "daemon_queue_wait_us");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn counters_get_the_total_suffix_once() {
        let mut w = OpenMetricsWriter::new();
        w.counter("reqs", &[], 3);
        w.counter("done_total", &[], 4);
        let text = w.finish();
        assert!(text.contains("# TYPE reqs counter\nreqs_total 3\n"), "{text}");
        assert!(text.contains("# TYPE done counter\ndone_total 4\n"), "{text}");
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 3, 900] {
            h.record(v);
        }
        let mut w = OpenMetricsWriter::new();
        w.histogram("lat", &[("stage", "cegis")], &h);
        let text = w.finish();
        assert!(text.contains("lat_bucket{stage=\"cegis\",le=\"0\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{stage=\"cegis\",le=\"3\"} 4"), "{text}");
        assert!(text.contains("lat_bucket{stage=\"cegis\",le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("lat_sum{stage=\"cegis\"} 907"), "{text}");
        assert!(text.contains("lat_count{stage=\"cegis\"} 5"), "{text}");
    }

    #[test]
    fn float_values_round_trip() {
        for v in [0.1f64, 1e-9, 123456.789, -3.25] {
            let s = format_value(v);
            assert_eq!(s.parse::<f64>().unwrap(), v, "{s}");
        }
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NAN), "NaN");
    }
}
