//! The named metrics registry: process-wide counters, gauges, and histograms.
//!
//! Like spans, registry writes are gated on [`enabled`](crate::enabled) so the
//! disabled cost is one relaxed atomic load. (Metrics that must stay live even
//! without tracing — the daemon's admission counters — keep their own
//! `AtomicU64`/[`AtomicHistogram`](crate::AtomicHistogram) fields instead.)

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::hist::Histogram;
use crate::span::enabled;

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

fn with_registry(f: impl FnOnce(&mut Registry)) {
    f(&mut registry().lock().unwrap_or_else(PoisonError::into_inner));
}

/// Adds `delta` to the named monotonic counter. No-op while tracing is off.
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        let c = r.counters.entry(name.to_string()).or_insert(0);
        *c = c.saturating_add(delta);
    });
}

/// Sets the named gauge to `value` (last write wins). No-op while tracing is
/// off.
pub fn gauge_set(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| {
        r.gauges.insert(name.to_string(), value);
    });
}

/// Records `value` into the named histogram. No-op while tracing is off.
pub fn hist_record(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    with_registry(|r| r.histograms.entry(name.to_string()).or_default().record(value));
}

/// The current value of one named counter (0 when never written). Cheaper
/// than [`metrics_snapshot`] when a single counter is wanted, e.g. the
/// daemon's `stats` report of `trace_spans_dropped`.
pub fn counter_value(name: &str) -> u64 {
    let r = registry().lock().unwrap_or_else(PoisonError::into_inner);
    r.counters.get(name).copied().unwrap_or(0)
}

/// A point-in-time copy of the registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (last written value).
    pub gauges: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

/// Snapshots every named metric.
pub fn metrics_snapshot() -> MetricsSnapshot {
    let r = registry().lock().unwrap_or_else(PoisonError::into_inner);
    MetricsSnapshot {
        counters: r.counters.clone(),
        gauges: r.gauges.clone(),
        histograms: r.histograms.clone(),
    }
}

/// Clears every named metric (see also [`reset`](crate::reset)).
pub fn reset_metrics() {
    with_registry(|r| *r = Registry::default());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::set_enabled;

    #[test]
    fn registry_records_only_while_enabled() {
        set_enabled(false);
        counter_add("test.off", 1);
        assert!(!metrics_snapshot().counters.contains_key("test.off"));

        set_enabled(true);
        counter_add("test.reg.c", 2);
        counter_add("test.reg.c", 3);
        gauge_set("test.reg.g", 9);
        gauge_set("test.reg.g", 4);
        hist_record("test.reg.h", 100);
        set_enabled(false);

        let snap = metrics_snapshot();
        assert_eq!(snap.counters.get("test.reg.c"), Some(&5));
        assert_eq!(snap.gauges.get("test.reg.g"), Some(&4));
        assert_eq!(snap.histograms.get("test.reg.h").map(Histogram::count), Some(1));
    }
}
