//! Span recording: thread-local buffers, the global bounded sink, and the
//! enabled/echo switches.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Upper bound on events retained in the global sink; the oldest events are
/// dropped first (and counted by [`dropped_events`]) so a long-running daemon
/// keeps a *recent* window rather than growing without bound.
const SINK_CAP: usize = 1 << 17;

/// A thread buffer above this size flushes into the sink even mid-span, so a
/// pathological span storm cannot hold unbounded memory thread-locally.
const THREAD_FLUSH: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);
static STDERR_ECHO: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn sink() -> &'static Mutex<VecDeque<TraceEvent>> {
    static SINK: OnceLock<Mutex<VecDeque<TraceEvent>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Nanoseconds since the process's trace epoch (the first call wins the race
/// to define it). Monotonic; shared by every span so traces line up across
/// threads.
pub fn now_ns() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Turns span recording (and the metrics registry) on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether tracing is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the stderr echo sink on or off: with it on, every recorded span also
/// prints one `[lr_trace]` line (name, duration, attributes) to stderr — the
/// moral successor of the old `LR_CEGIS_TRACE` `eprintln!`s.
pub fn set_stderr_echo(on: bool) {
    STDERR_ECHO.store(on, Ordering::SeqCst);
}

/// Whether the stderr echo sink is on.
pub fn stderr_echo() -> bool {
    STDERR_ECHO.load(Ordering::Relaxed)
}

/// Prints one `[lr_trace]` line to stderr iff the echo sink is on. For the few
/// diagnostics that are inherently textual (e.g. `LR_CEGIS_TRACE_TERMS` term
/// dumps) and cannot ride on span attributes.
pub fn echo(text: &str) {
    if stderr_echo() {
        eprintln!("[lr_trace] {text}");
    }
}

/// One completed span, recorded when its guard dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Stage name (static: span call sites name their stage in code).
    pub name: &'static str,
    /// Trace-assigned thread id (small, sequential; not the OS tid).
    pub tid: u64,
    /// The thread's context id at close time — the serving layers set this to
    /// the job index/sequence number so events group per job. 0 = no context.
    pub ctx: u64,
    /// Nesting depth at open time (0 = outermost span on its thread).
    pub depth: u16,
    /// Start, in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Attributes attached via [`SpanGuard::attr`], in attachment order.
    pub attrs: Vec<(&'static str, u64)>,
}

struct ThreadBuf {
    tid: u64,
    depth: Cell<u16>,
    ctx: Cell<u64>,
    events: RefCell<Vec<TraceEvent>>,
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        // Thread exit: whatever the buffer still holds must reach the sink, or
        // short-lived worker threads (the solver portfolio) would lose their
        // spans whenever their outermost span closed before a nested flush.
        flush_into_sink(self.events.get_mut());
    }
}

thread_local! {
    static TB: ThreadBuf = ThreadBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        depth: Cell::new(0),
        ctx: Cell::new(0),
        events: RefCell::new(Vec::new()),
    };
}

fn flush_into_sink(buf: &mut Vec<TraceEvent>) {
    if buf.is_empty() {
        return;
    }
    let mut dropped = 0u64;
    {
        let mut sink = sink().lock().unwrap_or_else(PoisonError::into_inner);
        for ev in buf.drain(..) {
            if sink.len() == SINK_CAP {
                sink.pop_front();
                dropped += 1;
            }
            sink.push_back(ev);
        }
    }
    if dropped > 0 {
        DROPPED.fetch_add(dropped, Ordering::Relaxed);
        // Mirrored into the registry (outside the sink lock) so overflow is
        // visible on the ordinary metrics surfaces, not only via the
        // dedicated accessor.
        crate::registry::counter_add("trace_spans_dropped", dropped);
    }
}

/// Sets the current thread's context id. The serving layers use this for
/// per-job attribution: the scheduler sets it to the job's submission index
/// before running it, and the portfolio propagates it into spawned solver
/// threads so a job's spans stay grouped across threads.
pub fn set_context(ctx: u64) {
    let _ = TB.try_with(|t| t.ctx.set(ctx));
}

/// The current thread's context id (0 when never set).
pub fn context() -> u64 {
    TB.try_with(|t| t.ctx.get()).unwrap_or(0)
}

/// RAII guard for one span: created by [`span`], records a [`TraceEvent`] on
/// drop. When tracing is disabled the guard is inert and costs nothing beyond
/// its construction.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    depth: u16,
    active: bool,
    attrs: Vec<(&'static str, u64)>,
}

/// Opens a span named `name` on the current thread. Nest freely; guards close
/// innermost-first by drop order, which is what keeps per-thread nesting
/// well-formed. The guard must be bound (`let _span = span(...)`), not
/// discarded as `_`, or it closes immediately.
#[must_use = "binding the guard is what delimits the span"]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, start_ns: 0, depth: 0, active: false, attrs: Vec::new() };
    }
    let start_ns = now_ns();
    let depth = TB
        .try_with(|t| {
            let d = t.depth.get();
            t.depth.set(d.saturating_add(1));
            d
        })
        .unwrap_or(0);
    SpanGuard { name, start_ns, depth, active: true, attrs: Vec::new() }
}

impl SpanGuard {
    /// Attaches a `u64` attribute; call any time before the guard drops.
    /// No-op on inert guards.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if self.active {
            self.attrs.push((key, value));
        }
    }

    /// Whether this guard will record an event on drop (i.e. tracing was
    /// enabled when it opened). Lets call sites skip attribute computation
    /// that is itself costly.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        if stderr_echo() {
            let mut line = format!("{} {:.3}ms", self.name, dur_ns as f64 / 1e6);
            for (k, v) in &self.attrs {
                let _ = write!(line, " {k}={v}");
            }
            eprintln!("[lr_trace] {line}");
        }
        let _ = TB.try_with(|t| {
            t.depth.set(t.depth.get().saturating_sub(1));
            let ev = TraceEvent {
                name: self.name,
                tid: t.tid,
                ctx: t.ctx.get(),
                depth: self.depth,
                start_ns: self.start_ns,
                dur_ns,
                attrs: std::mem::take(&mut self.attrs),
            };
            let mut buf = t.events.borrow_mut();
            buf.push(ev);
            if t.depth.get() == 0 || buf.len() >= THREAD_FLUSH {
                flush_into_sink(&mut buf);
            }
        });
    }
}

/// Flushes the *current thread's* buffer into the global sink. Other threads
/// flush themselves (outermost-span close and thread exit).
pub fn flush() {
    let _ = TB.try_with(|t| flush_into_sink(&mut t.events.borrow_mut()));
}

/// Drains and returns the sink (oldest first), flushing the current thread's
/// buffer first. Events still buffered on *other live threads inside open
/// spans* are not included.
pub fn take_events() -> Vec<TraceEvent> {
    flush();
    let mut sink = sink().lock().unwrap_or_else(PoisonError::into_inner);
    sink.drain(..).collect()
}

/// Clones the sink without draining it (oldest first), flushing the current
/// thread's buffer first. This is what the daemon's `trace` request serves.
pub fn snapshot_events() -> Vec<TraceEvent> {
    flush();
    let sink = sink().lock().unwrap_or_else(PoisonError::into_inner);
    sink.iter().cloned().collect()
}

/// How many events the bounded sink has discarded (oldest-first) since the
/// last [`reset`](crate::reset).
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

pub(crate) fn reset_spans() {
    flush();
    sink().lock().unwrap_or_else(PoisonError::into_inner).clear();
    DROPPED.store(0, Ordering::SeqCst);
}

/// Aggregates events into a per-stage text table: per span name, the call
/// count, total/mean/max duration, sorted by total time descending. This is
/// the quick "where did the time go" view; the Chrome export is the deep one.
pub fn stage_summary(events: &[TraceEvent]) -> String {
    let mut agg: std::collections::BTreeMap<&'static str, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for ev in events {
        let e = agg.entry(ev.name).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 = e.1.saturating_add(ev.dur_ns);
        e.2 = e.2.max(ev.dur_ns);
    }
    let mut rows: Vec<_> = agg.into_iter().collect();
    rows.sort_by(|a, b| b.1 .1.cmp(&a.1 .1).then(a.0.cmp(b.0)));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:>8} {:>12} {:>10} {:>10}",
        "stage", "count", "total_ms", "mean_ms", "max_ms"
    );
    for (name, (count, total, max)) in rows {
        let _ = writeln!(
            out,
            "{:<24} {:>8} {:>12.2} {:>10.3} {:>10.3}",
            name,
            count,
            total as f64 / 1e6,
            total as f64 / 1e6 / count as f64,
            max as f64 / 1e6
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Span tests share process-global state with the rest of the crate's
    // tests; each one claims a unique context id and filters on it, so
    // parallel test threads cannot see each other's events.

    #[test]
    fn disabled_spans_record_nothing_and_cost_no_clock() {
        set_enabled(false);
        let mut g = span("noop");
        g.attr("k", 1);
        assert!(!g.is_active());
        drop(g);
        flush();
        assert!(!snapshot_events().iter().any(|e| e.name == "noop"));
    }

    #[test]
    fn nested_spans_record_depth_and_containment() {
        set_enabled(true);
        set_context(101);
        {
            let mut outer = span("outer-t");
            outer.attr("a", 7);
            {
                let _inner = span("inner-t");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        set_enabled(false);
        let events: Vec<_> = take_events().into_iter().filter(|e| e.ctx == 101).collect();
        let inner = events.iter().find(|e| e.name == "inner-t").expect("inner recorded");
        let outer = events.iter().find(|e| e.name == "outer-t").expect("outer recorded");
        assert_eq!(outer.depth + 1, inner.depth);
        assert!(outer.start_ns <= inner.start_ns);
        assert!(
            inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns,
            "inner interval inside outer"
        );
        assert_eq!(outer.attrs, vec![("a", 7)]);
        set_context(0);
    }

    #[test]
    fn stage_summary_groups_and_sorts() {
        let mk = |name, dur| TraceEvent {
            name,
            tid: 1,
            ctx: 0,
            depth: 0,
            start_ns: 0,
            dur_ns: dur,
            attrs: Vec::new(),
        };
        let events = [mk("fast", 1_000_000), mk("slow", 9_000_000), mk("fast", 3_000_000)];
        let summary = stage_summary(&events);
        let slow_at = summary.find("slow").unwrap();
        let fast_at = summary.find("fast").unwrap();
        assert!(slow_at < fast_at, "sorted by total time desc:\n{summary}");
        assert!(summary.contains("count"), "{summary}");
    }
}
