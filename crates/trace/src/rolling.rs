//! Windowed rates: fixed rings of interval buckets over a caller-supplied
//! clock, giving "last 1s/10s/60s" totals instead of lifetime aggregates.
//!
//! Both [`RollingCounter`] and [`RollingHistogram`] are deliberately *passive*
//! about time: every operation takes an explicit `now_ms` tick. That keeps the
//! window arithmetic pure (and property-testable — advance, wrap, and merge
//! are plain integer manipulation), and leaves the clock choice to the caller;
//! the daemon feeds them milliseconds since its own start from a `Mutex`.
//!
//! Each ring slot covers one interval of `width_ms` and remembers which
//! absolute interval (`now_ms / width_ms`) it belongs to. Writes lazily evict
//! a slot whose interval has passed out of the ring; reads filter by interval
//! number, so stale slots are simply ignored — there is no sweeper to run.
//!
//! Merging two rings of identical geometry keeps, per slot, the newer
//! interval (two intervals sharing a slot differ by a multiple of the ring
//! length, so the older one is out of every queryable window). For queries at
//! or after the newest write on either side, a merged ring therefore reports
//! exactly the sum of what its parts would report.

use crate::hist::Histogram;

/// The slot geometry shared by both rolling types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Geometry {
    /// Width of one interval bucket, in milliseconds (> 0).
    width_ms: u64,
    /// Number of ring slots (> 0). The longest queryable window is
    /// `width_ms * slots`.
    slots: usize,
}

impl Geometry {
    fn interval(self, now_ms: u64) -> u64 {
        now_ms / self.width_ms
    }

    fn position(self, interval: u64) -> usize {
        (interval % self.slots as u64) as usize
    }

    /// Number of trailing intervals a `window_ms` query covers, clamped to
    /// the ring (at least 1, at most `slots`).
    fn window_intervals(self, window_ms: u64) -> u64 {
        (window_ms / self.width_ms).clamp(1, self.slots as u64)
    }

    /// Whether a slot stamped `interval` is inside the window ending at the
    /// interval containing `now_ms`.
    fn in_window(self, slot_interval: u64, now_ms: u64, window_ms: u64) -> bool {
        let cur = self.interval(now_ms);
        let span = self.window_intervals(window_ms);
        slot_interval <= cur && cur - slot_interval < span
    }
}

/// A windowed event counter: a fixed ring of per-interval counts supporting
/// "events in the last W milliseconds" and rate-per-second queries.
#[derive(Debug, Clone)]
pub struct RollingCounter {
    geo: Geometry,
    /// `(interval, count)` per slot; `None` until first written.
    ring: Vec<Option<(u64, u64)>>,
}

impl RollingCounter {
    /// A counter with `slots` buckets of `width_ms` each. Panics when either
    /// is zero.
    pub fn new(width_ms: u64, slots: usize) -> Self {
        assert!(width_ms > 0 && slots > 0, "rolling geometry must be non-degenerate");
        RollingCounter { geo: Geometry { width_ms, slots }, ring: vec![None; slots] }
    }

    /// Adds `delta` events at tick `now_ms`. A tick so far in the past that
    /// its slot already holds a newer interval (≥ one full ring behind) is
    /// dropped — it is outside every queryable window anyway.
    pub fn add(&mut self, now_ms: u64, delta: u64) {
        let interval = self.geo.interval(now_ms);
        let pos = self.geo.position(interval);
        match &mut self.ring[pos] {
            Some((stamp, count)) if *stamp == interval => *count = count.saturating_add(delta),
            Some((stamp, _)) if *stamp > interval => {}
            slot => *slot = Some((interval, delta)),
        }
    }

    /// Events observed in the trailing `window_ms` as of `now_ms`. The window
    /// is clamped to the ring span and always includes the (possibly partial)
    /// current interval.
    pub fn total(&self, now_ms: u64, window_ms: u64) -> u64 {
        self.ring
            .iter()
            .flatten()
            .filter(|(stamp, _)| self.geo.in_window(*stamp, now_ms, window_ms))
            .map(|(_, count)| *count)
            .sum()
    }

    /// [`total`](RollingCounter::total) divided by the (clamped) window
    /// length in seconds.
    pub fn rate_per_sec(&self, now_ms: u64, window_ms: u64) -> f64 {
        let span_ms = self.geo.window_intervals(window_ms) * self.geo.width_ms;
        self.total(now_ms, window_ms) as f64 * 1e3 / span_ms as f64
    }

    /// Folds `other` into `self` slot-wise: matching intervals add, newer
    /// intervals replace, older ones are ignored. Panics when the geometries
    /// differ.
    pub fn merge(&mut self, other: &RollingCounter) {
        assert_eq!(self.geo, other.geo, "rolling merge requires identical geometry");
        for (mine, theirs) in self.ring.iter_mut().zip(other.ring.iter()) {
            let Some((stamp, count)) = theirs else { continue };
            match mine {
                Some((s, c)) if s == stamp => *c = c.saturating_add(*count),
                Some((s, _)) if *s > *stamp => {}
                slot => *slot = Some((*stamp, *count)),
            }
        }
    }
}

/// A windowed histogram: a fixed ring of per-interval [`Histogram`]s whose
/// window query merges the live intervals, giving "p99 over the last 10s"
/// rather than a lifetime distribution.
#[derive(Debug, Clone)]
pub struct RollingHistogram {
    geo: Geometry,
    ring: Vec<Option<(u64, Histogram)>>,
}

impl RollingHistogram {
    /// A histogram ring with `slots` buckets of `width_ms` each. Panics when
    /// either is zero.
    pub fn new(width_ms: u64, slots: usize) -> Self {
        assert!(width_ms > 0 && slots > 0, "rolling geometry must be non-degenerate");
        RollingHistogram { geo: Geometry { width_ms, slots }, ring: vec![None; slots] }
    }

    /// Records one sample at tick `now_ms`. As with
    /// [`RollingCounter::add`], a tick a full ring behind the slot's current
    /// interval is dropped.
    pub fn record(&mut self, now_ms: u64, value: u64) {
        let interval = self.geo.interval(now_ms);
        let pos = self.geo.position(interval);
        match &mut self.ring[pos] {
            Some((stamp, h)) if *stamp == interval => h.record(value),
            Some((stamp, _)) if *stamp > interval => {}
            slot => {
                let mut h = Histogram::new();
                h.record(value);
                *slot = Some((interval, h));
            }
        }
    }

    /// The merged distribution of the trailing `window_ms` as of `now_ms`
    /// (window clamped to the ring span).
    pub fn windowed(&self, now_ms: u64, window_ms: u64) -> Histogram {
        let mut out = Histogram::new();
        for (stamp, h) in self.ring.iter().flatten() {
            if self.geo.in_window(*stamp, now_ms, window_ms) {
                out.merge(h);
            }
        }
        out
    }

    /// Folds `other` into `self` slot-wise: matching intervals merge their
    /// histograms, newer intervals replace, older ones are ignored. Panics
    /// when the geometries differ.
    pub fn merge(&mut self, other: &RollingHistogram) {
        assert_eq!(self.geo, other.geo, "rolling merge requires identical geometry");
        for (mine, theirs) in self.ring.iter_mut().zip(other.ring.iter()) {
            let Some((stamp, h)) = theirs else { continue };
            match mine {
                Some((s, mh)) if s == stamp => mh.merge(h),
                Some((s, _)) if *s > *stamp => {}
                slot => *slot = Some((*stamp, h.clone())),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_respect_the_window() {
        let mut c = RollingCounter::new(1_000, 64);
        c.add(0, 3);
        c.add(5_500, 2);
        c.add(9_999, 1);
        // As of t=9999s: the 1s window sees only the current interval.
        assert_eq!(c.total(9_999, 1_000), 1);
        // The 10s window covers intervals 0..=9, so everything.
        assert_eq!(c.total(9_999, 10_000), 6);
        // Step forward: interval 0 ages out of the 10s window.
        assert_eq!(c.total(10_500, 10_000), 3);
    }

    #[test]
    fn wrapping_overwrites_expired_slots() {
        let mut c = RollingCounter::new(1_000, 4);
        c.add(0, 7);
        // Interval 4 reuses slot 0; the stale count must not leak in.
        c.add(4_000, 1);
        assert_eq!(c.total(4_000, 4_000), 1);
    }

    #[test]
    fn rates_divide_by_the_clamped_window() {
        let mut c = RollingCounter::new(1_000, 64);
        for t in 0..10u64 {
            c.add(t * 1_000, 5);
        }
        let rps = c.rate_per_sec(9_999, 10_000);
        assert!((rps - 5.0).abs() < 1e-9, "{rps}");
    }

    #[test]
    fn merge_adds_matching_intervals_and_keeps_newer() {
        let mut a = RollingCounter::new(1_000, 4);
        let mut b = RollingCounter::new(1_000, 4);
        a.add(1_000, 2);
        b.add(1_000, 3);
        b.add(2_500, 10);
        a.merge(&b);
        assert_eq!(a.total(2_500, 4_000), 15);
    }

    #[test]
    fn windowed_histograms_merge_live_intervals() {
        let mut h = RollingHistogram::new(1_000, 8);
        h.record(0, 100);
        h.record(3_000, 1_000);
        h.record(3_100, 1_000);
        let recent = h.windowed(3_500, 1_000);
        assert_eq!(recent.count(), 2);
        let all = h.windowed(3_500, 8_000);
        assert_eq!(all.count(), 3);
        assert_eq!(all.sum(), 2_100);
    }
}
