//! # lr-trace: structured spans, mergeable latency histograms, and a metrics registry
//!
//! The mapping stack's observability layer. Everything here is `std`-only and
//! dependency-free so that every crate in the workspace — from the SAT core up
//! to the serving daemon — can instrument itself without dependency cycles or
//! new external crates.
//!
//! Three pieces:
//!
//! * **Spans** ([`span`]): RAII-guarded, nested, per-thread timing regions with
//!   a stage name and `u64` attributes. Recording is lock-free on the hot path
//!   (a thread-local buffer); completed events drain into a bounded global
//!   sink when a thread's outermost span closes (and on thread exit). When
//!   tracing is disabled — the default — `span()` is one relaxed atomic load
//!   and no clock read, cheap enough to leave in the tightest solver loops.
//!   [`take_events`] / [`snapshot_events`] expose the sink; `lr_serve`'s
//!   `tracefmt` module renders events as Chrome trace-event JSON, and
//!   [`stage_summary`] aggregates them into a per-stage text table.
//! * **Histograms** ([`Histogram`], [`AtomicHistogram`]): log-bucketed
//!   (power-of-two bounds) latency histograms with exact `count`/`sum`
//!   invariants, lossless [`Histogram::merge`], and p50/p90/p99 queries. The
//!   atomic variant serves live multi-threaded recording (the daemon's
//!   request-latency and queue-wait metrics) and snapshots into the plain one.
//! * **A named metrics registry** ([`counter_add`], [`gauge_set`],
//!   [`hist_record`], [`metrics_snapshot`]): process-wide counters, gauges,
//!   and histograms keyed by name, active only while tracing is enabled.
//!
//! On top of those, two serving-oriented surfaces:
//!
//! * **Rolling windows** ([`RollingCounter`], [`RollingHistogram`]): fixed
//!   rings of interval buckets over a caller-supplied clock, answering
//!   "events in the last 1s/10s/60s" and "p99 over the last 10s" instead of
//!   lifetime aggregates — what a resident daemon's `stats` should report.
//! * **OpenMetrics exposition** ([`OpenMetricsWriter`]): renders counters,
//!   gauges, and the log-bucketed histograms (as cumulative
//!   `_bucket`/`_sum`/`_count` series) in Prometheus/OpenMetrics text format,
//!   so any scraper can consume the registry without a bespoke client.
//!
//! The stderr echo sink ([`set_stderr_echo`]) reproduces the old
//! `LR_CEGIS_TRACE` line-per-check behaviour: with it on, every recorded span
//! also prints one `[lr_trace]` line. The CEGIS engine still honours the
//! `LR_CEGIS_TRACE` / `LR_CEGIS_TRACE_TERMS` environment variables by turning
//! on tracing plus this sink.

mod hist;
pub mod openmetrics;
mod registry;
mod rolling;
mod span;

pub use hist::{AtomicHistogram, Histogram, HIST_BUCKETS};
pub use openmetrics::OpenMetricsWriter;
pub use registry::{
    counter_add, counter_value, gauge_set, hist_record, metrics_snapshot, reset_metrics,
    MetricsSnapshot,
};
pub use rolling::{RollingCounter, RollingHistogram};
pub use span::{
    context, dropped_events, echo, enabled, flush, now_ns, set_context, set_enabled,
    set_stderr_echo, snapshot_events, span, stage_summary, stderr_echo, take_events, SpanGuard,
    TraceEvent,
};

/// Clears every piece of global trace state: the span sink (current thread's
/// buffer included), the dropped-event counter, and the metrics registry.
/// The enabled/echo switches are left as they are. Meant for experiment
/// drivers and tests that need a clean slate between runs.
pub fn reset() {
    span::reset_spans();
    registry::reset_metrics();
}
