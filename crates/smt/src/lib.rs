//! # lr-smt: a QF_BV term layer with rewriting, evaluation, and bit-blasting
//!
//! This crate plays the role that Rosette's symbolic evaluation plus the external
//! SMT solvers play in the original Lakeroad: it represents quantifier-free
//! fixed-width bitvector (QF_BV) formulas, simplifies them with a rewriting pass,
//! evaluates them concretely, and decides satisfiability by Tseitin bit-blasting to
//! CNF and running the [`lr_sat`] CDCL solver.
//!
//! The main types are:
//!
//! * [`TermPool`] — a hash-consed term graph. Constructors such as
//!   [`TermPool::add`] or [`TermPool::ite`] apply local rewrite rules (constant
//!   folding, identity elimination, commutative normalization) unless disabled, so
//!   that structurally equal designs normalize to the same node. This is the main
//!   reason synthesis queries in this reproduction stay tractable — exactly the role
//!   the paper's symbolic evaluation plays.
//! * [`TermId`] — a handle into the pool.
//! * [`BvSolver`] — a satisfiability checker for a conjunction of 1-bit terms,
//!   backed by bit-blasting plus `lr-sat`, with model extraction. Assertions,
//!   learnt clauses, and the bit-blast memo table persist across checks, and
//!   [`BvSolver::check_assuming`] poses retractable queries — the substrate of the
//!   incremental CEGIS loop in `lr-synth`.
//! * [`BvSession`] — a pool and solver bundled into one incremental solving
//!   context.
//!
//! ```
//! use lr_bv::BitVec;
//! use lr_smt::{TermPool, BvSolver, SatResult};
//!
//! let mut pool = TermPool::new();
//! let x = pool.var("x", 8);
//! let five = pool.constant(BitVec::from_u64(5, 8));
//! let sum = pool.add(x, five);
//! let target = pool.constant(BitVec::from_u64(12, 8));
//! let eq = pool.eq(sum, target);
//!
//! let mut solver = BvSolver::new();
//! solver.assert_true(&mut pool, eq);
//! assert_eq!(solver.check(&mut pool), SatResult::Sat);
//! let model = solver.model(&pool);
//! assert_eq!(model.get("x"), Some(&BitVec::from_u64(7, 8)));
//! ```

mod blast;
mod eval;
mod op;
mod pool;
mod solver;

pub use eval::{apply_op, Env, EvalError};
pub use op::BvOp;
pub use pool::{PoolStats, Term, TermId, TermPool};
pub use solver::{BlastStats, BvSession, BvSolver, Model, SatResult};

pub use lr_sat::{ClauseDbMode, RestartMode, SolverConfig, SolverStats, GLUE_BUCKETS};
