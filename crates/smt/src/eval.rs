//! Concrete evaluation of terms under an environment of variable bindings.
//!
//! Evaluation serves three purposes: constant folding inside [`TermPool`], executing
//! the ℒlr interpreter when all inputs are concrete, and validating models returned by
//! the bit-blasting backend (every SAT model is re-checked by evaluation, which keeps
//! the solver honest and is also what the property tests lean on).

use std::collections::HashMap;
use std::fmt;

use lr_bv::BitVec;

use crate::op::BvOp;
use crate::pool::{Term, TermId, TermPool};

/// A variable environment mapping names to concrete values.
pub type Env = HashMap<String, BitVec>;

/// An error produced during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no binding in the environment.
    UnboundVariable(String),
    /// A variable binding had the wrong width.
    WidthMismatch {
        /// The variable name.
        name: String,
        /// Width expected by the term graph.
        expected: u32,
        /// Width found in the environment.
        found: u32,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(name) => write!(f, "unbound variable `{name}`"),
            EvalError::WidthMismatch { name, expected, found } => {
                write!(f, "variable `{name}` bound to width {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Applies an operator to concrete operand values. This is the single source of truth
/// for operator semantics; constant folding, evaluation, the e-graph's
/// constant-folding analysis (`lr_egraph`), and the tests that compare bit-blasting
/// against evaluation all call it.
pub fn apply_op(op: BvOp, args: &[&BitVec]) -> BitVec {
    match op {
        BvOp::Not => args[0].not(),
        BvOp::Neg => args[0].neg(),
        BvOp::And => args[0].and(args[1]),
        BvOp::Or => args[0].or(args[1]),
        BvOp::Xor => args[0].xor(args[1]),
        BvOp::Add => args[0].add(args[1]),
        BvOp::Sub => args[0].sub(args[1]),
        BvOp::Mul => args[0].mul(args[1]),
        BvOp::Udiv => args[0].udiv(args[1]),
        BvOp::Urem => args[0].urem(args[1]),
        BvOp::Shl => args[0].shl(args[1]),
        BvOp::Lshr => args[0].lshr(args[1]),
        BvOp::Ashr => args[0].ashr(args[1]),
        BvOp::Concat => args[0].concat(args[1]),
        BvOp::Extract { hi, lo } => args[0].extract(hi, lo),
        BvOp::ZeroExt { width } => args[0].zext(width),
        BvOp::SignExt { width } => args[0].sext(width),
        BvOp::Eq => BitVec::from_bool(args[0] == args[1]),
        BvOp::Ult => BitVec::from_bool(args[0].ult(args[1])),
        BvOp::Ule => BitVec::from_bool(args[0].ule(args[1])),
        BvOp::Slt => BitVec::from_bool(args[0].slt(args[1])),
        BvOp::Sle => BitVec::from_bool(args[0].sle(args[1])),
        BvOp::Ite => {
            if args[0].is_zero() {
                args[2].clone()
            } else {
                args[1].clone()
            }
        }
        BvOp::RedOr => args[0].reduce_or(),
        BvOp::RedAnd => args[0].reduce_and(),
        BvOp::RedXor => args[0].reduce_xor(),
    }
}

impl TermPool {
    /// Evaluates a term under `env`.
    ///
    /// # Errors
    /// Returns [`EvalError`] if a variable is unbound or bound at the wrong width.
    pub fn eval(&self, id: TermId, env: &Env) -> Result<BitVec, EvalError> {
        let mut cache: HashMap<TermId, BitVec> = HashMap::new();
        self.eval_cached(id, env, &mut cache)
    }

    /// Evaluates several root terms sharing one memoization cache.
    pub fn eval_many(&self, ids: &[TermId], env: &Env) -> Result<Vec<BitVec>, EvalError> {
        let mut cache: HashMap<TermId, BitVec> = HashMap::new();
        ids.iter().map(|&id| self.eval_cached(id, env, &mut cache)).collect()
    }

    fn eval_cached(
        &self,
        id: TermId,
        env: &Env,
        cache: &mut HashMap<TermId, BitVec>,
    ) -> Result<BitVec, EvalError> {
        if let Some(v) = cache.get(&id) {
            return Ok(v.clone());
        }
        let value = match self.term(id) {
            Term::Const(bv) => bv.clone(),
            Term::Var { name, width } => {
                let bound =
                    env.get(name).ok_or_else(|| EvalError::UnboundVariable(name.clone()))?;
                if bound.width() != *width {
                    return Err(EvalError::WidthMismatch {
                        name: name.clone(),
                        expected: *width,
                        found: bound.width(),
                    });
                }
                bound.clone()
            }
            Term::Op { op, args, .. } => {
                let op = *op;
                let args = args.clone();
                let values: Result<Vec<BitVec>, EvalError> =
                    args.iter().map(|&a| self.eval_cached(a, env, cache)).collect();
                let values = values?;
                let refs: Vec<&BitVec> = values.iter().collect();
                apply_op(op, &refs)
            }
        };
        cache.insert(id, value.clone());
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, u64, u32)]) -> Env {
        pairs.iter().map(|&(n, v, w)| (n.to_string(), BitVec::from_u64(v, w))).collect()
    }

    #[test]
    fn eval_arithmetic_expression() {
        let mut pool = TermPool::new();
        let a = pool.var("a", 16);
        let b = pool.var("b", 16);
        let c = pool.var("c", 16);
        let d = pool.var("d", 16);
        // (a + b) * c & d  -- the paper's running example.
        let sum = pool.add(a, b);
        let prod = pool.mul(sum, c);
        let out = pool.and(prod, d);
        let e = env(&[("a", 3, 16), ("b", 5, 16), ("c", 7, 16), ("d", 0xFF, 16)]);
        assert_eq!(pool.eval(out, &e).unwrap(), BitVec::from_u64(((3 + 5) * 7) & 0xFF, 16));
    }

    #[test]
    fn eval_predicates_and_ite() {
        let mut pool = TermPool::new();
        let a = pool.var("a", 8);
        let b = pool.var("b", 8);
        let lt = pool.ult(a, b);
        let max = pool.ite(lt, b, a);
        let e = env(&[("a", 9, 8), ("b", 4, 8)]);
        assert_eq!(pool.eval(max, &e).unwrap(), BitVec::from_u64(9, 8));
        let e = env(&[("a", 2, 8), ("b", 4, 8)]);
        assert_eq!(pool.eval(max, &e).unwrap(), BitVec::from_u64(4, 8));
    }

    #[test]
    fn eval_structural_ops() {
        let mut pool = TermPool::new();
        let a = pool.var("a", 8);
        let ext = pool.sext(a, 16);
        let hi = pool.extract(ext, 15, 8);
        let e = env(&[("a", 0x80, 8)]);
        assert_eq!(pool.eval(hi, &e).unwrap(), BitVec::from_u64(0xFF, 8));
    }

    #[test]
    fn unbound_variable_errors() {
        let mut pool = TermPool::new();
        let a = pool.var("a", 8);
        let err = pool.eval(a, &Env::new()).unwrap_err();
        assert_eq!(err, EvalError::UnboundVariable("a".to_string()));
        assert!(err.to_string().contains("unbound"));
    }

    #[test]
    fn width_mismatch_errors() {
        let mut pool = TermPool::new();
        let a = pool.var("a", 8);
        let e = env(&[("a", 1, 4)]);
        let err = pool.eval(a, &e).unwrap_err();
        assert!(matches!(err, EvalError::WidthMismatch { expected: 8, found: 4, .. }));
    }

    #[test]
    fn eval_many_shares_cache() {
        let mut pool = TermPool::new();
        let a = pool.var("a", 8);
        let b = pool.var("b", 8);
        let sum = pool.add(a, b);
        let twice = pool.add(sum, sum);
        let e = env(&[("a", 10, 8), ("b", 20, 8)]);
        let vals = pool.eval_many(&[sum, twice], &e).unwrap();
        assert_eq!(vals[0], BitVec::from_u64(30, 8));
        assert_eq!(vals[1], BitVec::from_u64(60, 8));
    }

    #[test]
    fn eval_agrees_with_simplifier() {
        // Evaluating `x * 0 + y` must agree whether or not the simplifier collapsed it.
        let e = env(&[("x", 17, 8), ("y", 9, 8)]);
        for mut pool in [TermPool::new(), TermPool::without_simplification()] {
            let x = pool.var("x", 8);
            let y = pool.var("y", 8);
            let zero = pool.zero(8);
            let prod = pool.mul(x, zero);
            let out = pool.add(prod, y);
            assert_eq!(pool.eval(out, &e).unwrap(), BitVec::from_u64(9, 8));
        }
    }
}
