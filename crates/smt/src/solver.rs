//! The SAT-backed QF_BV solver facade.
//!
//! [`BvSolver`] is *incremental by construction*: the underlying CDCL solver, the
//! bit-blast memo table, and all learnt clauses persist across [`BvSolver::check`]
//! calls, so asserting more terms between checks only encodes the delta. For
//! constraints that must be retractable (e.g. pinning a candidate's hole values for
//! one verification query), use [`BvSolver::check_assuming`]: the assumption terms
//! are encoded permanently but *enforced* only for that single check, via SAT
//! assumptions. [`BvSession`] bundles a [`TermPool`] with a [`BvSolver`] for callers
//! that keep one solving context alive across many queries.

use std::collections::HashMap;

use lr_bv::BitVec;
use lr_sat::{Lit, SolveResult, Solver, SolverConfig, SolverStats};

use crate::blast::BitBlaster;
pub use crate::blast::BlastStats;
use crate::pool::{TermId, TermPool};

/// The verdict of a satisfiability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SatResult {
    /// The asserted conjunction is satisfiable; a model is available.
    Sat,
    /// The asserted conjunction is unsatisfiable.
    Unsat,
    /// The solver gave up (conflict budget exhausted).
    Unknown,
}

/// A model: an assignment of concrete bitvector values to variable names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<String, BitVec>,
}

impl Model {
    /// The value of a variable, if it appears in the model.
    pub fn get(&self, name: &str) -> Option<&BitVec> {
        self.values.get(name)
    }

    /// The value of a variable, or zero of the given width if it was irrelevant to
    /// the query (and therefore unconstrained).
    pub fn get_or_zero(&self, name: &str, width: u32) -> BitVec {
        self.values.get(name).cloned().unwrap_or_else(|| BitVec::zeros(width))
    }

    /// Iterates over (name, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &BitVec)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of variables in the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model binds no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Inserts a binding (used by the synthesis engine to build hole assignments).
    pub fn insert(&mut self, name: impl Into<String>, value: BitVec) {
        self.values.insert(name.into(), value);
    }

    /// Converts into the evaluation environment type.
    pub fn into_env(self) -> crate::eval::Env {
        self.values
    }
}

impl FromIterator<(String, BitVec)> for Model {
    fn from_iter<T: IntoIterator<Item = (String, BitVec)>>(iter: T) -> Self {
        Model { values: iter.into_iter().collect() }
    }
}

/// A satisfiability checker for conjunctions of 1-bit QF_BV terms.
///
/// Assert terms with [`BvSolver::assert_true`], then call [`BvSolver::check`]. On
/// [`SatResult::Sat`], [`BvSolver::model`] returns values for every variable that was
/// mentioned by an asserted term.
#[derive(Debug)]
pub struct BvSolver {
    sat: Solver,
    blaster: BitBlaster,
    asserted: Vec<TermId>,
    last_result: Option<SatResult>,
}

impl Default for BvSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl BvSolver {
    /// Creates a solver with the default SAT configuration.
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit SAT configuration (used by the portfolio).
    pub fn with_config(config: SolverConfig) -> Self {
        BvSolver {
            sat: Solver::with_config(config),
            blaster: BitBlaster::new(),
            asserted: Vec::new(),
            last_result: None,
        }
    }

    /// Registers a shared interrupt flag on the underlying SAT solver. While the
    /// flag reads true, checks return [`SatResult::Unknown`] promptly instead of
    /// searching to completion.
    pub fn add_interrupt(&mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
        self.sat.add_interrupt(flag);
    }

    /// Asserts that a 1-bit term is true.
    ///
    /// # Panics
    /// Panics if the term is not 1 bit wide.
    pub fn assert_true(&mut self, pool: &TermPool, term: TermId) {
        assert_eq!(pool.width(term), 1, "assertions must be 1-bit terms");
        let bits = self.blaster.blast(pool, &mut self.sat, term);
        self.sat.add_clause(&[bits[0]]);
        self.asserted.push(term);
        self.last_result = None;
    }

    /// Asserts that two terms of equal width are equal.
    pub fn assert_equal(&mut self, pool: &mut TermPool, a: TermId, b: TermId) {
        let eq = pool.eq(a, b);
        self.assert_true(pool, eq);
    }

    /// Checks satisfiability of the asserted conjunction.
    pub fn check(&mut self, _pool: &TermPool) -> SatResult {
        self.check_assuming(_pool, &[])
    }

    /// Checks satisfiability of the asserted conjunction *under assumptions*.
    ///
    /// Each assumption is a 1-bit term that is forced true for this check only —
    /// unlike [`BvSolver::assert_true`], nothing persists into later checks except
    /// the (reusable) Tseitin encoding of the term and any clauses the solver learns.
    /// This is the retractable-assertion half of the incremental API: the CEGIS
    /// verifier pins a candidate's hole values with assumptions, so the next
    /// candidate can be checked on the same solver without rebuilding anything.
    ///
    /// # Panics
    /// Panics if an assumption term is not 1 bit wide.
    pub fn check_assuming(&mut self, pool: &TermPool, assumptions: &[TermId]) -> SatResult {
        // The span covers assumption blasting too — encoding cost is part of
        // what a check costs. Inert (one atomic load) when tracing is off.
        let mut sp = lr_trace::span("sat-check");
        let before = sp.is_active().then(|| self.sat.stats());
        let lits: Vec<Lit> = assumptions
            .iter()
            .map(|&t| {
                assert_eq!(pool.width(t), 1, "assumptions must be 1-bit terms");
                self.blaster.blast(pool, &mut self.sat, t)[0]
            })
            .collect();
        let result = match self.sat.solve_with_assumptions(&lits) {
            SolveResult::Sat => SatResult::Sat,
            SolveResult::Unsat => SatResult::Unsat,
            SolveResult::Unknown => SatResult::Unknown,
        };
        if let Some(before) = before {
            let after = self.sat.stats();
            sp.attr("assumptions", lits.len() as u64);
            sp.attr("conflicts", after.conflicts.saturating_sub(before.conflicts));
            sp.attr("propagations", after.propagations.saturating_sub(before.propagations));
            sp.attr("sat", u64::from(result == SatResult::Sat));
            sp.attr("unknown", u64::from(result == SatResult::Unknown));
        }
        self.last_result = Some(result);
        result
    }

    /// Bit-blasts a term and returns its literal vector (LSB first) without
    /// asserting anything. Repeated calls for the same `TermId` return the memoized
    /// vector; the encoding clauses are added to the solver on first use only.
    pub fn literals(&mut self, pool: &TermPool, term: TermId) -> Vec<Lit> {
        self.blaster.blast(pool, &mut self.sat, term)
    }

    /// Underlying SAT statistics.
    pub fn stats(&self) -> SolverStats {
        self.sat.stats()
    }

    /// Bit-blast cache counters (encoding reuse across incremental checks).
    pub fn blast_stats(&self) -> BlastStats {
        self.blaster.stats()
    }

    /// The terms asserted so far (in order).
    pub fn assertions(&self) -> &[TermId] {
        &self.asserted
    }

    /// Extracts the model after a [`SatResult::Sat`] verdict.
    ///
    /// # Panics
    /// Panics if the last check did not return `Sat`.
    pub fn model(&self, _pool: &TermPool) -> Model {
        assert_eq!(
            self.last_result,
            Some(SatResult::Sat),
            "model requested without a satisfiable check"
        );
        let mut model = Model::default();
        for (name, bits) in self.blaster.var_bits() {
            let values: Vec<bool> =
                bits.iter().map(|l| l.eval(self.sat.value(l.var()).unwrap_or(false))).collect();
            model.insert(name.clone(), BitVec::from_bits_lsb_first(&values));
        }
        model
    }
}

/// An incremental QF_BV solving session: a [`TermPool`] and a [`BvSolver`] that live
/// together across checks.
///
/// The pool, the bit-blast memo table, the CDCL clause database (including learnt
/// clauses), and the variable heap all persist for the lifetime of the session, so a
/// sequence of related queries pays for each term's encoding exactly once. Build
/// terms through [`BvSession::pool`], make them permanent with
/// [`BvSession::assert_true`], and pose retractable queries with
/// [`BvSession::check_assuming`].
#[derive(Debug, Default)]
pub struct BvSession {
    pool: TermPool,
    solver: BvSolver,
}

impl BvSession {
    /// Creates a session with the default SAT configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a session with an explicit SAT configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        BvSession { pool: TermPool::new(), solver: BvSolver::with_config(config) }
    }

    /// Registers a shared interrupt flag on the underlying SAT solver.
    /// See [`BvSolver::add_interrupt`].
    pub fn add_interrupt(&mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
        self.solver.add_interrupt(flag);
    }

    /// The session's term pool (for building terms).
    pub fn pool(&mut self) -> &mut TermPool {
        &mut self.pool
    }

    /// Read-only access to the session's term pool.
    pub fn pool_ref(&self) -> &TermPool {
        &self.pool
    }

    /// Permanently asserts a 1-bit term built in this session's pool.
    ///
    /// # Panics
    /// Panics if the term is not 1 bit wide.
    pub fn assert_true(&mut self, term: TermId) {
        self.solver.assert_true(&self.pool, term);
    }

    /// Checks satisfiability of everything asserted so far.
    pub fn check(&mut self) -> SatResult {
        self.solver.check(&self.pool)
    }

    /// Checks satisfiability under per-call assumptions (see
    /// [`BvSolver::check_assuming`]).
    pub fn check_assuming(&mut self, assumptions: &[TermId]) -> SatResult {
        self.solver.check_assuming(&self.pool, assumptions)
    }

    /// Extracts the model after a [`SatResult::Sat`] verdict.
    ///
    /// # Panics
    /// Panics if the last check did not return `Sat`.
    pub fn model(&self) -> Model {
        self.solver.model(&self.pool)
    }

    /// Underlying SAT statistics.
    pub fn stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Bit-blast cache counters.
    pub fn blast_stats(&self) -> BlastStats {
        self.solver.blast_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_simple_equation() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let five = pool.constant(BitVec::from_u64(5, 8));
        let sum = pool.add(x, five);
        let twelve = pool.constant(BitVec::from_u64(12, 8));
        let eq = pool.eq(sum, twelve);

        let mut solver = BvSolver::new();
        solver.assert_true(&pool, eq);
        assert_eq!(solver.check(&pool), SatResult::Sat);
        let model = solver.model(&pool);
        assert_eq!(model.get("x"), Some(&BitVec::from_u64(7, 8)));
    }

    #[test]
    fn model_satisfies_assertions_by_evaluation() {
        let mut pool = TermPool::new();
        let a = pool.var("a", 8);
        let b = pool.var("b", 8);
        let prod = pool.mul(a, b);
        let target = pool.constant(BitVec::from_u64(36, 8));
        let eq = pool.eq(prod, target);
        let three = pool.constant(BitVec::from_u64(3, 8));
        let a_gt_3 = pool.ult(three, a);
        let mut solver = BvSolver::new();
        solver.assert_true(&pool, eq);
        solver.assert_true(&pool, a_gt_3);
        assert_eq!(solver.check(&pool), SatResult::Sat);
        let env = solver.model(&pool).into_env();
        assert_eq!(pool.eval(eq, &env).unwrap(), BitVec::from_bool(true));
        assert_eq!(pool.eval(a_gt_3, &env).unwrap(), BitVec::from_bool(true));
    }

    #[test]
    fn unsat_conjunction() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 4);
        let zero = pool.zero(4);
        let lt = pool.ult(x, zero); // nothing is unsigned-less-than zero
        let mut solver = BvSolver::new();
        solver.assert_true(&pool, lt);
        assert_eq!(solver.check(&pool), SatResult::Unsat);
    }

    #[test]
    fn assert_equal_helper() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let mut solver = BvSolver::new();
        solver.assert_equal(&mut pool, x, y);
        let c42 = pool.constant(BitVec::from_u64(42, 8));
        solver.assert_equal(&mut pool, x, c42);
        assert_eq!(solver.check(&pool), SatResult::Sat);
        let model = solver.model(&pool);
        assert_eq!(model.get("y"), Some(&BitVec::from_u64(42, 8)));
    }

    #[test]
    fn unconstrained_variable_defaults_to_zero() {
        let pool = TermPool::new();
        let model = Model::default();
        assert_eq!(model.get_or_zero("nope", 8), BitVec::zeros(8));
        assert!(model.is_empty());
        let _ = pool;
    }

    #[test]
    #[should_panic]
    fn asserting_wide_term_panics() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let mut solver = BvSolver::new();
        solver.assert_true(&pool, x);
    }

    #[test]
    #[should_panic]
    fn model_without_sat_panics() {
        let pool = TermPool::new();
        let solver = BvSolver::new();
        let _ = solver.model(&pool);
    }

    #[test]
    fn check_assuming_is_retractable() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let five = pool.constant(BitVec::from_u64(5, 8));
        let seven = pool.constant(BitVec::from_u64(7, 8));
        let is_five = pool.eq(x, five);
        let is_seven = pool.eq(x, seven);
        let mut solver = BvSolver::new();
        // Nothing asserted permanently: each assumption pins x for one check only.
        assert_eq!(solver.check_assuming(&pool, &[is_five]), SatResult::Sat);
        assert_eq!(solver.model(&pool).get("x"), Some(&BitVec::from_u64(5, 8)));
        assert_eq!(solver.check_assuming(&pool, &[is_seven]), SatResult::Sat);
        assert_eq!(solver.model(&pool).get("x"), Some(&BitVec::from_u64(7, 8)));
        assert_eq!(solver.check_assuming(&pool, &[is_five, is_seven]), SatResult::Unsat);
        // Contradictory assumptions must not poison later checks.
        assert_eq!(solver.check_assuming(&pool, &[is_five]), SatResult::Sat);
        assert_eq!(solver.check(&pool), SatResult::Sat);
    }

    #[test]
    fn check_assuming_reuses_the_encoding() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let sum = pool.add(x, y);
        let target = pool.constant(BitVec::from_u64(20, 8));
        let eq = pool.eq(sum, target);
        let mut solver = BvSolver::new();
        solver.assert_true(&pool, eq);
        assert_eq!(solver.check(&pool), SatResult::Sat);
        let misses_after_first = solver.blast_stats().cache_misses;
        // Re-checking under assumptions over already-blasted terms encodes nothing new.
        let three = pool.constant(BitVec::from_u64(3, 8));
        let pin = pool.eq(x, three);
        assert_eq!(solver.check_assuming(&pool, &[pin]), SatResult::Sat);
        assert_eq!(solver.model(&pool).get("y"), Some(&BitVec::from_u64(17, 8)));
        assert_eq!(solver.check_assuming(&pool, &[pin]), SatResult::Sat);
        let stats = solver.blast_stats();
        assert!(stats.cache_hits > 0, "second identical query must hit the cache");
        assert!(
            stats.cache_misses <= misses_after_first + 2,
            "only the pin equality (and its constant) may be newly encoded"
        );
    }

    #[test]
    fn session_bundles_pool_and_solver() {
        let mut session = BvSession::new();
        let x = session.pool().var("x", 4);
        let three = session.pool().constant(BitVec::from_u64(3, 4));
        let lt = session.pool().ult(x, three);
        session.assert_true(lt);
        assert_eq!(session.check(), SatResult::Sat);
        let zero = session.pool().zero(4);
        let nonzero = session.pool().ne(x, zero);
        assert_eq!(session.check_assuming(&[nonzero]), SatResult::Sat);
        let v = session.model().get("x").cloned().unwrap();
        assert!(v.to_u64().unwrap() > 0 && v.to_u64().unwrap() < 3);
        // The permanent assertion still holds without the assumption.
        assert_eq!(session.check(), SatResult::Sat);
        assert!(session.blast_stats().cached_terms > 0);
        assert!(!session.pool_ref().is_empty());
    }

    #[test]
    fn signed_comparison_queries() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let minus_one = pool.constant(BitVec::from_u64(0xFF, 8));
        let zero = pool.zero(8);
        let neg = pool.slt(x, zero);
        let eq = pool.eq(x, minus_one);
        let mut solver = BvSolver::new();
        solver.assert_true(&pool, neg);
        solver.assert_true(&pool, eq);
        assert_eq!(solver.check(&pool), SatResult::Sat);
    }

    #[test]
    fn budgeted_config_reports_unknown_on_hard_instance() {
        let config = SolverConfig { conflict_budget: Some(1), ..SolverConfig::default() };
        // A 6-bit factorization query needs more than one conflict.
        let mut pool = TermPool::new();
        let a = pool.var("a", 6);
        let b = pool.var("b", 6);
        let prod = pool.mul(a, b);
        let target = pool.constant(BitVec::from_u64(35, 6));
        let eq = pool.eq(prod, target);
        let one = pool.constant(BitVec::from_u64(1, 6));
        let a_gt_1 = pool.ult(one, a);
        let b_gt_1 = pool.ult(one, b);
        let mut solver = BvSolver::with_config(config);
        solver.assert_true(&pool, eq);
        solver.assert_true(&pool, a_gt_1);
        solver.assert_true(&pool, b_gt_1);
        let r = solver.check(&pool);
        assert!(r == SatResult::Unknown || r == SatResult::Sat);
    }
}
