//! The SAT-backed QF_BV solver facade.

use std::collections::HashMap;

use lr_bv::BitVec;
use lr_sat::{SolveResult, Solver, SolverConfig, SolverStats};

use crate::blast::BitBlaster;
use crate::pool::{TermId, TermPool};

/// The verdict of a satisfiability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SatResult {
    /// The asserted conjunction is satisfiable; a model is available.
    Sat,
    /// The asserted conjunction is unsatisfiable.
    Unsat,
    /// The solver gave up (conflict budget exhausted).
    Unknown,
}

/// A model: an assignment of concrete bitvector values to variable names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<String, BitVec>,
}

impl Model {
    /// The value of a variable, if it appears in the model.
    pub fn get(&self, name: &str) -> Option<&BitVec> {
        self.values.get(name)
    }

    /// The value of a variable, or zero of the given width if it was irrelevant to
    /// the query (and therefore unconstrained).
    pub fn get_or_zero(&self, name: &str, width: u32) -> BitVec {
        self.values.get(name).cloned().unwrap_or_else(|| BitVec::zeros(width))
    }

    /// Iterates over (name, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &BitVec)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of variables in the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the model binds no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Inserts a binding (used by the synthesis engine to build hole assignments).
    pub fn insert(&mut self, name: impl Into<String>, value: BitVec) {
        self.values.insert(name.into(), value);
    }

    /// Converts into the evaluation environment type.
    pub fn into_env(self) -> crate::eval::Env {
        self.values
    }
}

impl FromIterator<(String, BitVec)> for Model {
    fn from_iter<T: IntoIterator<Item = (String, BitVec)>>(iter: T) -> Self {
        Model { values: iter.into_iter().collect() }
    }
}

/// A satisfiability checker for conjunctions of 1-bit QF_BV terms.
///
/// Assert terms with [`BvSolver::assert_true`], then call [`BvSolver::check`]. On
/// [`SatResult::Sat`], [`BvSolver::model`] returns values for every variable that was
/// mentioned by an asserted term.
#[derive(Debug)]
pub struct BvSolver {
    sat: Solver,
    blaster: BitBlaster,
    asserted: Vec<TermId>,
    last_result: Option<SatResult>,
}

impl Default for BvSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl BvSolver {
    /// Creates a solver with the default SAT configuration.
    pub fn new() -> Self {
        Self::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit SAT configuration (used by the portfolio).
    pub fn with_config(config: SolverConfig) -> Self {
        BvSolver {
            sat: Solver::with_config(config),
            blaster: BitBlaster::new(),
            asserted: Vec::new(),
            last_result: None,
        }
    }

    /// Asserts that a 1-bit term is true.
    ///
    /// # Panics
    /// Panics if the term is not 1 bit wide.
    pub fn assert_true(&mut self, pool: &TermPool, term: TermId) {
        assert_eq!(pool.width(term), 1, "assertions must be 1-bit terms");
        let bits = self.blaster.blast(pool, &mut self.sat, term);
        self.sat.add_clause(&[bits[0]]);
        self.asserted.push(term);
        self.last_result = None;
    }

    /// Asserts that two terms of equal width are equal.
    pub fn assert_equal(&mut self, pool: &mut TermPool, a: TermId, b: TermId) {
        let eq = pool.eq(a, b);
        self.assert_true(pool, eq);
    }

    /// Checks satisfiability of the asserted conjunction.
    pub fn check(&mut self, _pool: &TermPool) -> SatResult {
        let result = match self.sat.solve() {
            SolveResult::Sat => SatResult::Sat,
            SolveResult::Unsat => SatResult::Unsat,
            SolveResult::Unknown => SatResult::Unknown,
        };
        self.last_result = Some(result);
        result
    }

    /// Underlying SAT statistics.
    pub fn stats(&self) -> SolverStats {
        self.sat.stats()
    }

    /// The terms asserted so far (in order).
    pub fn assertions(&self) -> &[TermId] {
        &self.asserted
    }

    /// Extracts the model after a [`SatResult::Sat`] verdict.
    ///
    /// # Panics
    /// Panics if the last check did not return `Sat`.
    pub fn model(&self, _pool: &TermPool) -> Model {
        assert_eq!(
            self.last_result,
            Some(SatResult::Sat),
            "model requested without a satisfiable check"
        );
        let mut model = Model::default();
        for (name, bits) in self.blaster.var_bits() {
            let values: Vec<bool> = bits
                .iter()
                .map(|l| l.eval(self.sat.value(l.var()).unwrap_or(false)))
                .collect();
            model.insert(name.clone(), BitVec::from_bits_lsb_first(&values));
        }
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_simple_equation() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let five = pool.constant(BitVec::from_u64(5, 8));
        let sum = pool.add(x, five);
        let twelve = pool.constant(BitVec::from_u64(12, 8));
        let eq = pool.eq(sum, twelve);

        let mut solver = BvSolver::new();
        solver.assert_true(&pool, eq);
        assert_eq!(solver.check(&pool), SatResult::Sat);
        let model = solver.model(&pool);
        assert_eq!(model.get("x"), Some(&BitVec::from_u64(7, 8)));
    }

    #[test]
    fn model_satisfies_assertions_by_evaluation() {
        let mut pool = TermPool::new();
        let a = pool.var("a", 8);
        let b = pool.var("b", 8);
        let prod = pool.mul(a, b);
        let target = pool.constant(BitVec::from_u64(36, 8));
        let eq = pool.eq(prod, target);
        let three = pool.constant(BitVec::from_u64(3, 8));
        let a_gt_3 = pool.ult(three, a);
        let mut solver = BvSolver::new();
        solver.assert_true(&pool, eq);
        solver.assert_true(&pool, a_gt_3);
        assert_eq!(solver.check(&pool), SatResult::Sat);
        let env = solver.model(&pool).into_env();
        assert_eq!(pool.eval(eq, &env).unwrap(), BitVec::from_bool(true));
        assert_eq!(pool.eval(a_gt_3, &env).unwrap(), BitVec::from_bool(true));
    }

    #[test]
    fn unsat_conjunction() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 4);
        let zero = pool.zero(4);
        let lt = pool.ult(x, zero); // nothing is unsigned-less-than zero
        let mut solver = BvSolver::new();
        solver.assert_true(&pool, lt);
        assert_eq!(solver.check(&pool), SatResult::Unsat);
    }

    #[test]
    fn assert_equal_helper() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let y = pool.var("y", 8);
        let mut solver = BvSolver::new();
        solver.assert_equal(&mut pool, x, y);
        let c42 = pool.constant(BitVec::from_u64(42, 8));
        solver.assert_equal(&mut pool, x, c42);
        assert_eq!(solver.check(&pool), SatResult::Sat);
        let model = solver.model(&pool);
        assert_eq!(model.get("y"), Some(&BitVec::from_u64(42, 8)));
    }

    #[test]
    fn unconstrained_variable_defaults_to_zero() {
        let pool = TermPool::new();
        let model = Model::default();
        assert_eq!(model.get_or_zero("nope", 8), BitVec::zeros(8));
        assert!(model.is_empty());
        let _ = pool;
    }

    #[test]
    #[should_panic]
    fn asserting_wide_term_panics() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let mut solver = BvSolver::new();
        solver.assert_true(&pool, x);
    }

    #[test]
    #[should_panic]
    fn model_without_sat_panics() {
        let pool = TermPool::new();
        let solver = BvSolver::new();
        let _ = solver.model(&pool);
    }

    #[test]
    fn signed_comparison_queries() {
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let minus_one = pool.constant(BitVec::from_u64(0xFF, 8));
        let zero = pool.zero(8);
        let neg = pool.slt(x, zero);
        let eq = pool.eq(x, minus_one);
        let mut solver = BvSolver::new();
        solver.assert_true(&pool, neg);
        solver.assert_true(&pool, eq);
        assert_eq!(solver.check(&pool), SatResult::Sat);
    }

    #[test]
    fn budgeted_config_reports_unknown_on_hard_instance() {
        let config = SolverConfig { conflict_budget: Some(1), ..SolverConfig::default() };
        // A 6-bit factorization query needs more than one conflict.
        let mut pool = TermPool::new();
        let a = pool.var("a", 6);
        let b = pool.var("b", 6);
        let prod = pool.mul(a, b);
        let target = pool.constant(BitVec::from_u64(35, 6));
        let eq = pool.eq(prod, target);
        let one = pool.constant(BitVec::from_u64(1, 6));
        let a_gt_1 = pool.ult(one, a);
        let b_gt_1 = pool.ult(one, b);
        let mut solver = BvSolver::with_config(config);
        solver.assert_true(&pool, eq);
        solver.assert_true(&pool, a_gt_1);
        solver.assert_true(&pool, b_gt_1);
        let r = solver.check(&pool);
        assert!(r == SatResult::Unknown || r == SatResult::Sat);
    }
}
