//! Tseitin bit-blasting of QF_BV terms to CNF over `lr-sat` literals.
//!
//! Every term is lowered to a vector of SAT literals, least-significant bit first.
//! Word-level operators become the usual gate-level circuits: ripple-carry adders,
//! shift-and-add multipliers, borrow-based comparators, and barrel shifters. The
//! encoding is defined once here and validated against concrete evaluation by the
//! property tests in `tests/prop_blast.rs`.

use std::collections::HashMap;

use lr_sat::{Lit, Solver};

use crate::op::BvOp;
use crate::pool::{Term, TermId, TermPool};

/// Counters describing how much encoding work the blaster performed and how much
/// it answered from its memo table. Exposed through `BvSolver::blast_stats` so the
/// incremental CEGIS loop can report clause/encoding reuse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlastStats {
    /// Number of distinct terms lowered to literal vectors so far.
    pub cached_terms: usize,
    /// `blast` calls answered from the memo table without re-encoding.
    pub cache_hits: u64,
    /// `blast` calls that had to encode a new term.
    pub cache_misses: u64,
}

/// Lowers terms into an [`lr_sat::Solver`], memoizing per-term literal vectors.
///
/// The memo table is append-only: once a `TermId` has been lowered, its literal
/// vector is final. Growing the pool with new terms (as the incremental CEGIS loop
/// does between `check` calls) can only add entries, never change existing ones —
/// `TermId`s are never reused within a pool, so previously returned bits stay valid.
#[derive(Debug, Default)]
pub(crate) struct BitBlaster {
    cache: HashMap<TermId, Vec<Lit>>,
    var_bits: HashMap<String, Vec<Lit>>,
    true_lit: Option<Lit>,
    hits: u64,
    misses: u64,
}

impl BitBlaster {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// The literal vectors of every variable encountered so far (used for model
    /// extraction).
    pub(crate) fn var_bits(&self) -> &HashMap<String, Vec<Lit>> {
        &self.var_bits
    }

    /// Cache counters for encoding-reuse reporting.
    pub(crate) fn stats(&self) -> BlastStats {
        BlastStats {
            cached_terms: self.cache.len(),
            cache_hits: self.hits,
            cache_misses: self.misses,
        }
    }

    /// A literal constrained to be true.
    pub(crate) fn true_lit(&mut self, sat: &mut Solver) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let l = Lit::pos(sat.new_var());
        sat.add_clause(&[l]);
        self.true_lit = Some(l);
        l
    }

    fn false_lit(&mut self, sat: &mut Solver) -> Lit {
        self.true_lit(sat).not()
    }

    fn fresh(&mut self, sat: &mut Solver) -> Lit {
        Lit::pos(sat.new_var())
    }

    // ----- gate encodings -----

    fn and_gate(&mut self, sat: &mut Solver, a: Lit, b: Lit) -> Lit {
        let o = self.fresh(sat);
        sat.add_clause(&[o.not(), a]);
        sat.add_clause(&[o.not(), b]);
        sat.add_clause(&[o, a.not(), b.not()]);
        o
    }

    fn or_gate(&mut self, sat: &mut Solver, a: Lit, b: Lit) -> Lit {
        self.and_gate(sat, a.not(), b.not()).not()
    }

    fn xor_gate(&mut self, sat: &mut Solver, a: Lit, b: Lit) -> Lit {
        let o = self.fresh(sat);
        sat.add_clause(&[o.not(), a, b]);
        sat.add_clause(&[o.not(), a.not(), b.not()]);
        sat.add_clause(&[o, a.not(), b]);
        sat.add_clause(&[o, a, b.not()]);
        o
    }

    fn mux_gate(&mut self, sat: &mut Solver, sel: Lit, then_: Lit, else_: Lit) -> Lit {
        let o = self.fresh(sat);
        sat.add_clause(&[sel.not(), then_.not(), o]);
        sat.add_clause(&[sel.not(), then_, o.not()]);
        sat.add_clause(&[sel, else_.not(), o]);
        sat.add_clause(&[sel, else_, o.not()]);
        o
    }

    /// Full adder: returns (sum, carry-out).
    fn full_adder(&mut self, sat: &mut Solver, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
        let axb = self.xor_gate(sat, a, b);
        let sum = self.xor_gate(sat, axb, cin);
        let ab = self.and_gate(sat, a, b);
        let c_axb = self.and_gate(sat, axb, cin);
        let cout = self.or_gate(sat, ab, c_axb);
        (sum, cout)
    }

    /// Ripple-carry addition; returns (sum bits, final carry-out).
    fn adder(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit], mut carry: Lit) -> (Vec<Lit>, Lit) {
        debug_assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        for (&ai, &bi) in a.iter().zip(b.iter()) {
            let (s, c) = self.full_adder(sat, ai, bi, carry);
            out.push(s);
            carry = c;
        }
        (out, carry)
    }

    fn negate_bits(bits: &[Lit]) -> Vec<Lit> {
        bits.iter().map(|l| l.not()).collect()
    }

    /// Unsigned less-than via the carry-out of `a + !b + 1`.
    fn ult_lit(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
        let not_b = Self::negate_bits(b);
        let one = self.true_lit(sat);
        let (_, carry) = self.adder(sat, a, &not_b, one);
        carry.not()
    }

    fn slt_lit(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
        let n = a.len();
        if n == 1 {
            // For 1-bit vectors: signed values are 0 and -1, so a < b iff a=1 (=-1) and b=0.
            return self.and_gate(sat, a[0], b[0].not());
        }
        let a_sign = a[n - 1];
        let b_sign = b[n - 1];
        let ult = self.ult_lit(sat, a, b);
        // a < b (signed) iff (a_sign & !b_sign) | ((a_sign == b_sign) & ult(a, b)).
        let neg_pos = self.and_gate(sat, a_sign, b_sign.not());
        let same_sign = self.xor_gate(sat, a_sign, b_sign).not();
        let same_and_ult = self.and_gate(sat, same_sign, ult);
        self.or_gate(sat, neg_pos, same_and_ult)
    }

    fn eq_lit(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> Lit {
        let mut acc = self.true_lit(sat);
        for (&ai, &bi) in a.iter().zip(b.iter()) {
            let same = self.xor_gate(sat, ai, bi).not();
            acc = self.and_gate(sat, acc, same);
        }
        acc
    }

    fn mul_bits(&mut self, sat: &mut Solver, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let width = a.len();
        let f = self.false_lit(sat);
        let mut acc: Vec<Lit> = vec![f; width];
        for (i, &bi) in b.iter().enumerate() {
            if i >= width {
                break;
            }
            // addend = (a << i) AND-masked with b[i]
            let mut addend: Vec<Lit> = vec![f; width];
            for j in 0..width - i {
                addend[i + j] = self.and_gate(sat, a[j], bi);
            }
            let (sum, _) = self.adder(sat, &acc, &addend, f);
            acc = sum;
        }
        acc
    }

    /// Shifts `bits` by the (symbolic) amount, filling with `fill`.
    fn barrel_shift(
        &mut self,
        sat: &mut Solver,
        bits: &[Lit],
        amount: &[Lit],
        fill: Lit,
        left: bool,
    ) -> Vec<Lit> {
        let width = bits.len();
        let mut current: Vec<Lit> = bits.to_vec();
        for (k, &amt_bit) in amount.iter().enumerate() {
            let shift: u128 = 1u128 << k.min(100);
            let mut shifted: Vec<Lit> = Vec::with_capacity(width);
            for i in 0..width {
                let src: i128 =
                    if left { i as i128 - shift as i128 } else { i as i128 + shift as i128 };
                let val =
                    if src < 0 || src >= width as i128 { fill } else { current[src as usize] };
                shifted.push(val);
            }
            current =
                (0..width).map(|i| self.mux_gate(sat, amt_bit, shifted[i], current[i])).collect();
        }
        current
    }

    // ----- the main recursion -----

    /// Bit-blasts `id`, returning its literal vector (LSB first).
    pub(crate) fn blast(&mut self, pool: &TermPool, sat: &mut Solver, id: TermId) -> Vec<Lit> {
        if let Some(bits) = self.cache.get(&id) {
            self.hits += 1;
            return bits.clone();
        }
        self.misses += 1;
        let bits = match pool.term(id).clone() {
            Term::Const(bv) => {
                let t = self.true_lit(sat);
                bv.bits_lsb_first().map(|b| if b { t } else { t.not() }).collect()
            }
            Term::Var { name, width } => {
                if let Some(bits) = self.var_bits.get(&name) {
                    bits.clone()
                } else {
                    let bits: Vec<Lit> = (0..width).map(|_| self.fresh(sat)).collect();
                    self.var_bits.insert(name.clone(), bits.clone());
                    bits
                }
            }
            Term::Op { op, args, width } => {
                let arg_bits: Vec<Vec<Lit>> =
                    args.iter().map(|&a| self.blast(pool, sat, a)).collect();
                self.blast_op(pool, sat, op, &args, &arg_bits, width)
            }
        };
        self.cache.insert(id, bits.clone());
        bits
    }

    fn blast_op(
        &mut self,
        pool: &TermPool,
        sat: &mut Solver,
        op: BvOp,
        args: &[TermId],
        arg_bits: &[Vec<Lit>],
        width: u32,
    ) -> Vec<Lit> {
        let f = self.false_lit(sat);
        match op {
            BvOp::Not => Self::negate_bits(&arg_bits[0]),
            BvOp::Neg => {
                let inverted = Self::negate_bits(&arg_bits[0]);
                let zero: Vec<Lit> = vec![f; inverted.len()];
                let one = self.true_lit(sat);
                let (sum, _) = self.adder(sat, &inverted, &zero, one);
                sum
            }
            BvOp::And => arg_bits[0]
                .iter()
                .zip(&arg_bits[1])
                .map(|(&a, &b)| self.and_gate(sat, a, b))
                .collect(),
            BvOp::Or => arg_bits[0]
                .iter()
                .zip(&arg_bits[1])
                .map(|(&a, &b)| self.or_gate(sat, a, b))
                .collect(),
            BvOp::Xor => arg_bits[0]
                .iter()
                .zip(&arg_bits[1])
                .map(|(&a, &b)| self.xor_gate(sat, a, b))
                .collect(),
            BvOp::Add => {
                let (sum, _) = self.adder(sat, &arg_bits[0], &arg_bits[1], f);
                sum
            }
            BvOp::Sub => {
                let not_b = Self::negate_bits(&arg_bits[1]);
                let one = self.true_lit(sat);
                let (sum, _) = self.adder(sat, &arg_bits[0], &not_b, one);
                sum
            }
            BvOp::Mul => self.mul_bits(sat, &arg_bits[0], &arg_bits[1]),
            BvOp::Udiv | BvOp::Urem => self.blast_division(sat, op, &arg_bits[0], &arg_bits[1]),
            BvOp::Shl => self.barrel_shift(sat, &arg_bits[0], &arg_bits[1], f, true),
            BvOp::Lshr => self.barrel_shift(sat, &arg_bits[0], &arg_bits[1], f, false),
            BvOp::Ashr => {
                let sign = *arg_bits[0].last().expect("non-empty");
                self.barrel_shift(sat, &arg_bits[0], &arg_bits[1], sign, false)
            }
            BvOp::Concat => {
                // args[0] is the high part: result (LSB first) = bits(args[1]) ++ bits(args[0]).
                let mut out = arg_bits[1].clone();
                out.extend_from_slice(&arg_bits[0]);
                out
            }
            BvOp::Extract { hi, lo } => arg_bits[0][lo as usize..=hi as usize].to_vec(),
            BvOp::ZeroExt { .. } => {
                let mut out = arg_bits[0].clone();
                out.resize(width as usize, f);
                out
            }
            BvOp::SignExt { .. } => {
                let sign = *arg_bits[0].last().expect("non-empty");
                let mut out = arg_bits[0].clone();
                out.resize(width as usize, sign);
                out
            }
            BvOp::Eq => vec![self.eq_lit(sat, &arg_bits[0], &arg_bits[1])],
            BvOp::Ult => vec![self.ult_lit(sat, &arg_bits[0], &arg_bits[1])],
            BvOp::Ule => {
                let gt = self.ult_lit(sat, &arg_bits[1], &arg_bits[0]);
                vec![gt.not()]
            }
            BvOp::Slt => vec![self.slt_lit(sat, &arg_bits[0], &arg_bits[1])],
            BvOp::Sle => {
                let gt = self.slt_lit(sat, &arg_bits[1], &arg_bits[0]);
                vec![gt.not()]
            }
            BvOp::Ite => {
                let cond = arg_bits[0][0];
                arg_bits[1]
                    .iter()
                    .zip(&arg_bits[2])
                    .map(|(&t, &e)| self.mux_gate(sat, cond, t, e))
                    .collect()
            }
            BvOp::RedOr => {
                let mut acc = f;
                for &b in &arg_bits[0] {
                    acc = self.or_gate(sat, acc, b);
                }
                vec![acc]
            }
            BvOp::RedAnd => {
                let mut acc = self.true_lit(sat);
                for &b in &arg_bits[0] {
                    acc = self.and_gate(sat, acc, b);
                }
                vec![acc]
            }
            BvOp::RedXor => {
                let mut acc = f;
                for &b in &arg_bits[0] {
                    acc = self.xor_gate(sat, acc, b);
                }
                vec![acc]
            }
            // `pool` is only needed for ops that recurse on term structure; silence unused warnings.
            #[allow(unreachable_patterns)]
            _ => {
                let _ = (pool, args);
                unreachable!("unhandled operator {op}")
            }
        }
    }

    /// Division/remainder via the defining constraints:
    /// if `b != 0` then `q * b + r == a` and `r < b`; if `b == 0` then `q == ~0`, `r == a`.
    fn blast_division(&mut self, sat: &mut Solver, op: BvOp, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let width = a.len();
        let f = self.false_lit(sat);
        let q: Vec<Lit> = (0..width).map(|_| self.fresh(sat)).collect();
        let r: Vec<Lit> = (0..width).map(|_| self.fresh(sat)).collect();
        // b_is_zero
        let mut b_nonzero = f;
        for &bit in b {
            b_nonzero = self.or_gate(sat, b_nonzero, bit);
        }
        // q*b + r == a, computed at double width so that a wrapping (q, r) pair cannot
        // masquerade as a valid division result.
        let widen = |bits: &[Lit]| -> Vec<Lit> {
            let mut wide = bits.to_vec();
            wide.resize(2 * width, f);
            wide
        };
        let (q2, b2, r2, a2) = (widen(&q), widen(b), widen(&r), widen(a));
        let qb = self.mul_bits(sat, &q2, &b2);
        let (qbr, _) = self.adder(sat, &qb, &r2, f);
        let product_ok = self.eq_lit(sat, &qbr, &a2);
        let r_lt_b = self.ult_lit(sat, &r, b);
        let both = self.and_gate(sat, product_ok, r_lt_b);
        // b != 0 -> (product_ok && r < b)
        sat.add_clause(&[b_nonzero.not(), both]);
        // b == 0 -> q == ~0 and r == a
        let q_all_ones = {
            let mut acc = self.true_lit(sat);
            for &bit in &q {
                acc = self.and_gate(sat, acc, bit);
            }
            acc
        };
        let r_eq_a = self.eq_lit(sat, &r, a);
        sat.add_clause(&[b_nonzero, q_all_ones]);
        sat.add_clause(&[b_nonzero, r_eq_a]);
        match op {
            BvOp::Udiv => q,
            BvOp::Urem => r,
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_bv::BitVec;
    use lr_sat::SolveResult;

    /// Asserts a 1-bit term and checks the expected SAT verdict.
    fn check_formula(build: impl FnOnce(&mut TermPool) -> TermId, expect_sat: bool) {
        let mut pool = TermPool::new();
        let t = build(&mut pool);
        let mut sat = Solver::new();
        let mut blaster = BitBlaster::new();
        let bits = blaster.blast(&pool, &mut sat, t);
        assert_eq!(bits.len(), 1);
        sat.add_clause(&[bits[0]]);
        let result = sat.solve();
        assert_eq!(result, if expect_sat { SolveResult::Sat } else { SolveResult::Unsat });
    }

    #[test]
    fn simple_equation_is_sat() {
        check_formula(
            |pool| {
                let x = pool.var("x", 8);
                let five = pool.constant(BitVec::from_u64(5, 8));
                let sum = pool.add(x, five);
                let twelve = pool.constant(BitVec::from_u64(12, 8));
                pool.eq(sum, twelve)
            },
            true,
        );
    }

    #[test]
    fn contradiction_is_unsat() {
        check_formula(
            |pool| {
                let x = pool.var("x", 8);
                let y = pool.var("y", 8);
                let eq = pool.eq(x, y);
                let ne = pool.ne(x, y);
                pool.and(eq, ne)
            },
            false,
        );
    }

    #[test]
    fn addition_is_commutative_by_sat() {
        // !(x + y == y + x) must be UNSAT. Use a non-simplifying pool so the check
        // actually exercises the adder encoding.
        let mut pool = TermPool::without_simplification();
        let x = pool.var("x", 6);
        let y = pool.var("y", 6);
        let xy = pool.mk_op(BvOp::Add, vec![x, y]);
        let yx = pool.mk_op(BvOp::Add, vec![y, x]);
        let eq = pool.mk_op(BvOp::Eq, vec![xy, yx]);
        let ne = pool.mk_op(BvOp::Not, vec![eq]);
        let mut sat = Solver::new();
        let mut blaster = BitBlaster::new();
        let bits = blaster.blast(&pool, &mut sat, ne);
        sat.add_clause(&[bits[0]]);
        assert_eq!(sat.solve(), SolveResult::Unsat);
    }

    #[test]
    fn multiplication_distributes_by_sat() {
        // !(a*(b+c) == a*b + a*c) must be UNSAT at 4 bits.
        let mut pool = TermPool::without_simplification();
        let a = pool.var("a", 4);
        let b = pool.var("b", 4);
        let c = pool.var("c", 4);
        let bc = pool.mk_op(BvOp::Add, vec![b, c]);
        let lhs = pool.mk_op(BvOp::Mul, vec![a, bc]);
        let ab = pool.mk_op(BvOp::Mul, vec![a, b]);
        let ac = pool.mk_op(BvOp::Mul, vec![a, c]);
        let rhs = pool.mk_op(BvOp::Add, vec![ab, ac]);
        let eq = pool.mk_op(BvOp::Eq, vec![lhs, rhs]);
        let ne = pool.mk_op(BvOp::Not, vec![eq]);
        let mut sat = Solver::new();
        let mut blaster = BitBlaster::new();
        let bits = blaster.blast(&pool, &mut sat, ne);
        sat.add_clause(&[bits[0]]);
        assert_eq!(sat.solve(), SolveResult::Unsat);
    }

    #[test]
    fn division_constraints_hold() {
        // x / 3 == 4 && x % 3 == 1  has the solution x == 13.
        let mut pool = TermPool::new();
        let x = pool.var("x", 8);
        let three = pool.constant(BitVec::from_u64(3, 8));
        let four = pool.constant(BitVec::from_u64(4, 8));
        let one = pool.constant(BitVec::from_u64(1, 8));
        let q = pool.udiv(x, three);
        let r = pool.urem(x, three);
        let qe = pool.eq(q, four);
        let re = pool.eq(r, one);
        let both = pool.and(qe, re);

        let mut sat = Solver::new();
        let mut blaster = BitBlaster::new();
        let bits = blaster.blast(&pool, &mut sat, both);
        sat.add_clause(&[bits[0]]);
        assert_eq!(sat.solve(), SolveResult::Sat);
        let xbits = &blaster.var_bits()["x"];
        let value: Vec<bool> = xbits.iter().map(|l| l.eval(sat.value(l.var()).unwrap())).collect();
        assert_eq!(BitVec::from_bits_lsb_first(&value), BitVec::from_u64(13, 8));
    }

    #[test]
    fn barrel_shift_matches_semantics() {
        // (1 << s) == 8 forces s == 3.
        let mut pool = TermPool::new();
        let s = pool.var("s", 4);
        let one = pool.constant(BitVec::from_u64(1, 4));
        let eight = pool.constant(BitVec::from_u64(8, 4));
        let shifted = pool.shl(one, s);
        let eq = pool.eq(shifted, eight);
        let mut sat = Solver::new();
        let mut blaster = BitBlaster::new();
        let bits = blaster.blast(&pool, &mut sat, eq);
        sat.add_clause(&[bits[0]]);
        assert_eq!(sat.solve(), SolveResult::Sat);
        let sbits = &blaster.var_bits()["s"];
        let value: Vec<bool> = sbits.iter().map(|l| l.eval(sat.value(l.var()).unwrap())).collect();
        assert_eq!(BitVec::from_bits_lsb_first(&value), BitVec::from_u64(3, 4));
    }
}
